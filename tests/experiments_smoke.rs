//! Smoke-run the whole experiment suite in quick mode: every experiment
//! must produce non-empty tables and every in-experiment assertion (Lemma
//! 5's deadweight cap, Lemma 7's halting condition) must hold.

use lll_bench::experiments::{all_experiments, ExpConfig};

#[test]
fn all_experiments_run_quick() {
    let cfg = ExpConfig { quick: true, seed: 0xBEEF };
    let results = all_experiments(&cfg);
    assert_eq!(results.len(), 10, "experiment suite changed size — update EXPERIMENTS.md");
    for (id, tables) in results {
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in tables {
            assert!(!t.rows.is_empty(), "{id}: empty table '{}'", t.title);
            // every row renders
            let rendered = t.render();
            assert!(rendered.contains("=="), "{id}: bad render");
        }
    }
}

#[test]
fn experiment_tables_write_csv() {
    let cfg = ExpConfig { quick: true, seed: 0xF00D };
    let dir = std::env::temp_dir().join("lll_experiments_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let tables = lll_bench::experiments::e9_lemma7(&cfg);
    for t in &tables {
        t.write_csv(&dir).expect("csv write");
    }
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(!entries.is_empty());
}
