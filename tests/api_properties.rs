//! Property tests for the production API (`lll-api`).
//!
//! * [`LabelMap`] is differentially checked against `std::collections::BTreeMap`
//!   under random insert/remove/get/range workloads — once per [`Backend`],
//!   so every algorithm in the workspace serves the same map semantics.
//! * [`OrderedList`] is checked against a reference `Vec` under rank-based
//!   churn (reusing the workspace's workload generators), across growth and
//!   shrink rebuilds, with its label table audited after every phase.

use layered_list_labeling::core::ops::Op;
use layered_list_labeling::prelude::*;
use layered_list_labeling::workloads::{uniform_churn, uniform_random_inserts};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One differential step: same command stream against [`LabelMap`] and the
/// standard-library model, with equality asserted after every command.
fn check_map_against_btreemap(backend: Backend, cmds: &[(u8, u16, u32)]) {
    let mut map: LabelMap<u16, u32> = ListBuilder::new().backend(backend).seed(0xD1FF).label_map();
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();
    for &(sel, key, val) in cmds {
        let key = key % 512; // densify the key space so removes and hits land
        match sel % 5 {
            0 | 1 => {
                assert_eq!(
                    map.insert(key, val),
                    model.insert(key, val),
                    "[{}] insert({key}) diverged",
                    backend.name()
                );
            }
            2 => {
                assert_eq!(
                    map.remove(&key),
                    model.remove(&key),
                    "[{}] remove({key}) diverged",
                    backend.name()
                );
            }
            3 => {
                assert_eq!(
                    map.get(&key),
                    model.get(&key),
                    "[{}] get({key}) diverged",
                    backend.name()
                );
            }
            _ => {
                let hi = key.saturating_add(64);
                let got: Vec<(u16, u32)> = map.range(key..hi).map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = model.range(key..hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "[{}] range({key}..{hi}) diverged", backend.name());
            }
        }
        assert_eq!(map.len(), model.len(), "[{}] len diverged", backend.name());
    }
    // Final full-structure agreement.
    let got: Vec<(u16, u32)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "[{}] final iteration diverged", backend.name());
    assert_eq!(map.first_key_value(), model.first_key_value());
    assert_eq!(map.last_key_value(), model.last_key_value());
    for key in (0u16..512).step_by(41) {
        assert_eq!(map.contains_key(&key), model.contains_key(&key));
    }
}

/// Strategy: an arbitrary command stream (selector, key, value).
fn cmd_seq(len: usize) -> impl Strategy<Value = Vec<(u8, u16, u32)>> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u32>()), 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn label_map_matches_btreemap_classic(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Classic, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_deamortized(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Deamortized, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_randomized(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Randomized, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_adaptive(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Adaptive, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_corollary11(cmds in cmd_seq(400)) {
        check_map_against_btreemap(Backend::Corollary11, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_corollary12(cmds in cmd_seq(400)) {
        check_map_against_btreemap(Backend::Corollary12, &cmds);
    }
}

/// Drive an [`OrderedList`] with rank-based ops against a reference `Vec`,
/// verifying handle/value agreement and O(1) order queries throughout.
fn check_ordered_list(backend: Backend, ops: &[Op]) {
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(backend).seed(0x01D).initial_capacity(16).ordered_list();
    let mut reference: Vec<(Handle, u64)> = Vec::new();
    let mut next_val = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(r) => {
                let h = ol.insert_at(r, next_val);
                reference.insert(r, (h, next_val));
                next_val += 1;
            }
            Op::Delete(r) => {
                let (h, v) = reference.remove(r);
                assert_eq!(ol.remove(h), Some(v), "[{}] remove diverged", backend.name());
            }
        }
        assert_eq!(ol.len(), reference.len());
        // Periodic order-query audit on sampled pairs.
        if i % 97 == 0 && reference.len() >= 2 {
            let k = reference.len();
            for (a, b) in [(0, k / 2), (k / 2, k - 1), (0, k - 1), (k / 3, 2 * k / 3)] {
                if a != b {
                    assert_eq!(
                        ol.precedes(reference[a].0, reference[b].0),
                        a < b,
                        "[{}] order query diverged at ops[{i}]",
                        backend.name()
                    );
                }
            }
            assert_eq!(ol.rank(reference[k / 2].0), Some(k / 2));
        }
    }
    ol.check_labels();
    let got: Vec<(Handle, u64)> = ol.iter().map(|(h, v)| (h, *v)).collect();
    assert_eq!(got, reference, "[{}] final order diverged", backend.name());
}

/// A deterministic grow-then-shrink-then-churn sequence: forces several
/// growth rebuilds, several shrink rebuilds, and steady-state churn.
fn grow_shrink_ops(n: usize, seed: u64) -> Vec<Op> {
    let mut ops = uniform_random_inserts(n, seed).ops;
    ops.extend(vec![Op::Delete(0); n - n / 8]); // shrink to an eighth
    ops.extend(uniform_churn(n / 8, n / 4, seed ^ 1).ops.into_iter().skip(n / 8));
    ops
}

#[test]
fn ordered_list_survives_grow_shrink_churn_on_every_backend() {
    for backend in Backend::ALL {
        check_ordered_list(backend, &grow_shrink_ops(600, 0xB0B + backend as u64));
    }
}

#[test]
fn ordered_list_rebuilds_actually_happened() {
    // The previous test is only meaningful if the workload really crosses
    // capacity boundaries both ways; pin that here.
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(Backend::Classic).initial_capacity(16).ordered_list();
    let mut handles = Vec::new();
    for i in 0..600 {
        handles.push(ol.insert_at(i, i as u64));
    }
    for _ in 0..560 {
        let h = handles.remove(0);
        ol.remove(h);
    }
    let stats = ol.grow_stats();
    assert!(stats.grows >= 3, "expected several growth rebuilds, got {}", stats.grows);
    assert!(stats.shrinks >= 2, "expected several shrink rebuilds, got {}", stats.shrinks);
    ol.check_labels();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Arbitrary valid op sequences (decoded against the running length so
    /// every sequence is valid by construction) on the default backend.
    #[test]
    fn ordered_list_matches_reference_on_arbitrary_ops(
        raw in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..800)
    ) {
        let mut ops = Vec::with_capacity(raw.len());
        let mut len = 0usize;
        for (b, r) in raw {
            if len == 0 || b % 5 < 3 {
                ops.push(Op::Insert(r as usize % (len + 1)));
                len += 1;
            } else {
                ops.push(Op::Delete(r as usize % len));
                len -= 1;
            }
        }
        check_ordered_list(Backend::Corollary11, &ops);
    }
}

/// Bulk-load ≡ one-at-a-time insertion: identical keys, identical
/// iteration order, and the bulk path never performs more element moves.
fn check_bulk_load_equivalence(backend: Backend, raw: &[(u16, u32)]) {
    let mut sorted: Vec<(u16, u32)> = raw.to_vec();
    sorted.sort_by_key(|e| e.0);
    sorted.dedup_by_key(|e| e.0);
    let mut bulk: LabelMap<u16, u32> = ListBuilder::new().backend(backend).seed(0xB17).label_map();
    bulk.extend(sorted.iter().copied()); // sorted input takes the bulk path
    let mut inc: LabelMap<u16, u32> = ListBuilder::new().backend(backend).seed(0xB17).label_map();
    for &(k, v) in &sorted {
        inc.insert(k, v);
    }
    assert_eq!(bulk.len(), inc.len(), "[{}] bulk/incremental len diverged", backend.name());
    assert!(
        bulk.iter().eq(inc.iter()),
        "[{}] bulk/incremental iteration order diverged",
        backend.name()
    );
    assert!(
        bulk.total_moves() <= inc.total_moves(),
        "[{}] bulk load moved more: {} > {}",
        backend.name(),
        bulk.total_moves(),
        inc.total_moves()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The bulk-load path is observationally identical to one-at-a-time
    /// insertion — and no more expensive — on every backend.
    #[test]
    fn bulk_load_equals_incremental_on_every_backend(
        raw in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..400)
    ) {
        for backend in Backend::ALL {
            check_bulk_load_equivalence(backend, &raw);
        }
    }
}

/// A full cursor walk (both directions) agrees with `iter()` after random
/// churn, on every backend.
fn check_cursor_walk_equivalence(backend: Backend, ops: &[Op]) {
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(backend).seed(0xC0).initial_capacity(16).ordered_list();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(r) => {
                ol.insert_at(r, i as u64);
            }
            Op::Delete(r) => {
                let h = ol.handle_at_rank(r);
                ol.remove(h);
            }
        }
    }
    let via_iter: Vec<(Handle, u64)> = ol.iter().map(|(h, v)| (h, *v)).collect();
    let mut forward = Vec::with_capacity(via_iter.len());
    let mut cur = ol.cursor_front();
    while let Some((h, v)) = cur.current() {
        forward.push((h, *v));
        cur.move_next();
    }
    assert_eq!(forward, via_iter, "[{}] forward cursor walk diverged", backend.name());
    let mut backward = Vec::with_capacity(via_iter.len());
    let mut cur = ol.cursor_back();
    while let Some((h, v)) = cur.current() {
        backward.push((h, *v));
        cur.move_prev();
    }
    backward.reverse();
    assert_eq!(backward, via_iter, "[{}] backward cursor walk diverged", backend.name());
    // A map cursor agrees with the map's iterator under the same churn.
    let mut map: LabelMap<u64, u64> = ListBuilder::new().backend(backend).seed(0xC1).label_map();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(r) => {
                map.insert((r as u64) << 16 | i as u64, i as u64);
            }
            Op::Delete(r) => {
                if !map.is_empty() {
                    let k = *map.key_at_rank(r % map.len());
                    map.remove(&k);
                }
            }
        }
    }
    let mut walked = Vec::with_capacity(map.len());
    let mut cur = map.cursor_front();
    while let Some((k, v)) = cur.entry() {
        walked.push((*k, *v));
        cur.move_next();
    }
    assert!(
        walked.iter().copied().eq(map.iter().map(|(k, v)| (*k, *v))),
        "[{}] map cursor walk diverged",
        backend.name()
    );
}

#[test]
fn cursor_walks_match_iteration_under_churn_on_every_backend() {
    for backend in Backend::ALL {
        check_cursor_walk_equivalence(backend, &grow_shrink_ops(400, 0xCC + backend as u64));
    }
}

/// A full cursor walk performs **zero** rank→label resolutions: the cursor
/// steps through the occupancy structure, never re-deriving position from
/// rank. Pinned via the backend's [`rank_resolutions`] counter on a
/// statically dispatched backend.
///
/// [`rank_resolutions`]: layered_list_labeling::core::growable::Growable::rank_resolutions
#[test]
fn cursor_walk_does_no_rank_resolution() {
    use layered_list_labeling::classic::ClassicBuilder;

    let n = 10_000u32;
    let mut ol = OrderedList::with_backend(ListBuilder::new().build_growable(ClassicBuilder));
    for i in 0..n {
        ol.insert_at(ol.len(), i);
    }
    let before = ol.backend().rank_resolutions();
    let mut cur = ol.cursor_front();
    let mut walked = 0usize;
    while cur.current().is_some() {
        walked += 1;
        cur.move_next();
    }
    assert_eq!(walked, n as usize);
    assert_eq!(ol.backend().rank_resolutions(), before, "cursor walk resolved rank→label mid-walk");
    // The rank-addressed equivalent pays one resolution per step.
    let h = ol.handle_at_rank(0);
    let _ = ol.rank(h);
    assert!(ol.backend().rank_resolutions() > before, "counter is live");
}

/// ISSUE 2 acceptance: a 100k-key pre-sorted bulk load performs strictly
/// fewer total element moves than the same keys inserted one at a time.
///
/// The bulk side runs `from_sorted_iter` on the **default** layered
/// backend and lands in O(n): one move per element. The one-at-a-time side
/// runs on the adaptive backend — the workspace's cheapest structure for a
/// sorted (append-only) ingest; the default backend pays strictly more
/// moves per point insert than adaptive on this workload (see
/// `label_map::tests::from_sorted_iter_matches_btreemap_with_fewer_moves`
/// for the same-backend comparison at smaller n), so beating adaptive
/// beats every incremental configuration.
#[test]
fn acceptance_bulk_load_100k_strictly_fewer_moves() {
    let n = 100_000u64;
    let bulk: LabelMap<u64, u64> = LabelMap::from_sorted_iter((0..n).map(|k| (k, k * 3)));
    assert_eq!(bulk.len() as u64, n);
    assert!(
        bulk.total_moves() <= 2 * n,
        "bulk load is not O(n): {} moves for {n} keys",
        bulk.total_moves()
    );
    let mut inc: LabelMap<u64, u64> = ListBuilder::new().backend(Backend::Adaptive).label_map();
    for k in 0..n {
        inc.insert(k, k * 3);
    }
    assert!(
        bulk.total_moves() < inc.total_moves(),
        "bulk {} !< one-at-a-time {}",
        bulk.total_moves(),
        inc.total_moves()
    );
    assert_eq!(bulk.len(), inc.len());
    for k in (0..n).step_by(9973) {
        assert_eq!(bulk.get(&k), inc.get(&k), "content diverged at {k}");
    }
}
