//! Property tests for the production API (`lll-api`).
//!
//! * [`LabelMap`] is differentially checked against `std::collections::BTreeMap`
//!   under random insert/remove/get/range workloads — once per [`Backend`],
//!   so every algorithm in the workspace serves the same map semantics.
//! * [`OrderedList`] is checked against a reference `Vec` under rank-based
//!   churn (reusing the workspace's workload generators), across growth and
//!   shrink rebuilds, with its label table audited after every phase.

use layered_list_labeling::core::ops::Op;
use layered_list_labeling::prelude::*;
use layered_list_labeling::workloads::{uniform_churn, uniform_random_inserts};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One differential step: same command stream against [`LabelMap`] and the
/// standard-library model, with equality asserted after every command.
fn check_map_against_btreemap(backend: Backend, cmds: &[(u8, u16, u32)]) {
    let mut map: LabelMap<u16, u32> = ListBuilder::new().backend(backend).seed(0xD1FF).label_map();
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();
    for &(sel, key, val) in cmds {
        let key = key % 512; // densify the key space so removes and hits land
        match sel % 5 {
            0 | 1 => {
                assert_eq!(
                    map.insert(key, val),
                    model.insert(key, val),
                    "[{}] insert({key}) diverged",
                    backend.name()
                );
            }
            2 => {
                assert_eq!(
                    map.remove(&key),
                    model.remove(&key),
                    "[{}] remove({key}) diverged",
                    backend.name()
                );
            }
            3 => {
                assert_eq!(
                    map.get(&key),
                    model.get(&key),
                    "[{}] get({key}) diverged",
                    backend.name()
                );
            }
            _ => {
                let hi = key.saturating_add(64);
                let got: Vec<(u16, u32)> = map.range(key..hi).map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = model.range(key..hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "[{}] range({key}..{hi}) diverged", backend.name());
            }
        }
        assert_eq!(map.len(), model.len(), "[{}] len diverged", backend.name());
    }
    // Final full-structure agreement.
    let got: Vec<(u16, u32)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "[{}] final iteration diverged", backend.name());
    assert_eq!(map.first_key_value(), model.first_key_value());
    assert_eq!(map.last_key_value(), model.last_key_value());
    for key in (0u16..512).step_by(41) {
        assert_eq!(map.contains_key(&key), model.contains_key(&key));
    }
}

/// Strategy: an arbitrary command stream (selector, key, value).
fn cmd_seq(len: usize) -> impl Strategy<Value = Vec<(u8, u16, u32)>> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u32>()), 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn label_map_matches_btreemap_classic(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Classic, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_deamortized(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Deamortized, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_randomized(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Randomized, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_adaptive(cmds in cmd_seq(500)) {
        check_map_against_btreemap(Backend::Adaptive, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_corollary11(cmds in cmd_seq(400)) {
        check_map_against_btreemap(Backend::Corollary11, &cmds);
    }

    #[test]
    fn label_map_matches_btreemap_corollary12(cmds in cmd_seq(400)) {
        check_map_against_btreemap(Backend::Corollary12, &cmds);
    }
}

/// Drive an [`OrderedList`] with rank-based ops against a reference `Vec`,
/// verifying handle/value agreement and O(1) order queries throughout.
fn check_ordered_list(backend: Backend, ops: &[Op]) {
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(backend).seed(0x01D).initial_capacity(16).ordered_list();
    let mut reference: Vec<(Handle, u64)> = Vec::new();
    let mut next_val = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(r) => {
                let h = ol.insert_at(r, next_val);
                reference.insert(r, (h, next_val));
                next_val += 1;
            }
            Op::Delete(r) => {
                let (h, v) = reference.remove(r);
                assert_eq!(ol.remove(h), Some(v), "[{}] remove diverged", backend.name());
            }
        }
        assert_eq!(ol.len(), reference.len());
        // Periodic order-query audit on sampled pairs.
        if i % 97 == 0 && reference.len() >= 2 {
            let k = reference.len();
            for (a, b) in [(0, k / 2), (k / 2, k - 1), (0, k - 1), (k / 3, 2 * k / 3)] {
                if a != b {
                    assert_eq!(
                        ol.precedes(reference[a].0, reference[b].0),
                        a < b,
                        "[{}] order query diverged at ops[{i}]",
                        backend.name()
                    );
                }
            }
            assert_eq!(ol.rank(reference[k / 2].0), Some(k / 2));
        }
    }
    ol.check_labels();
    let got: Vec<(Handle, u64)> = ol.iter().map(|(h, v)| (h, *v)).collect();
    assert_eq!(got, reference, "[{}] final order diverged", backend.name());
}

/// A deterministic grow-then-shrink-then-churn sequence: forces several
/// growth rebuilds, several shrink rebuilds, and steady-state churn.
fn grow_shrink_ops(n: usize, seed: u64) -> Vec<Op> {
    let mut ops = uniform_random_inserts(n, seed).ops;
    ops.extend(vec![Op::Delete(0); n - n / 8]); // shrink to an eighth
    ops.extend(uniform_churn(n / 8, n / 4, seed ^ 1).ops.into_iter().skip(n / 8));
    ops
}

#[test]
fn ordered_list_survives_grow_shrink_churn_on_every_backend() {
    for backend in Backend::ALL {
        check_ordered_list(backend, &grow_shrink_ops(600, 0xB0B + backend as u64));
    }
}

#[test]
fn ordered_list_rebuilds_actually_happened() {
    // The previous test is only meaningful if the workload really crosses
    // capacity boundaries both ways; pin that here.
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(Backend::Classic).initial_capacity(16).ordered_list();
    let mut handles = Vec::new();
    for i in 0..600 {
        handles.push(ol.insert_at(i, i as u64));
    }
    for _ in 0..560 {
        let h = handles.remove(0);
        ol.remove(h);
    }
    let stats = ol.grow_stats();
    assert!(stats.grows >= 3, "expected several growth rebuilds, got {}", stats.grows);
    assert!(stats.shrinks >= 2, "expected several shrink rebuilds, got {}", stats.shrinks);
    ol.check_labels();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Arbitrary valid op sequences (decoded against the running length so
    /// every sequence is valid by construction) on the default backend.
    #[test]
    fn ordered_list_matches_reference_on_arbitrary_ops(
        raw in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..800)
    ) {
        let mut ops = Vec::with_capacity(raw.len());
        let mut len = 0usize;
        for (b, r) in raw {
            if len == 0 || b % 5 < 3 {
                ops.push(Op::Insert(r as usize % (len + 1)));
                len += 1;
            } else {
                ops.push(Op::Delete(r as usize % len));
                len -= 1;
            }
        }
        check_ordered_list(Backend::Corollary11, &ops);
    }
}
