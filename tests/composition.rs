//! Composition (Theorem 2/3) integration tests: nesting depth, slot-budget
//! math, lemma-level invariants of the full Corollary 11/12 structures
//! under sustained churn, and the qualitative cost guarantees.

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::testkit::run_against_oracle;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::deamortized::DeamortizedBuilder;
use layered_list_labeling::embedding::{
    corollary11, corollary11_builder, corollary12, EmbedBuilder, EmbedConfig,
};
use layered_list_labeling::randomized::RandomizedBuilder;
use layered_list_labeling::workloads as wl;

#[test]
fn triple_nesting_compiles_and_agrees() {
    // Three embeddings deep: ((adaptive ⊳ classic) used as F!) ⊳ classic —
    // the F side of an embedding can also be an embedding.
    let inner = EmbedBuilder {
        f: AdaptiveBuilder::default(),
        r: ClassicBuilder,
        cfg: EmbedConfig { epsilon: 1.0 / 6.0, ..Default::default() },
    };
    let outer = EmbedBuilder {
        f: inner,
        r: ClassicBuilder,
        cfg: EmbedConfig { epsilon: 1.0 / 3.0, ..Default::default() },
    };
    let w = wl::uniform_churn(150, 500, 21);
    let mut s = outer.build_default(w.peak);
    run_against_oracle(&mut s, &w.ops, 53);
}

#[test]
fn corollary11_under_churn_keeps_invariants() {
    let n = 1 << 10;
    let w = wl::uniform_churn(n / 2, 2 * n, 31);
    let mut e = corollary11(n, 13);
    run_against_oracle(&mut e, &w.ops, 509);
    e.check_invariants();
    let s = e.stats();
    assert!(s.max_deadweight <= 4, "Lemma 5: {}", s.max_deadweight);
    assert_eq!(s.forced_catchups, 0, "Lemma 7 halting condition fired");
}

#[test]
fn corollary11_worst_case_tracks_z_not_y() {
    // Theorem 3's worst-case claim, measured: the layered structure's max
    // per-op cost is within a small factor of Z's and far below Y's spikes.
    let n = 1 << 12;
    let w = wl::hammer_inserts(n, 0);
    let run_max = |mut s: Box<dyn FnMut() -> u64>| -> u64 { s() };
    let _ = run_max;

    let mut y = RandomizedBuilder::with_seed(3).build_default(n);
    let mut z = DeamortizedBuilder::default().build_default(n);
    let mut l = corollary11(n, 3);
    let (mut max_y, mut max_z, mut max_l) = (0u64, 0u64, 0u64);
    for &op in &w.ops {
        max_y = max_y.max(y.apply(op).cost());
        max_z = max_z.max(z.apply(op).cost());
        max_l = max_l.max(l.apply(op).cost());
    }
    assert!(max_l < max_y / 2, "layered max {max_l} should be far below Y's spike {max_y}");
    assert!(
        max_l < 8 * max_z,
        "layered max {max_l} should be within a constant of Z's cap {max_z}"
    );
}

#[test]
fn corollary11_amortized_tracks_x_on_hammer() {
    let n = 1 << 12;
    let w = wl::hammer_inserts(n, 0);
    let mut x = AdaptiveBuilder::default().build_default(n);
    let mut l = corollary11(n, 5);
    let (mut tot_x, mut tot_l) = (0u64, 0u64);
    for &op in &w.ops {
        tot_x += x.apply(op).cost();
        tot_l += l.apply(op).cost();
    }
    let (ax, al) = (tot_x as f64 / n as f64, tot_l as f64 / n as f64);
    assert!(
        al < 20.0 * ax.max(1.0),
        "layered amortized {al:.1} should be within a constant of X's {ax:.1}"
    );
}

#[test]
fn corollary12_layered_runs_descending_with_predictions() {
    let n = 1 << 10;
    let pw = wl::with_predictions(wl::descending_inserts(n), 8, 17);
    let mut e = corollary12(n, 8, pw.predictions.clone(), 19);
    run_against_oracle(&mut e, &pw.workload.ops, 101);
    e.check_invariants();
    assert!(e.stats().max_deadweight <= 4);
}

#[test]
fn embedding_capacity_is_exact() {
    // Fill a layered structure to its full declared capacity and empty it.
    let n = 512;
    let mut e = corollary11(n, 23);
    for i in 0..n {
        e.insert(i / 2);
    }
    assert_eq!(e.len(), n);
    for _ in 0..n {
        e.delete(e.len() - 1);
    }
    assert!(e.is_empty());
    e.check_invariants();
}

#[test]
fn layered_builder_reports_consistent_dimensions() {
    let b = corollary11_builder(1);
    let n = 400;
    let e = b.build_default(n);
    assert_eq!(e.capacity(), n);
    assert!(e.num_slots() >= (n as f64 * 2.0) as usize, "double embedding needs ~2.4n slots");
    // min_slack is what build_default used
    assert!(e.num_slots() as f64 >= b.min_slack() * n as f64);
}
