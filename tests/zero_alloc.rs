//! Runtime teeth for the zero-alloc steady-state insert path (PR 4): a
//! counting global allocator pins the property "once warm, churn does not
//! allocate" on [`LabelMap`] and [`OrderedList`], for both the classic and
//! the deamortized backend — plus, since the lock-free reader PR, the
//! property "an optimistic `ShardedMap` read allocates nothing, ever"
//! (no convergence allowance: zero from round one).
//!
//! Methodology: structures allocate while *growing* (slot-array doubling,
//! hash-table growth, rebalance scratch buffers reaching their high-water
//! mark), so the harness runs fixed-size churn rounds and requires the
//! rounds to *converge to zero* allocations — pure overwrites must be
//! allocation-free immediately, and remove+insert churn must reach an
//! allocation-free round once every internal buffer has seen its worst
//! case. A regression that puts an allocation on the steady-state path
//! (a `format!` in a hot assert, a scratch `Vec` rebuilt per call) makes
//! every round allocate and fails the convergence assertions.
//!
//! Everything runs in ONE `#[test]` so no concurrent test thread can
//! pollute the process-global counter.

use lll_api::{Backend, ListBuilder};
use lll_sharded::ShardedBuilder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed process-wide (frees are not counted: the property
/// under test is "no *new* memory on the steady-state path").
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: every method forwards the caller's layout verbatim to `System`
// and returns its result unchanged, so `System`'s contract is this type's
// contract; the count is a side effect on an atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; counting is side-effect-only.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller's layout, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller's layout, forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc` — a grow or shrink is new
    // memory traffic, so it counts.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pointer, layout, and size forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `System::dealloc`; frees are not counted.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: pointer and layout forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`.
fn allocs_in<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    let after = ALLOCS.load(Ordering::Relaxed);
    drop(r);
    after - before
}

const N: u64 = 1024;
const ROUNDS: u64 = 8;

/// Run `round` repeatedly; require convergence to an allocation-free
/// round within [`ROUNDS`] attempts. Returns the per-round history for
/// the failure message.
fn assert_converges_to_zero(what: &str, mut round: impl FnMut(u64)) {
    let mut history = Vec::new();
    for r in 0..ROUNDS {
        let allocs = allocs_in(|| round(r));
        history.push(allocs);
        if allocs == 0 {
            return;
        }
    }
    panic!("{what}: no allocation-free round in {ROUNDS} (allocs per round: {history:?})");
}

fn label_map_churn(backend: Backend) {
    let name = backend.name();
    let mut map = ListBuilder::new().backend(backend).seed(11).label_map::<u64, u64>();
    for k in 0..N {
        map.insert(k, k);
    }

    // Overwrites never touch structure: zero allocations from round one.
    let overwrite = allocs_in(|| {
        for k in 0..N {
            map.insert(k, k + 1);
        }
    });
    assert_eq!(overwrite, 0, "{name} LabelMap: overwriting {N} present keys allocated");

    // Fixed-size remove+insert churn must converge once the hash table
    // and every rebalance scratch buffer reach their high-water marks.
    assert_converges_to_zero(&format!("{name} LabelMap churn"), |r| {
        for k in 0..N {
            map.remove(&k);
            map.insert(k, k ^ r);
        }
    });
    assert_eq!(map.len(), N as usize);
}

fn ordered_list_churn(backend: Backend) {
    let name = backend.name();
    let mut list = ListBuilder::new().backend(backend).seed(13).ordered_list::<u64>();
    let mut handles: Vec<_> = (0..N).map(|v| list.push_back(v)).collect();

    // Fixed-size churn: retire one element, append a replacement, reusing
    // the pre-sized handle slot — the list's length never changes.
    assert_converges_to_zero(&format!("{name} OrderedList churn"), |r| {
        for h in handles.iter_mut() {
            list.remove(*h).expect("live handle");
            *h = list.push_back(r);
        }
    });
    assert_eq!(list.len(), N as usize);
}

/// The optimistic read path's allocation budget is zero: once the map is
/// built and one warm-up read has paid any lazy thread-local setup, a
/// `get`/`get_with`/`contains_key` round over present and absent keys
/// must not allocate at all — the path is an RCU directory load plus an
/// epoch-validated shard probe, both advertised (and linted) as
/// allocation-free. Unlike the churn rounds above there is no
/// convergence allowance: reads allocate zero from round one.
fn sharded_read_churn() {
    let map = ShardedBuilder::new()
        .backend(Backend::Classic)
        .seed(17)
        .max_shard_len(64)
        .min_shard_len(16)
        .build::<u64, u64>();
    for k in 0..N {
        map.insert(k, k * 3);
    }
    // Warm-up: first contact initializes the lock-order tracker's
    // thread-locals and any lazy statics off the measured path.
    assert_eq!(map.get(&0), Some(0));
    assert!(map.contains_key(&(N - 1)));

    let reads = allocs_in(|| {
        for k in 0..N {
            assert_eq!(map.get(&k), Some(k * 3));
            assert!(map.contains_key(&k));
            assert_eq!(map.get_with(&k, |v| *v ^ 1), Some((k * 3) ^ 1));
            assert_eq!(map.get(&(k + N)), None, "absent probes are also allocation-free");
        }
    });
    assert_eq!(
        reads, 0,
        "ShardedMap optimistic reads allocated ({reads} allocations for {N} keys)"
    );
    assert_eq!(map.len(), N as usize);

    // The counters the path maintains are pre-registered atomics — assert
    // the round above actually rode the optimistic path rather than
    // proving a zero-alloc *fallback*.
    let stats = map.stats();
    assert!(stats.read_optimistic_hits >= 4 * N, "reads did not ride the optimistic path");
    assert_eq!(stats.read_lock_fallbacks, 0, "a single-threaded reader never falls back");
}

#[test]
fn steady_state_operations_reach_zero_allocations() {
    for backend in [Backend::Classic, Backend::Deamortized] {
        label_map_churn(backend);
        ordered_list_churn(backend);
    }
    sharded_read_churn();
}
