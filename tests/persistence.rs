//! Property and negative tests for the durable-snapshot subsystem
//! (`lll_api::persist`, the container `write_snapshot`/`read_snapshot`
//! pairs, and `ShardedMap`'s directory-preserving snapshots).
//!
//! * Round-trip properties run on **all six backends**: restore must
//!   reproduce keys, values, iteration order, and — for [`OrderedList`] —
//!   the validity of every pre-snapshot handle.
//! * Negative tests feed truncated, bit-flipped, wrong-version, and
//!   wrong-container inputs to every reader: each must return a
//!   [`SnapshotError`], never panic.
//! * A committed golden fixture (`tests/fixtures/label_map_v1.snap`) pins
//!   the on-disk format byte-for-byte across future PRs.
//! * The restore-cost acceptance: `read_snapshot` lands a map through the
//!   O(n) bulk path at exactly one move per element (the 1M-key release
//!   measurement lives in `bench/benches/snapshot.rs`).

use layered_list_labeling::prelude::*;
use lll_api::persist::{ContainerKind, Header, SnapshotError};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Snapshot → restore reproduces a [`LabelMap`] exactly: same entries,
/// same iteration order, same backend, still mutable.
fn check_label_map_roundtrip(backend: Backend, cmds: &[(u8, u16, u32)]) {
    let mut map: LabelMap<u16, u32> = ListBuilder::new().backend(backend).seed(0x5EED).label_map();
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();
    for &(sel, key, val) in cmds {
        let key = key % 512;
        if sel % 3 == 2 {
            assert_eq!(map.remove(&key), model.remove(&key));
        } else {
            assert_eq!(map.insert(key, val), model.insert(key, val));
        }
    }
    let mut buf = Vec::new();
    map.write_snapshot(&mut buf).unwrap();
    let back: LabelMap<u16, u32> = LabelMap::read_snapshot(&mut buf.as_slice()).unwrap();
    assert_eq!(back.len(), model.len(), "[{backend}] len diverged");
    assert_eq!(back.backend_name(), map.backend_name(), "[{backend}] backend diverged");
    assert!(
        back.iter().map(|(k, v)| (*k, *v)).eq(model.iter().map(|(k, v)| (*k, *v))),
        "[{backend}] iteration diverged"
    );
    // The restored map is a working map, not a read-only replica.
    let mut back = back;
    back.insert(9999, 1);
    assert_eq!(back.get(&9999), Some(&1));
    assert_eq!(back.len(), model.len() + 1);
}

/// Snapshot → restore keeps every pre-snapshot [`OrderedList`] handle
/// valid: same value, same rank, same O(1) order relations.
fn check_ordered_list_roundtrip(backend: Backend, ops: &[(u8, u32)]) {
    let mut ol: OrderedList<u64> =
        ListBuilder::new().backend(backend).seed(0xD0).initial_capacity(16).ordered_list();
    let mut live: Vec<(Handle, u64)> = Vec::new();
    for (i, &(sel, r)) in ops.iter().enumerate() {
        if live.is_empty() || sel % 4 != 3 {
            let rank = r as usize % (live.len() + 1);
            let h = ol.insert_at(rank, i as u64);
            live.insert(rank, (h, i as u64));
        } else {
            let rank = r as usize % live.len();
            let (h, v) = live.remove(rank);
            assert_eq!(ol.remove(h), Some(v));
        }
    }
    let mut buf = Vec::new();
    ol.write_snapshot(&mut buf).unwrap();
    let back: OrderedList<u64> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
    assert_eq!(back.len(), live.len(), "[{backend}] len diverged");
    back.check_labels();
    assert_eq!(
        back.iter().map(|(h, v)| (h, *v)).collect::<Vec<_>>(),
        live,
        "[{backend}] restored order diverged"
    );
    for (rank, &(h, v)) in live.iter().enumerate() {
        assert_eq!(back.get(h), Some(&v), "[{backend}] handle {h:?} lost its value");
        assert_eq!(back.rank(h), Some(rank), "[{backend}] handle {h:?} changed rank");
    }
    for pair in live.windows(2) {
        assert!(back.precedes(pair[0].0, pair[1].0), "[{backend}] order relation broke");
    }
}

fn cmd_seq(len: usize) -> impl Strategy<Value = Vec<(u8, u16, u32)>> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u32>()), 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// LabelMap snapshot → restore is the identity on every backend.
    #[test]
    fn label_map_snapshot_roundtrips_on_every_backend(cmds in cmd_seq(300)) {
        for backend in Backend::ALL {
            check_label_map_roundtrip(backend, &cmds);
        }
    }

    /// OrderedList snapshot → restore keeps handles valid on every backend.
    #[test]
    fn ordered_list_snapshot_keeps_handles_on_every_backend(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..300)
    ) {
        for backend in Backend::ALL {
            check_ordered_list_roundtrip(backend, &ops);
        }
    }

    /// ShardedMap snapshot → restore preserves the split-key directory and
    /// every entry.
    #[test]
    fn sharded_map_snapshot_roundtrips(cmds in cmd_seq(600)) {
        let map = ShardedBuilder::new().max_shard_len(32).min_shard_len(8).seed(3).build::<u16, u32>();
        let mut model = BTreeMap::new();
        for &(sel, key, val) in &cmds {
            let key = key % 512;
            if sel % 3 == 2 {
                assert_eq!(map.remove(&key), model.remove(&key));
            } else {
                assert_eq!(map.insert(key, val), model.insert(key, val));
            }
        }
        let mut buf = Vec::new();
        map.write_snapshot(&mut buf).unwrap();
        let back = ShardedMap::<u16, u32>::read_snapshot(&mut buf.as_slice()).unwrap();
        back.check_invariants();
        prop_assert_eq!(back.shard_count(), map.shard_count());
        prop_assert_eq!(back.to_vec(), model.into_iter().collect::<Vec<_>>());
    }
}

/// Build the deterministic fixture map: the exact construction behind
/// `tests/fixtures/label_map_v1.snap`.
fn fixture_map() -> LabelMap<u32, String> {
    let mut map: LabelMap<u32, String> =
        ListBuilder::new().backend(Backend::Classic).seed(0xF1C).label_map();
    for k in 0..24u32 {
        map.insert(k * 5 % 64, format!("value-{k:02}"));
    }
    map
}

const FIXTURE: &[u8] = include_bytes!("fixtures/label_map_v1.snap");

/// The committed golden fixture decodes to the expected map, and today's
/// writer reproduces it **byte-for-byte** — the on-disk format is pinned:
/// any accidental layout change fails here, and an intentional one must
/// bump [`lll_api::persist::FORMAT_VERSION`] and regenerate the fixture
/// (run the ignored `regenerate_golden_fixture` test).
#[test]
fn golden_fixture_is_byte_stable() {
    let map = fixture_map();
    let mut buf = Vec::new();
    map.write_snapshot(&mut buf).unwrap();
    assert_eq!(
        buf, FIXTURE,
        "snapshot encoding changed: if intentional, bump FORMAT_VERSION and regenerate \
         tests/fixtures/label_map_v1.snap via `cargo test -- --ignored regenerate`"
    );
    let back: LabelMap<u32, String> = LabelMap::read_snapshot(&mut &FIXTURE[..]).unwrap();
    assert!(back.iter().eq(map.iter()), "fixture decoded to different contents");
    assert_eq!(back.backend_name(), map.backend_name());
    assert_eq!(back.backend().config().backend, Backend::Classic);
}

/// Regenerates the golden fixture. Run explicitly after an intentional
/// format change: `cargo test --test persistence -- --ignored regenerate`.
#[test]
#[ignore = "writes tests/fixtures/label_map_v1.snap; run only on intentional format changes"]
fn regenerate_golden_fixture() {
    let mut buf = Vec::new();
    fixture_map().write_snapshot(&mut buf).unwrap();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/label_map_v1.snap");
    std::fs::write(path, &buf).unwrap();
    eprintln!("wrote {} bytes to {path}", buf.len());
}

/// Every strict prefix of a valid snapshot fails typed — never panics —
/// for all three container readers.
#[test]
fn truncated_snapshots_error_on_every_reader() {
    for cut in 0..FIXTURE.len() {
        assert!(
            LabelMap::<u32, String>::read_snapshot(&mut &FIXTURE[..cut]).is_err(),
            "LabelMap decoded a {cut}-byte prefix"
        );
    }
    let mut ol: OrderedList<u64> = OrderedList::new();
    ol.extend_back(0..40);
    let mut buf = Vec::new();
    ol.write_snapshot(&mut buf).unwrap();
    for cut in 0..buf.len() {
        assert!(
            OrderedList::<u64>::read_snapshot(&mut &buf[..cut]).is_err(),
            "OrderedList decoded a {cut}-byte prefix"
        );
    }
    let sm = ShardedBuilder::new().max_shard_len(8).min_shard_len(2).build::<u32, u32>();
    for k in 0..64 {
        sm.insert(k, k);
    }
    let mut buf = Vec::new();
    sm.write_snapshot(&mut buf).unwrap();
    for cut in 0..buf.len() {
        assert!(
            ShardedMap::<u32, u32>::read_snapshot(&mut &buf[..cut]).is_err(),
            "ShardedMap decoded a {cut}-byte prefix"
        );
    }
}

/// Single-bit corruption anywhere in the stream either still decodes (the
/// flip hit a value byte) or fails typed — it never panics and never
/// produces an unsorted map.
#[test]
fn bit_flips_never_panic_or_break_invariants() {
    for pos in 0..FIXTURE.len() {
        let mut bent = FIXTURE.to_vec();
        bent[pos] ^= 0x40;
        // A typed failure is the expected common case; a flip that only
        // hit a value byte may still decode, but never to an unsorted map.
        if let Ok(map) = LabelMap::<u32, String>::read_snapshot(&mut bent.as_slice()) {
            let keys: Vec<u32> = map.keys().copied().collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "flip at {pos} broke sortedness");
        }
    }
}

/// Each failure mode surfaces as its own [`SnapshotError`] variant.
#[test]
fn snapshot_error_variants_are_typed() {
    // Wrong container: an OrderedList stream into the LabelMap reader.
    let mut ol: OrderedList<u32> = OrderedList::new();
    ol.push_back(7);
    let mut buf = Vec::new();
    ol.write_snapshot(&mut buf).unwrap();
    match LabelMap::<u32, u32>::read_snapshot(&mut buf.as_slice()) {
        Err(SnapshotError::WrongContainer { expected, found }) => {
            assert_eq!(expected, ContainerKind::LabelMap);
            assert_eq!(found, ContainerKind::OrderedList);
        }
        other => panic!("expected WrongContainer, got {other:?}"),
    }
    // ...and the reverse direction.
    assert!(matches!(
        OrderedList::<String>::read_snapshot(&mut &FIXTURE[..]),
        Err(SnapshotError::WrongContainer { .. })
    ));
    assert!(matches!(
        ShardedMap::<u32, String>::read_snapshot(&mut &FIXTURE[..]),
        Err(SnapshotError::WrongContainer { .. })
    ));

    // Bad magic.
    let mut bad = FIXTURE.to_vec();
    bad[0] = b'X';
    assert!(matches!(
        LabelMap::<u32, String>::read_snapshot(&mut bad.as_slice()),
        Err(SnapshotError::BadMagic)
    ));

    // Future version.
    let mut future = FIXTURE.to_vec();
    future[8] = 0xFE;
    assert!(matches!(
        LabelMap::<u32, String>::read_snapshot(&mut future.as_slice()),
        Err(SnapshotError::UnsupportedVersion { found: 0xFE })
    ));

    // Out-of-order keys are structural corruption: hand-craft a stream
    // with a descending pair behind a valid header.
    let cfg = ListBuilder::new().config();
    let mut forged = Vec::new();
    Header::new(ContainerKind::LabelMap, cfg, 2).write_to(&mut forged).unwrap();
    (9u32, 0u8).encode(&mut forged).unwrap();
    (3u32, 0u8).encode(&mut forged).unwrap();
    assert!(matches!(
        LabelMap::<u32, u8>::read_snapshot(&mut forged.as_slice()),
        Err(SnapshotError::Corrupt(_))
    ));

    // Duplicate handles likewise.
    let mut forged = Vec::new();
    Header::new(ContainerKind::OrderedList, cfg, 2).write_to(&mut forged).unwrap();
    (7u64, 1u8).encode(&mut forged).unwrap();
    (7u64, 2u8).encode(&mut forged).unwrap();
    assert!(matches!(
        OrderedList::<u8>::read_snapshot(&mut forged.as_slice()),
        Err(SnapshotError::Corrupt(_))
    ));
}

/// Restore is the O(n) bulk sweep: exactly **one element move per entry**,
/// no per-op replay — the debug-scale pin of the acceptance criterion
/// (`bench/benches/snapshot.rs` measures the same property at 1M keys in
/// release and the ≥10× wall-clock bound).
#[test]
fn restore_is_one_move_per_element() {
    let n = 50_000u64;
    let map: LabelMap<u64, u64> = LabelMap::from_sorted_iter((0..n).map(|k| (k, k * 2)));
    let mut buf = Vec::new();
    map.write_snapshot(&mut buf).unwrap();

    // Classic backend: restore cost is exactly n placements.
    let mut classic_buf = Vec::new();
    let mut classic: LabelMap<u64, u64> = ListBuilder::new().backend(Backend::Classic).label_map();
    classic.extend_sorted((0..n).map(|k| (k, k * 2)).collect());
    classic.write_snapshot(&mut classic_buf).unwrap();
    let restored: LabelMap<u64, u64> =
        LabelMap::read_snapshot(&mut classic_buf.as_slice()).unwrap();
    assert_eq!(restored.len() as u64, n);
    assert_eq!(restored.total_moves(), n, "classic restore must be exactly 1 move/element");

    // The default layered backend restores in O(n) too (≤ 2 moves/element
    // across its layers), far below any per-op replay.
    let restored: LabelMap<u64, u64> = LabelMap::read_snapshot(&mut buf.as_slice()).unwrap();
    assert_eq!(restored.len() as u64, n);
    assert!(
        restored.total_moves() <= 2 * n,
        "layered restore is not O(n): {} moves for {n} keys",
        restored.total_moves()
    );

    // OrderedList's handle-preserving restore has the same cost shape.
    let mut ol: OrderedList<u64, _> =
        OrderedList::with_backend(ListBuilder::new().backend(Backend::Classic).build());
    ol.extend_back(0..n);
    let mut buf = Vec::new();
    ol.write_snapshot(&mut buf).unwrap();
    let back: OrderedList<u64> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
    assert_eq!(back.len() as u64, n);
    assert_eq!(back.total_moves(), n, "handle-preserving restore must be 1 move/element");
}
