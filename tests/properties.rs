//! Property-based tests (proptest): arbitrary valid operation sequences
//! must keep every structure oracle-consistent; structural invariants must
//! hold for arbitrary inputs, not just the curated workloads.

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::api::{Backend, ListBuilder};
use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::ops::Op;
use layered_list_labeling::core::testkit::run_against_oracle;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::deamortized::DeamortizedBuilder;
use layered_list_labeling::embedding::EmbedBuilder;
use layered_list_labeling::randomized::RandomizedBuilder;
use proptest::prelude::*;

/// Strategy: a valid op sequence of `len` ops with peak size ≤ cap.
/// Encoded as (is_insert_bias, rank_seed) pairs decoded against the running
/// length so every sequence is valid by construction.
fn op_seq(len: usize, cap: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((any::<u8>(), any::<u32>()), len).prop_map(move |raw| {
        let mut ops = Vec::with_capacity(raw.len());
        let mut cur = 0usize;
        for (b, r) in raw {
            let insert = cur == 0 || (cur < cap && b % 5 < 3);
            if insert {
                ops.push(Op::Insert(r as usize % (cur + 1)));
                cur += 1;
            } else {
                ops.push(Op::Delete(r as usize % cur));
                cur -= 1;
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn classic_matches_oracle(ops in op_seq(400, 120)) {
        let mut s = ClassicBuilder.build_default(120);
        run_against_oracle(&mut s, &ops, 61);
    }

    #[test]
    fn adaptive_matches_oracle(ops in op_seq(400, 120)) {
        let mut s = AdaptiveBuilder::default().build_default(120);
        run_against_oracle(&mut s, &ops, 61);
    }

    #[test]
    fn randomized_matches_oracle(ops in op_seq(400, 120), seed in any::<u64>()) {
        let mut s = RandomizedBuilder::with_seed(seed).build_default(120);
        run_against_oracle(&mut s, &ops, 61);
    }

    #[test]
    fn deamortized_matches_oracle(ops in op_seq(500, 120)) {
        let mut s = DeamortizedBuilder::default().build_default(120);
        run_against_oracle(&mut s, &ops, 61);
    }

    #[test]
    fn embedding_matches_oracle_and_keeps_invariants(ops in op_seq(350, 90)) {
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut s = b.build_default(90);
        run_against_oracle(&mut s, &ops, 47);
        s.check_invariants();
        prop_assert!(s.stats().max_deadweight <= 4);
    }

    #[test]
    fn labels_always_strictly_increase(ops in op_seq(300, 100)) {
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut s = b.build_default(100);
        for op in ops {
            s.apply(op);
            // spot-check monotonicity after every op on a stride
            if s.len() >= 2 {
                let a = s.label_of_rank(0);
                let b2 = s.label_of_rank(s.len() / 2);
                let c = s.label_of_rank(s.len() - 1);
                prop_assert!(a < c);
                if s.len() > 2 {
                    prop_assert!(a <= b2 && b2 <= c);
                }
            }
        }
    }

    #[test]
    fn report_costs_equal_move_log(ops in op_seq(250, 80)) {
        // The cost contract: OpReport::cost() == number of logged moves,
        // and the slot array's lifetime total equals the sum of reports.
        let mut s = ClassicBuilder.build_default(80);
        let mut total = 0u64;
        for op in ops {
            total += s.apply(op).cost();
        }
        prop_assert_eq!(total, s.slots().lifetime_moves());
    }

    #[test]
    fn windowed_iteration_and_bitmap_agree_with_fenwick_on_all_backends(
        ops in op_seq(300, 100),
        windows in proptest::collection::vec((any::<u16>(), any::<u16>()), 8),
    ) {
        // The physical-layer contracts behind window-bounded rebalances,
        // checked under randomized churn on every selectable backend:
        //  * iter_occupied_in(a, b) ≡ the full iteration filtered to [a, b)
        //  * the occupancy bitmap ≡ the Fenwick index, point for point
        //  * occupied_in / free- and occupied-neighbor queries ≡ Fenwick
        for backend in Backend::ALL {
            let mut s = ListBuilder::new().seed(11).backend(backend).build_fixed(100);
            for &op in &ops {
                s.apply(op);
            }
            let slots = s.slots();
            let m = slots.num_slots();
            // Bitmap ≡ Fenwick, point for point (one O(m) sweep).
            let vals = slots.occ().point_values();
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(slots.bitmap().get(i), v == 1, "backend {}", backend.name());
                prop_assert_eq!(slots.is_occupied(i), v == 1, "backend {}", backend.name());
            }
            let full: Vec<_> = slots.iter_occupied().collect();
            prop_assert_eq!(full.len(), s.len(), "backend {}", backend.name());
            for &(wa, wb) in &windows {
                let (a, b) = (wa as usize % (m + 1), wb as usize % (m + 1));
                let (a, b) = (a.min(b), a.max(b));
                let got: Vec<_> = slots.iter_occupied_in(a, b).collect();
                let want: Vec<_> =
                    full.iter().copied().filter(|&(p, _)| a <= p && p < b).collect();
                prop_assert_eq!(&got, &want, "backend {} window [{}, {})", backend.name(), a, b);
                prop_assert_eq!(
                    slots.occupied_in(a, b), slots.occ().range(a, b) as usize,
                    "backend {}", backend.name()
                );
                if a < m {
                    prop_assert_eq!(
                        slots.next_free(a), slots.occ().next_unmarked_at_or_after(a),
                        "backend {}", backend.name()
                    );
                    prop_assert_eq!(
                        slots.prev_free(a), slots.occ().prev_unmarked_at_or_before(a),
                        "backend {}", backend.name()
                    );
                    prop_assert_eq!(
                        slots.next_occupied_at_or_after(a),
                        slots.occ().next_marked_at_or_after(a),
                        "backend {}", backend.name()
                    );
                    prop_assert_eq!(
                        slots.prev_occupied_at_or_before(a),
                        slots.occ().prev_marked_at_or_before(a),
                        "backend {}", backend.name()
                    );
                }
            }
            // Rank/select round trip through both indexes.
            for r in 0..s.len() {
                let pos = slots.select(r);
                prop_assert!(slots.bitmap().get(pos), "backend {}", backend.name());
                prop_assert_eq!(slots.rank_at(pos), r, "backend {}", backend.name());
            }
        }
    }
}
