//! Integration tests for the library-facing conveniences: dynamic capacity
//! ([`Growable`]) over every algorithm, and rank-range iteration.

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::growable::{check_growable, Growable};
use layered_list_labeling::core::ops::Op;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::deamortized::DeamortizedBuilder;
use layered_list_labeling::embedding::EmbedBuilder;
use layered_list_labeling::randomized::RandomizedBuilder;
use layered_list_labeling::workloads::{uniform_churn, uniform_random_inserts};
use rand::{Rng, SeedableRng};

fn churn_ops(total: usize, seed: u64) -> Vec<Op> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut len = 0usize;
    for _ in 0..total {
        if len == 0 || rng.gen_bool(0.58) {
            ops.push(Op::Insert(rng.gen_range(0..=len)));
            len += 1;
        } else {
            ops.push(Op::Delete(rng.gen_range(0..len)));
            len -= 1;
        }
    }
    ops
}

#[test]
fn growable_over_classic() {
    check_growable(ClassicBuilder, &churn_ops(2500, 1));
}

#[test]
fn growable_over_adaptive() {
    check_growable(AdaptiveBuilder::default(), &churn_ops(2500, 2));
}

#[test]
fn growable_over_randomized() {
    check_growable(RandomizedBuilder::with_seed(7), &churn_ops(2500, 3));
}

#[test]
fn growable_over_deamortized() {
    check_growable(DeamortizedBuilder::default(), &churn_ops(2500, 4));
}

#[test]
fn growable_over_embedding() {
    // The embedding composes with the growth wrapper too: a dynamically
    // sized structure with the layered guarantees at each size.
    let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    let g = check_growable(b, &churn_ops(1200, 5));
    assert!(g.stats().grows >= 1, "should have grown past 16");
}

#[test]
fn growable_growth_is_amortized() {
    let mut g = Growable::new(ClassicBuilder, 16);
    let n = 4096;
    for i in 0..n {
        g.insert(i); // appends
    }
    // Appending n elements with ~log2(n/16) doublings stays polylog per op
    // (a linear structure would pay ~n/2 ≈ 2000 here).
    let per_op = g.total_moves() as f64 / n as f64;
    let logsq = (n as f64).log2().powi(2);
    assert!(per_op < logsq, "append amortized {per_op} should be < log²n = {logsq:.0}");
    assert!(g.stats().grows >= 8);
}

#[test]
fn iter_range_matches_rank_queries_everywhere() {
    let w = uniform_random_inserts(500, 9);
    let structures: Vec<Box<dyn ListLabeling>> = vec![
        Box::new(ClassicBuilder.build_default(w.peak)),
        Box::new(AdaptiveBuilder::default().build_default(w.peak)),
        Box::new(DeamortizedBuilder::default().build_default(w.peak)),
    ];
    for mut s in structures {
        for &op in &w.ops {
            s.apply(op);
        }
        let items: Vec<_> = s.iter_range(100, 200).collect();
        assert_eq!(items.len(), 100);
        for (i, &(rank, label, elem)) in items.iter().enumerate() {
            assert_eq!(rank, 100 + i);
            assert_eq!(label, s.label_of_rank(rank));
            assert_eq!(elem, s.elem_at_rank(rank));
        }
        // full-range walk is the whole layout in order
        let all: Vec<_> = s.iter_range(0, s.len()).collect();
        assert_eq!(all.len(), s.len());
        assert!(all.windows(2).all(|p| p[0].1 < p[1].1), "labels must increase");
    }
}

#[test]
fn iter_range_on_embedding() {
    let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    let mut e = b.build_default(400);
    let w = uniform_churn(300, 400, 11);
    for &op in &w.ops {
        e.apply(op);
    }
    let n = e.len();
    let mid: Vec<_> = e.iter_range(n / 4, 3 * n / 4).collect();
    assert_eq!(mid.len(), 3 * n / 4 - n / 4);
    assert!(mid.windows(2).all(|p| p[0].1 < p[1].1));
}
