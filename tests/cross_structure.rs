//! Cross-crate integration: every structure in the workspace, fed the same
//! workloads, must agree with the reference oracle — and therefore with
//! each other — on the element order at all times.

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::classic::{ClassicBuilder, ShiftArrayBuilder};
use layered_list_labeling::core::ops::Op;
use layered_list_labeling::core::testkit::run_against_oracle;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::deamortized::DeamortizedBuilder;
use layered_list_labeling::embedding::{corollary11_builder, EmbedBuilder};
use layered_list_labeling::predictions::PredictedBuilder;
use layered_list_labeling::randomized::RandomizedBuilder;
use layered_list_labeling::workloads as wl;

fn check_workload<B: LabelingBuilder>(b: &B, ops: &[Op], peak: usize) {
    let mut s = b.build_default(peak);
    run_against_oracle(&mut s, ops, 127);
}

fn suites() -> Vec<wl::Workload> {
    let n = 600;
    let mut v = wl::standard_suite(n, 99);
    v.push(wl::uniform_churn(n / 2, 2 * n, 100));
    v.push(wl::bulk_runs(12, 50, 101));
    v
}

#[test]
fn classic_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&ClassicBuilder, &w.ops, w.peak);
    }
}

#[test]
fn adaptive_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&AdaptiveBuilder::default(), &w.ops, w.peak);
    }
}

#[test]
fn randomized_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&RandomizedBuilder::with_seed(5), &w.ops, w.peak);
    }
}

#[test]
fn deamortized_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&DeamortizedBuilder::default(), &w.ops, w.peak);
    }
}

#[test]
fn predicted_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&PredictedBuilder::default(), &w.ops, w.peak);
    }
}

#[test]
fn naive_shift_agrees_on_all_workloads() {
    for w in suites() {
        check_workload(&ShiftArrayBuilder, &w.ops, w.peak);
    }
}

#[test]
fn single_embedding_agrees_on_all_workloads() {
    let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    for w in suites() {
        check_workload(&b, &w.ops, w.peak);
    }
}

#[test]
fn layered_corollary11_agrees_on_all_workloads() {
    let b = corollary11_builder(77);
    for w in suites() {
        check_workload(&b, &w.ops, w.peak);
    }
}

#[test]
fn all_structures_agree_with_each_other() {
    // Run the same sequence everywhere; final element orders must be
    // identical as sequences of per-structure insertion indices.
    let w = wl::uniform_churn(300, 600, 55);
    fn order_signature<B: LabelingBuilder>(b: &B, w: &wl::Workload) -> Vec<usize> {
        // Map each element to the index of the op that inserted it.
        let mut s = b.build_default(w.peak);
        let mut birth = std::collections::HashMap::new();
        for (i, &op) in w.ops.iter().enumerate() {
            let rep = s.apply(op);
            if let Some((id, _)) = rep.placed {
                birth.insert(id, i);
            }
        }
        (0..s.len()).map(|r| birth[&s.elem_at_rank(r)]).collect()
    }
    let sig_classic = order_signature(&ClassicBuilder, &w);
    assert_eq!(sig_classic, order_signature(&AdaptiveBuilder::default(), &w));
    assert_eq!(sig_classic, order_signature(&RandomizedBuilder::with_seed(9), &w));
    assert_eq!(sig_classic, order_signature(&DeamortizedBuilder::default(), &w));
    assert_eq!(
        sig_classic,
        order_signature(&EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder), &w)
    );
    assert_eq!(sig_classic, order_signature(&corollary11_builder(3), &w));
}
