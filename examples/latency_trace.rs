//! Latency-profile comparison: per-operation cost traces rendered as ASCII
//! sparklines — the paper's §1 story in one screen. The randomized
//! structure `Y` has great *average* cost but "almost pessimal tail
//! bounds"; the deamortized `Z` is capped but pays more on average; the
//! layered `X ⊳ (Y ⊳ Z)` keeps the average low *and* the tail capped.
//!
//! (In a database, per-op element moves are response-time jitter: a single
//! 10⁴-move rebalance is a latency spike that a tail-latency SLO notices.)
//!
//! The structures are built through [`ListBuilder::build_fixed`] — the
//! type-erased fixed-capacity form — so one `run` function drives every
//! backend without naming a concrete type.
//!
//! Run with: `cargo run --release --example latency_trace`

use layered_list_labeling::core::ops::Op;
use layered_list_labeling::core::traits::ListLabeling;
use layered_list_labeling::prelude::{Backend, ListBuilder};
use layered_list_labeling::workloads::hammer_inserts;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render costs as a log-scaled sparkline, bucketing ops into `width` bins
/// (each bin shows its max — the latency view).
fn sparkline(costs: &[u64], width: usize) -> String {
    let chunk = costs.len().div_ceil(width);
    let maxima: Vec<u64> =
        costs.chunks(chunk).map(|c| c.iter().copied().max().unwrap_or(0)).collect();
    let top = (*maxima.iter().max().unwrap_or(&1) as f64).ln().max(1.0);
    maxima
        .iter()
        .map(|&m| {
            let level = ((m.max(1) as f64).ln() / top * (BARS.len() - 1) as f64).round();
            BARS[level as usize]
        })
        .collect()
}

fn run(backend: Backend, n: usize, ops: &[Op]) -> Vec<u64> {
    let mut s: Box<dyn ListLabeling> = ListBuilder::new().backend(backend).seed(7).build_fixed(n);
    ops.iter().map(|&op| s.apply(op).cost()).collect()
}

fn main() {
    let n = 1 << 13;
    let w = hammer_inserts(n, 0);
    println!("per-op move-count traces, hammer workload, n={n} (log scale, bin = max)\n");

    let y = run(Backend::Randomized, n, &w.ops);
    let z = run(Backend::Deamortized, n, &w.ops);
    let l = run(Backend::Corollary11, n, &w.ops);

    let stats = |c: &[u64]| {
        let total: u64 = c.iter().sum();
        let max = *c.iter().max().unwrap();
        (total as f64 / c.len() as f64, max)
    };
    let (ay, my) = stats(&y);
    let (az, mz) = stats(&z);
    let (al, ml) = stats(&l);

    println!("Y randomized   avg {ay:6.1}  max {my:6}  {}", sparkline(&y, 72));
    println!("Z deamortized  avg {az:6.1}  max {mz:6}  {}", sparkline(&z, 72));
    println!("X>(Y>Z) layered avg {al:5.1}  max {ml:6}  {}", sparkline(&l, 72));

    println!("\nreading the traces:");
    println!("  - Y's line is mostly low with tall spikes (heavy tail: cost k w.p. ~1/k)");
    println!("  - Z's line is uniformly mid-height (bounded, but always paying)");
    println!("  - the layered line hugs the bottom with a hard ceiling: Theorem 3.");
    assert!(ml < my, "layered max should undercut Y's spike");
}
