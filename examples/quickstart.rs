//! Quickstart: the production API in one screen, then the paper-level
//! instrumentation underneath it.
//!
//! Run with: `cargo run --release --example quickstart`

use layered_list_labeling::core::traits::ListLabeling;
use layered_list_labeling::embedding::corollary11;
use layered_list_labeling::prelude::*;

fn main() {
    // ── The production API ────────────────────────────────────────────
    // A sorted map on Corollary 11's layered structure. No capacity to
    // choose, no ranks to compute: keys in, sorted order out.
    let mut scores: LabelMap<u64, &str> =
        ListBuilder::new().backend(Backend::Corollary11).seed(42).label_map();
    scores.insert(700, "carol");
    scores.insert(300, "alice");
    scores.insert(500, "bob");
    assert_eq!(scores.get(&500), Some(&"bob"));
    let podium: Vec<&str> = scores.range(300..=700).map(|(_, v)| *v).collect();
    println!("sorted by score: {podium:?}");

    // Order maintenance: stable handles, O(1) order queries.
    let mut tasks = OrderedList::new();
    let deploy = tasks.push_back("deploy");
    let build = tasks.insert_before(deploy, "build");
    let test = tasks.insert_after(build, "test");
    assert!(tasks.precedes(build, test) && tasks.precedes(test, deploy));
    println!("pipeline order: {:?}", tasks.values().collect::<Vec<_>>());

    // ── The paper-level view ──────────────────────────────────────────
    // X ⊳ (Y ⊳ Z): adaptive ⊳ (randomized ⊳ deamortized), all tapes
    // seeded, fixed capacity, raw move logs.
    let n = 4096;
    let mut list = corollary11(n, 42);
    println!(
        "\nlayered list-labeling structure: capacity {} over {} slots",
        list.capacity(),
        list.num_slots()
    );

    // A hammer-insert workload: every insertion at rank 0 (new smallest).
    // This is the classical PMA's worst friend and the adaptive layer's
    // best: the layered structure keeps both the amortized cost low and
    // every single operation bounded.
    let mut total = 0u64;
    let mut worst = 0u64;
    for _ in 0..n {
        let cost = list.insert(0).cost();
        total += cost;
        worst = worst.max(cost);
    }
    println!("hammer-inserted {n} elements:");
    println!("  amortized cost : {:.2} moves/op", total as f64 / n as f64);
    println!("  worst operation: {worst} moves");

    // The list-labeling contract: all elements in sorted order in one
    // array; the label of rank r is its slot position.
    let labels: Vec<usize> = (0..list.len()).map(|r| list.label_of_rank(r)).collect();
    assert!(labels.windows(2).all(|w| w[0] < w[1]), "labels must increase with rank");
    println!("  labels strictly increase with rank ✓ (first 8: {:?})", &labels[..8]);

    // Layer diagnostics from the embedding (the paper's instrumentation).
    let s = list.stats();
    println!("embedding stats:");
    println!("  fast-path ops    : {}", s.fast_ops);
    println!("  slow-path ops    : {}", s.slow_ops);
    println!("  rebuilds         : {}", s.rebuilds_completed);
    println!("  max buffered     : {} (Lemma 7: o(n))", s.max_buffered);
    println!("  max deadweight   : {} (Lemma 5: ≤ 4)", s.max_deadweight);
    assert!(s.max_deadweight <= 4);
}
