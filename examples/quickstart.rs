//! Quickstart: build Corollary 11's layered structure and watch it combine
//! its three layers' strengths.
//!
//! Run with: `cargo run --release --example quickstart`

use layered_list_labeling::core::traits::ListLabeling;
use layered_list_labeling::embedding::corollary11;

fn main() {
    let n = 4096;
    // X ⊳ (Y ⊳ Z): adaptive ⊳ (randomized ⊳ deamortized), all tapes seeded.
    let mut list = corollary11(n, 42);
    println!(
        "layered list-labeling structure: capacity {} over {} slots",
        list.capacity(),
        list.num_slots()
    );

    // A hammer-insert workload: every insertion at rank 0 (new smallest).
    // This is the classical PMA's worst friend and the adaptive layer's
    // best: the layered structure keeps both the amortized cost low and
    // every single operation bounded.
    let mut total = 0u64;
    let mut worst = 0u64;
    for _ in 0..n {
        let cost = list.insert(0).cost();
        total += cost;
        worst = worst.max(cost);
    }
    println!("hammer-inserted {n} elements:");
    println!("  amortized cost : {:.2} moves/op", total as f64 / n as f64);
    println!("  worst operation: {worst} moves");

    // The list-labeling contract: all elements in sorted order in one
    // array; the label of rank r is its slot position.
    let labels: Vec<usize> = (0..list.len()).map(|r| list.label_of_rank(r)).collect();
    assert!(labels.windows(2).all(|w| w[0] < w[1]), "labels must increase with rank");
    println!("  labels strictly increase with rank ✓ (first 8: {:?})", &labels[..8]);

    // Layer diagnostics from the embedding (the paper's instrumentation).
    let s = list.stats();
    println!("embedding stats:");
    println!("  fast-path ops    : {}", s.fast_ops);
    println!("  slow-path ops    : {}", s.slow_ops);
    println!("  rebuilds         : {}", s.rebuilds_completed);
    println!("  max buffered     : {} (Lemma 7: o(n))", s.max_buffered);
    println!("  max deadweight   : {} (Lemma 5: ≤ 4)", s.max_deadweight);
    assert!(s.max_deadweight <= 4);
}
