//! A dynamic packed adjacency structure (packed CSR) on top of list
//! labeling — the dynamic-graph motivation from the paper's §1 (PMAs power
//! Packed-CSR / PPCSR / Terrace-style graph containers because neighbor
//! scans are contiguous array sweeps even under edge insertions).
//!
//! Edges `(u, v)` are the keys of a [`LabelMap`], kept sorted
//! lexicographically in one slot array; `neighbors(u)` is a key-range walk
//! `(u, 0) ..= (u, MAX)`. We build a random graph incrementally (edges
//! arrive in random order — the dynamic-graph pattern) and run a BFS over
//! the packed representation.
//!
//! Run with: `cargo run --release --example graph_edges`

use layered_list_labeling::prelude::*;
use rand::{Rng, SeedableRng};

struct PackedGraph {
    edges: LabelMap<(u32, u32), ()>,
}

impl PackedGraph {
    fn new(backend: Backend) -> Self {
        Self { edges: ListBuilder::new().backend(backend).seed(3).label_map() }
    }

    fn insert_edge(&mut self, u: u32, v: u32) {
        self.edges.insert((u, v), ());
    }

    /// Neighbors of `u`: a contiguous key-range walk (physically, a
    /// contiguous array sweep — the whole point of packed graph layouts).
    fn neighbors(&self, u: u32) -> Vec<u32> {
        self.edges.range((u, 0)..=(u, u32::MAX)).map(|((_, v), _)| *v).collect()
    }

    fn bfs(&self, src: u32, nv: usize) -> Vec<i32> {
        let mut dist = vec![-1; nv];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.neighbors(u) {
                    if dist[v as usize] < 0 {
                        dist[v as usize] = dist[u as usize] + 1;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }
}

fn main() {
    let nv = 512usize;
    let ne = 4096usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    // random undirected edges, arriving in random order
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let u = rng.gen_range(0..nv as u32);
        let v = rng.gen_range(0..nv as u32);
        if u != v {
            edges.push((u, v));
        }
    }

    // The deamortized structure is the natural choice for streaming graph
    // updates: every edge insertion has bounded latency.
    let mut g = PackedGraph::new(Backend::Deamortized);
    for &(u, v) in &edges {
        g.insert_edge(u, v);
        g.insert_edge(v, u);
    }
    println!(
        "packed CSR: {} directed edges ingested; amortized {:.2} moves/edge",
        g.edges.len(),
        g.edges.total_moves() as f64 / g.edges.len().max(1) as f64,
    );

    // sanity: adjacency is sorted and duplicate-free (LabelMap keys are a set)
    let n0 = g.neighbors(0);
    assert!(n0.windows(2).all(|w| w[0] < w[1]), "neighbor lists are sorted");
    println!("neighbors(0) = {:?}...", &n0[..n0.len().min(8)]);

    let dist = g.bfs(0, nv);
    let reached = dist.iter().filter(|&&d| d >= 0).count();
    let diameter = dist.iter().max().copied().unwrap_or(0);
    println!("BFS from 0 over the packed layout: reached {reached}/{nv}, max depth {diameter}");
    assert!(reached > nv / 2, "random graph this dense should be mostly connected");
}
