//! A dynamic packed adjacency structure (packed CSR) on top of list
//! labeling — the dynamic-graph motivation from the paper's §1 (PMAs power
//! Packed-CSR / PPCSR / Terrace-style graph containers because neighbor
//! scans are contiguous array sweeps even under edge insertions).
//!
//! Edges `(u, v)` are kept sorted lexicographically in one list-labeling
//! structure; `neighbors(u)` is a rank-range walk. We build a random graph
//! incrementally (edges arrive in random order — the dynamic-graph
//! pattern) and run a BFS over the packed representation.
//!
//! Run with: `cargo run --release --example graph_edges`

use layered_list_labeling::core::ids::ElemId;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::deamortized::DeamortizedBuilder;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

struct PackedGraph<L: ListLabeling> {
    list: L,
    edge_of: HashMap<ElemId, (u32, u32)>,
    worst_op: u64,
    total: u64,
}

impl<L: ListLabeling> PackedGraph<L> {
    fn new(list: L) -> Self {
        Self { list, edge_of: HashMap::new(), worst_op: 0, total: 0 }
    }

    fn edge_at_rank(&self, r: usize) -> (u32, u32) {
        self.edge_of[&self.list.elem_at_rank(r)]
    }

    fn lower_bound(&self, key: (u32, u32)) -> usize {
        let (mut lo, mut hi) = (0usize, self.list.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.edge_at_rank(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn insert_edge(&mut self, u: u32, v: u32) {
        let rank = self.lower_bound((u, v));
        if rank < self.list.len() && self.edge_at_rank(rank) == (u, v) {
            return; // already present
        }
        let rep = self.list.insert(rank);
        self.total += rep.cost();
        self.worst_op = self.worst_op.max(rep.cost());
        self.edge_of.insert(rep.placed.expect("placed").0, (u, v));
    }

    /// Neighbors of `u`: a contiguous rank walk (physically, a contiguous
    /// array sweep — the whole point of packed graph layouts).
    fn neighbors(&self, u: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut r = self.lower_bound((u, 0));
        while r < self.list.len() {
            let (a, b) = self.edge_at_rank(r);
            if a != u {
                break;
            }
            out.push(b);
            r += 1;
        }
        out
    }

    fn bfs(&self, src: u32, nv: usize) -> Vec<i32> {
        let mut dist = vec![-1; nv];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.neighbors(u) {
                    if dist[v as usize] < 0 {
                        dist[v as usize] = dist[u as usize] + 1;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }
}

fn main() {
    let nv = 512usize;
    let ne = 4096usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    // random undirected edges, arriving in random order
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let u = rng.gen_range(0..nv as u32);
        let v = rng.gen_range(0..nv as u32);
        if u != v {
            edges.push((u, v));
        }
    }

    // The deamortized structure is the natural choice for streaming graph
    // updates: every edge insertion has bounded latency.
    let mut g = PackedGraph::new(DeamortizedBuilder::default().build_default(2 * ne + nv));
    for &(u, v) in &edges {
        g.insert_edge(u, v);
        g.insert_edge(v, u);
    }
    println!(
        "packed CSR: {} directed edges ingested; amortized {:.2} moves/edge, worst op {} moves",
        g.list.len(),
        g.total as f64 / g.list.len().max(1) as f64,
        g.worst_op
    );

    // sanity: adjacency is sorted and consistent
    let n0 = g.neighbors(0);
    assert!(n0.windows(2).all(|w| w[0] < w[1]), "neighbor lists are sorted");
    println!("neighbors(0) = {:?}...", &n0[..n0.len().min(8)]);

    let dist = g.bfs(0, nv);
    let reached = dist.iter().filter(|&&d| d >= 0).count();
    let diameter = dist.iter().max().copied().unwrap_or(0);
    println!("BFS from 0 over the packed layout: reached {reached}/{nv}, max depth {diameter}");
    assert!(reached > nv / 2, "random graph this dense should be mostly connected");
}
