//! Order maintenance on top of list labeling (Dietz '82; the paper's
//! footnote 1: the structure assigns each element a label ℓ(x) ∈ {1..m}
//! with x ≺ y ⟺ ℓ(x) < ℓ(y)).
//!
//! The application keeps a handle (`ElemId`) per inserted item and a
//! label table maintained *incrementally from the move logs* — each
//! operation's report lists exactly the elements whose labels changed, so
//! `order(a, b)` is a constant-time label comparison and the total label
//! maintenance work equals the structure's move cost (this is precisely
//! why low-cost list labeling matters for order maintenance).
//!
//! Run with: `cargo run --release --example order_maintenance`

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::ids::ElemId;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::embedding::EmbedBuilder;
use std::collections::HashMap;

/// An order-maintenance list: insert-after, delete, and O(1) order queries.
struct OrderList<L: ListLabeling> {
    list: L,
    label: HashMap<ElemId, u32>,
    rank_of: HashMap<ElemId, usize>, // maintained lazily for inserts only
}

impl<L: ListLabeling> OrderList<L> {
    fn new(list: L) -> Self {
        Self { list, label: HashMap::new(), rank_of: HashMap::new() }
    }

    fn apply_report(&mut self, rep: &layered_list_labeling::core::report::OpReport) {
        for mv in &rep.moves {
            self.label.insert(mv.elem, mv.to);
        }
        if let Some((id, pos)) = rep.placed {
            self.label.insert(id, pos);
        }
        if let Some((id, _)) = rep.removed {
            self.label.remove(&id);
        }
    }

    /// Current rank of a handle (O(log m) via its label).
    fn rank(&self, x: ElemId) -> usize {
        self.list.slots().rank_at(self.label[&x] as usize)
    }

    /// Insert a new element immediately after `after` (or first if None).
    fn insert_after(&mut self, after: Option<ElemId>) -> ElemId {
        let rank = match after {
            None => 0,
            Some(a) => self.rank(a) + 1,
        };
        let rep = self.list.insert(rank);
        let id = rep.placed.expect("insert places").0;
        self.apply_report(&rep);
        self.rank_of.insert(id, rank);
        id
    }

    /// Does `a` precede `b`? O(1): one label comparison.
    fn precedes(&self, a: ElemId, b: ElemId) -> bool {
        self.label[&a] < self.label[&b]
    }

    fn delete(&mut self, x: ElemId) {
        let r = self.rank(x);
        let rep = self.list.delete(r);
        self.apply_report(&rep);
    }
}

fn main() {
    let n = 2048;
    // Order maintenance loves the embedding: bounded per-op cost means
    // bounded label churn per operation.
    let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    let mut ol = OrderList::new(b.build_default(n));

    // Build a list by always inserting after a running cursor, then verify
    // order queries against ground truth.
    let mut handles = Vec::new();
    let mut cursor = None;
    for _ in 0..n / 2 {
        let h = ol.insert_after(cursor);
        handles.push(h);
        cursor = Some(h);
    }
    println!("built an order-maintenance list of {} items", handles.len());

    // ground truth: handles[i] precedes handles[j] iff i < j
    let mut checked = 0u32;
    for i in (0..handles.len()).step_by(97) {
        for j in (0..handles.len()).step_by(89) {
            if i != j {
                assert_eq!(ol.precedes(handles[i], handles[j]), i < j);
                checked += 1;
            }
        }
    }
    println!("order queries agree with ground truth ({checked} checked) ✓");

    // interleave: insert new items in the middle, delete a few, re-verify
    let mid = handles[handles.len() / 2];
    let a = ol.insert_after(Some(mid));
    let b2 = ol.insert_after(Some(a));
    assert!(ol.precedes(mid, a) && ol.precedes(a, b2));
    assert!(ol.precedes(b2, handles[handles.len() / 2 + 1]));
    ol.delete(a);
    assert!(ol.precedes(mid, b2));
    println!("mid-list insertions and deletions keep order consistent ✓");

    // label churn accounting: the labels rewritten == the structure's moves
    println!(
        "total label rewrites == total element moves: {} (amortized {:.2}/op)",
        ol.list.slots().lifetime_moves(),
        ol.list.slots().lifetime_moves() as f64 / (n / 2) as f64
    );
}
