//! Order maintenance on top of list labeling (Dietz '82; the paper's
//! footnote 1: the structure assigns each element a label ℓ(x) ∈ {1..m}
//! with x ≺ y ⟺ ℓ(x) < ℓ(y)).
//!
//! [`OrderedList`] is the library's order-maintenance front-end: stable
//! handles, handle-relative insertion, and O(1) `order(a, b)` via a label
//! table maintained *incrementally from the move logs* — each operation's
//! report lists exactly the elements whose labels changed, so the total
//! label-maintenance work equals the structure's move cost. That is
//! precisely why low-cost list labeling matters for order maintenance,
//! and `total_moves()` surfaces the accounting.
//!
//! Run with: `cargo run --release --example order_maintenance`

use layered_list_labeling::prelude::*;

fn main() {
    let n = 2048;
    // Order maintenance loves the layered structure: bounded per-op cost
    // means bounded label churn per operation.
    let mut ol: OrderedList<usize> =
        ListBuilder::new().backend(Backend::Corollary11).seed(42).ordered_list();

    // Build a list by always inserting after a running cursor, then verify
    // order queries against ground truth.
    let mut handles = Vec::new();
    let mut cursor: Option<Handle> = None;
    for i in 0..n / 2 {
        let h = match cursor {
            None => ol.push_front(i),
            Some(c) => ol.insert_after(c, i),
        };
        handles.push(h);
        cursor = Some(h);
    }
    println!("built an order-maintenance list of {} items", handles.len());

    // ground truth: handles[i] precedes handles[j] iff i < j
    let mut checked = 0u32;
    for i in (0..handles.len()).step_by(97) {
        for j in (0..handles.len()).step_by(89) {
            if i != j {
                assert_eq!(ol.precedes(handles[i], handles[j]), i < j);
                checked += 1;
            }
        }
    }
    println!("order queries agree with ground truth ({checked} checked) ✓");

    // interleave: insert new items in the middle, delete a few, re-verify
    let mid = handles[handles.len() / 2];
    let a = ol.insert_after(mid, 9001);
    let b = ol.insert_after(a, 9002);
    assert!(ol.precedes(mid, a) && ol.precedes(a, b));
    assert!(ol.precedes(b, handles[handles.len() / 2 + 1]));
    assert_eq!(ol.remove(a), Some(9001));
    assert!(ol.precedes(mid, b));
    assert!(!ol.contains(a));
    println!("mid-list insertions and deletions keep order consistent ✓");

    // label churn accounting: the labels rewritten == the structure's moves
    println!(
        "total label rewrites == total element moves: {} (amortized {:.2}/op)",
        ol.total_moves(),
        ol.total_moves() as f64 / (n / 2) as f64
    );
}
