//! End-to-end `lll-server` session: spawn the ordered-KV service on an
//! ephemeral loopback port, drive it with the blocking client — point
//! verbs, a bulk batch through the per-shard write path, ordered range
//! pages, the ops surface — and finish with a graceful drain that writes
//! a final snapshot, which we restore and verify.
//!
//! Run with: `cargo run --example kv_server`

use lll_server::{Client, Server, ServerConfig};
use lll_sharded::{ShardedBuilder, ShardedMap};
use std::sync::Arc;

fn main() {
    // Small shards so this demo's 5k keys visibly exercise the directory.
    let map = Arc::new(ShardedBuilder::new().max_shard_len(512).min_shard_len(32).build());
    let mut server = Server::start(map, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("lll-server listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");

    // Point verbs: one shard lock per request.
    client.insert(b"user:ada", b"lovelace").unwrap();
    client.insert(b"user:alan", b"turing").unwrap();
    println!("get user:ada      -> {:?}", as_text(client.get(b"user:ada").unwrap()));
    println!("contains user:eve -> {}", client.contains(b"user:eve").unwrap());

    // Bulk ingest: ONE round trip; the server sorts, dedups (last write
    // wins), cuts the run at the shard directory's split keys, and lands
    // each piece with an O(piece) bulk sweep — never per-op inserts.
    let batch: Vec<(Vec<u8>, Vec<u8>)> = (0..5_000u32)
        .map(|i| (format!("event:{i:06}").into_bytes(), i.to_le_bytes().to_vec()))
        .collect();
    let landed = client.batch_insert(batch).unwrap();
    println!("batch_insert      -> landed {landed} entries in one frame");

    // Ordered pagination: lexicographic key order, truncation flagged.
    let (page, truncated) = client.range(Some(b"event:000100"), Some(b"event:004900"), 3).unwrap();
    println!("range page        -> {} entries, truncated={truncated}", page.len());
    for (k, _) in &page {
        println!("                     {}", String::from_utf8_lossy(k));
    }

    // Ops surface: health and per-shard statistics.
    let health = client.health().unwrap();
    println!(
        "health            -> draining={} active_conns={} served={} len={}",
        health.draining, health.active_conns, health.served_requests, health.len
    );
    let stats = client.stats().unwrap();
    println!(
        "stats             -> {} shards, {} entries, {} splits, {} batches ({} entries batched)",
        stats.shards, stats.len, stats.splits, stats.batches, stats.batched_entries
    );

    // Graceful drain with a final snapshot: stop accepting, finish
    // in-flight requests, stream one atomic picture to disk.
    let snap = std::env::temp_dir().join(format!("kv_server_demo_{}.snap", std::process::id()));
    let snap_str = snap.to_str().unwrap().to_string();
    client.drain(Some(&snap_str)).unwrap();
    server.join();
    println!("drained           -> final snapshot at {snap_str}");

    let file = std::fs::File::open(&snap).expect("snapshot written");
    let restored: ShardedMap<Vec<u8>, Vec<u8>> =
        ShardedMap::read_snapshot(&mut std::io::BufReader::new(file)).expect("snapshot decodes");
    restored.check_invariants();
    println!(
        "restored          -> {} entries in {} shards (matches: {})",
        restored.len(),
        restored.shard_count(),
        restored.len() as u64 == stats.len
    );
    std::fs::remove_file(&snap).ok();
}

fn as_text(v: Option<Vec<u8>>) -> Option<String> {
    v.map(|b| String::from_utf8_lossy(&b).into_owned())
}
