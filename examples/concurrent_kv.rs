//! A multi-writer key-value index on `ShardedMap`: four writer threads
//! ingest disjoint key stripes while a reader stitches range scans, then
//! the main thread inspects the shard layout.
//!
//! Each shard is an independent list-labeling rebalance domain (the
//! workspace default: the paper's Corollary 11 layered structure), so
//! writers touching different regions of the key space never contend —
//! and every shard keeps the O(log n)-move guarantees internally.
//!
//! Run: `cargo run --release --example concurrent_kv`

use lll_sharded::ShardedBuilder;
use std::sync::Arc;
use std::thread;

fn main() {
    let map = Arc::new(
        ShardedBuilder::new()
            .seed(42)
            .max_shard_len(2048) // split threshold: the re-sharding knob
            .build::<u64, String>(),
    );

    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 10_000;

    thread::scope(|s| {
        // Writers own disjoint stripes (key ≡ tid mod WRITERS): no write
        // ever conflicts, and with > 1 shard most proceed in parallel.
        for tid in 0..WRITERS {
            let map = Arc::clone(&map);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let key = i * WRITERS + tid;
                    map.insert(key, format!("writer-{tid} item-{i}"));
                }
            });
        }
        // A concurrent reader: stitched scans lock one shard at a time, so
        // they interleave with the writers instead of stalling them.
        let reader_map = Arc::clone(&map);
        s.spawn(move || {
            let mut scanned = 0usize;
            for lo in (0..40_000u64).step_by(4_000) {
                scanned += reader_map.range(lo..lo + 1_000).len();
            }
            println!("reader overlapped the writers and scanned {scanned} live entries");
        });
    });

    let total = WRITERS * PER_WRITER;
    assert_eq!(map.len() as u64, total);
    assert_eq!(map.get(&42).as_deref(), Some("writer-2 item-10"));

    // Point reads, closure reads, and in-place mutation — one shard lock each.
    map.get_mut_with(&42, |v| v.push_str(" (audited)"));
    println!("key 42 -> {:?}", map.get(&42).unwrap());

    // A cross-shard scan in key order.
    let window = map.range(1_000..1_010);
    println!("[1000, 1010) -> {} entries, first {:?}", window.len(), window[0]);

    let stats = map.stats();
    println!("{stats}");
    println!(
        "occupancy: min shard {} / max shard {} entries",
        stats.shard_lens.iter().min().unwrap(),
        stats.shard_lens.iter().max().unwrap(),
    );

    // Draining most of the keys merges shards back together.
    for key in 0..total - 200 {
        map.remove(&key);
    }
    let stats = map.stats();
    println!("after drain: {stats}");
    map.check_invariants();
}
