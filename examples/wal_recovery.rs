//! Write-ahead durability end to end: log writes, tear the log the way a
//! crash would, recover, then audit and repair real damage.
//!
//! The walk-through stages every failure the WAL distinguishes:
//!
//! 1. **Normal operation** — inserts and batches are appended to the log
//!    before they touch the map; a checkpoint snapshots the map and
//!    truncates the log behind it.
//! 2. **Torn tail** — a crash mid-append leaves a half-written frame at
//!    the end of the last segment. That is crash-*normal*: recovery
//!    truncates it silently and reports the bytes dropped.
//! 3. **Mid-chain corruption** — a flipped byte in an *older* segment is
//!    not crash-normal (crashes only tear the tail). Recovery refuses
//!    with a typed error; `audit` locates the damage and `repair` cuts
//!    the log at the last trustworthy record.
//!
//! Run with: `cargo run --release --example wal_recovery`

use layered_list_labeling::prelude::*;
use lll_wal::{audit, repair, DurableMap, DurableOptions, FsyncPolicy, WalOptions};
use std::fs::OpenOptions;
use std::io::Write;

type Map = DurableMap<Vec<u8>, Vec<u8>>;

fn open(dir: &std::path::Path) -> (Map, lll_wal::DurableRecovery) {
    let opts = DurableOptions {
        // Group commit: every ack is fsync-durable, the flusher amortizes
        // one fsync over all concurrently staged records.
        wal: WalOptions { fsync: FsyncPolicy::Always, segment_bytes: 16 << 10 },
        ..DurableOptions::default()
    };
    Map::open(dir, opts, &ShardedBuilder::new()).expect("open durable map")
}

fn main() {
    let dir = std::env::temp_dir().join("lll_wal_recovery_example");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ── 1. Normal operation: log-then-apply, checkpoint, more writes ──
    let (map, rec) = open(&dir);
    println!("fresh open: {rec:?}");
    for i in 0..500u32 {
        map.insert(format!("key-{i:05}").into_bytes(), format!("value-{i}").into_bytes())
            .expect("insert");
    }
    let batch: Vec<_> =
        (500..600u32).map(|i| (format!("key-{i:05}").into_bytes(), b"batched".to_vec())).collect();
    map.batch_insert(batch).expect("batch insert");
    let ckpt = map.checkpoint().expect("checkpoint");
    println!(
        "checkpoint @ lsn {}: {} entries snapshotted, {} log segments truncated",
        ckpt.lsn, ckpt.entries, ckpt.truncated_segments
    );
    for i in 600..700u32 {
        map.insert(format!("key-{i:05}").into_bytes(), format!("late-{i}").into_bytes())
            .expect("insert");
    }
    println!(
        "live map: {} entries, durable through lsn {}",
        map.map().len(),
        map.wal().durable_lsn()
    );
    drop(map);

    // ── 2. Torn tail: a crash mid-append is routine, not damage ───────
    let last_segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("a log segment");
    let mut f = OpenOptions::new().append(true).open(&last_segment).unwrap();
    // Half a frame header: length says "more is coming", the crash didn't.
    f.write_all(&[0x40, 0, 0]).unwrap();
    drop(f);

    let (map, rec) = open(&dir);
    println!(
        "after torn tail: recovered {} entries (checkpoint lsn {} + {} replayed), \
         truncated {} torn bytes",
        map.map().len(),
        rec.checkpoint_lsn,
        rec.replayed,
        rec.wal.truncated_bytes
    );
    assert_eq!(map.map().len(), 700, "a torn tail loses no acked write");
    drop(map);

    // ── 3. Mid-chain damage: refused, audited, repaired ───────────────
    // Grow the log across several segments, then corrupt an early one.
    let (map, _) = open(&dir);
    for i in 0..800u32 {
        map.insert(format!("churn-{i:05}").into_bytes(), vec![0xAB; 48]).expect("insert");
    }
    drop(map);
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "churn must have rotated segments");
    let victim = &segments[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(victim, &bytes).unwrap();
    println!("flipped a byte mid-chain in {}", victim.file_name().unwrap().to_string_lossy());

    let err = Map::open(
        &dir,
        DurableOptions {
            wal: WalOptions { fsync: FsyncPolicy::Always, segment_bytes: 16 << 10 },
            ..DurableOptions::default()
        },
        &ShardedBuilder::new(),
    )
    .expect_err("mid-chain damage must refuse to open");
    println!("open refused (typed, no panic): {err}");

    let report = audit(&dir).expect("audit");
    println!(
        "audit: {} segments, {} sound records, first damage in segment #{:?}",
        report.segments.len(),
        report.records,
        report.first_damage
    );
    let fixed = repair(&dir).expect("repair");
    println!(
        "repair: truncated {:?} ({} bytes), removed {} segment(s), log now ends at lsn {}",
        fixed.truncated.as_ref().and_then(|p| p.file_name()).map(|n| n.to_string_lossy()),
        fixed.truncated_bytes,
        fixed.removed.len(),
        fixed.last_lsn
    );
    assert!(audit(&dir).expect("re-audit").healthy(), "repair must leave a healthy log");

    // Reopen: repair cut the chain at the damage, so every record after
    // it — acked or not — is gone; that is the explicit trade the repair
    // runbook documents. Everything at or before the cut survives, and
    // the checkpoint still anchors the 600 entries it snapshotted.
    let (map, rec) = open(&dir);
    println!(
        "after repair: {} entries recovered ({} replayed past checkpoint {})",
        map.map().len(),
        rec.replayed,
        rec.checkpoint_lsn
    );
    assert!(map.map().len() >= 600, "the checkpointed state survives any post-checkpoint damage");

    let _ = std::fs::remove_dir_all(&dir);
    println!("done");
}
