//! A PMA-backed ordered key-value index with range scans — the database
//! motivation the paper opens with (list labeling was proposed for database
//! indexing at PODS'99; packed-memory arrays power cache-friendly indexes
//! because a range scan is a contiguous memory sweep).
//!
//! [`LabelMap`] is the library's index front-end: a keyed sorted map that
//! keeps keys physically sorted in one slot array, growing on demand. We
//! ingest a bulk-load-heavy workload (interleaved sorted runs — the
//! pattern that punishes non-adaptive structures) into the classical PMA
//! backend and the layered structure of Corollary 11 and compare move
//! costs; the map's `total_moves()` surfaces the paper's cost model.
//!
//! Run with: `cargo run --release --example database_index`

use layered_list_labeling::prelude::*;

/// Bulk-ingest: sorted runs of keys, interleaved — the classic index
/// bulk-load pattern.
fn workload(n_runs: usize, run_len: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    for run in 0..n_runs {
        for i in 0..run_len {
            // each run is ascending, runs interleave in key space
            keys.push((i * n_runs + run) as u64 * 10);
        }
    }
    keys
}

fn ingest(backend: Backend, keys: &[u64]) -> LabelMap<u64, String> {
    let mut idx: LabelMap<u64, String> = ListBuilder::new().backend(backend).seed(7).label_map();
    for &k in keys {
        idx.insert(k, format!("row-{k}"));
    }
    idx
}

fn main() {
    let n_runs = 16;
    let run_len = 512;
    let keys = workload(n_runs, run_len);
    let n = keys.len();
    println!("ingesting {n} keys in {n_runs} interleaved sorted runs\n");

    let idx_classic = ingest(Backend::Classic, &keys);
    let idx_layered = ingest(Backend::Corollary11, &keys);

    println!("ingest cost (element moves, growth rebuilds included):");
    println!(
        "  classical PMA : {:>9} total  ({:.2}/insert)",
        idx_classic.total_moves(),
        idx_classic.total_moves() as f64 / n as f64
    );
    println!(
        "  layered (C11) : {:>9} total  ({:.2}/insert)",
        idx_layered.total_moves(),
        idx_layered.total_moves() as f64 / n as f64
    );

    // Point lookups and range scans behave identically on both.
    assert_eq!(idx_classic.get(&170).map(String::as_str), Some("row-170"));
    assert_eq!(idx_layered.get(&170).map(String::as_str), Some("row-170"));
    assert_eq!(idx_classic.get(&171), None);

    let scan: Vec<(u64, &str)> =
        idx_layered.range(100..400).map(|(k, v)| (*k, v.as_str())).collect();
    println!("\nrange scan [100, 400): {} rows", scan.len());
    for (k, v) in scan.iter().take(5) {
        println!("  {k:>5} -> {v}");
    }
    let scan_c: Vec<u64> = idx_classic.range(100..400).map(|(k, _)| *k).collect();
    assert_eq!(
        scan.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        scan_c,
        "both indexes must return identical scans"
    );
    println!("\nscan results identical across backends ✓");
}
