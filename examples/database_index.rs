//! A PMA-backed ordered key-value index with range scans — the database
//! motivation the paper opens with (list labeling was proposed for database
//! indexing at PODS'99; packed-memory arrays power cache-friendly indexes
//! because a range scan is a contiguous memory sweep).
//!
//! The index keeps keys physically sorted in one slot array. Point lookups
//! binary-search ranks; range scans walk consecutive ranks. We ingest a
//! bulk-load-heavy workload (sorted runs — the pattern that punishes
//! non-adaptive structures) into both the classical PMA and the layered
//! structure of Corollary 11 and compare move costs.
//!
//! Run with: `cargo run --release --example database_index`

use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::ids::ElemId;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::embedding::corollary11;
use std::collections::HashMap;

/// An ordered index: keys sorted in a list-labeling structure, payloads in
/// a side table keyed by element identity.
struct OrderedIndex<L: ListLabeling> {
    list: L,
    payload: HashMap<ElemId, (u64, String)>,
    moves: u64,
}

impl<L: ListLabeling> OrderedIndex<L> {
    fn new(list: L) -> Self {
        Self { list, payload: HashMap::new(), moves: 0 }
    }

    fn key_at_rank(&self, rank: usize) -> u64 {
        let id = self.list.elem_at_rank(rank);
        self.payload[&id].0
    }

    /// Rank of the smallest key ≥ `key`.
    fn lower_bound(&self, key: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.list.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at_rank(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn insert(&mut self, key: u64, value: String) {
        let rank = self.lower_bound(key);
        let rep = self.list.insert(rank);
        self.moves += rep.cost();
        let (id, _) = rep.placed.expect("insert places");
        self.payload.insert(id, (key, value));
    }

    fn get(&self, key: u64) -> Option<&str> {
        let r = self.lower_bound(key);
        if r < self.list.len() && self.key_at_rank(r) == key {
            Some(self.payload[&self.list.elem_at_rank(r)].1.as_str())
        } else {
            None
        }
    }

    /// All `(key, value)` pairs with key in `[lo, hi)`, by walking ranks —
    /// physically, a left-to-right sweep of one array.
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, &str)> {
        let mut out = Vec::new();
        let mut r = self.lower_bound(lo);
        while r < self.list.len() {
            let (k, v) = &self.payload[&self.list.elem_at_rank(r)];
            if *k >= hi {
                break;
            }
            out.push((*k, v.as_str()));
            r += 1;
        }
        out
    }
}

/// Bulk-ingest: sorted runs of keys, interleaved — the classic index
/// bulk-load pattern.
fn workload(n_runs: usize, run_len: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    for run in 0..n_runs {
        for i in 0..run_len {
            // each run is ascending, runs interleave in key space
            keys.push((i * n_runs + run) as u64 * 10);
        }
    }
    keys
}

fn ingest<L: ListLabeling>(list: L, keys: &[u64]) -> OrderedIndex<L> {
    let mut idx = OrderedIndex::new(list);
    for &k in keys {
        idx.insert(k, format!("row-{k}"));
    }
    idx
}

fn main() {
    let n_runs = 16;
    let run_len = 512;
    let keys = workload(n_runs, run_len);
    let n = keys.len();
    println!("ingesting {n} keys in {n_runs} interleaved sorted runs\n");

    let classic = ClassicBuilder.build_default(n);
    let idx_classic = ingest(classic, &keys);

    let layered = corollary11(n, 7);
    let idx_layered = ingest(layered, &keys);

    println!("ingest cost (element moves):");
    println!(
        "  classical PMA : {:>9} total  ({:.2}/insert)",
        idx_classic.moves,
        idx_classic.moves as f64 / n as f64
    );
    println!(
        "  layered (C11) : {:>9} total  ({:.2}/insert)",
        idx_layered.moves,
        idx_layered.moves as f64 / n as f64
    );

    // Point lookups and range scans behave identically on both.
    assert_eq!(idx_classic.get(170), Some("row-170"));
    assert_eq!(idx_layered.get(170), Some("row-170"));
    assert_eq!(idx_classic.get(171), None);

    let scan = idx_layered.range(100, 400);
    println!("\nrange scan [100, 400): {} rows", scan.len());
    for (k, v) in scan.iter().take(5) {
        println!("  {k:>5} -> {v}");
    }
    let scan_c = idx_classic.range(100, 400);
    assert_eq!(
        scan.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        scan_c.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        "both indexes must return identical scans"
    );
    println!("\nscan results identical across structures ✓");
}
