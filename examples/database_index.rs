//! A PMA-backed ordered key-value index with bulk loading and cursor
//! scans — the database motivation the paper opens with (list labeling was
//! proposed for database indexing at PODS'99; packed-memory arrays power
//! cache-friendly indexes because a range scan is a contiguous memory
//! sweep).
//!
//! [`LabelMap`] is the library's index front-end. This example exercises
//! the two ingest regimes a real index sees:
//!
//! * **Bulk load** — a pre-sorted base table enters through
//!   [`LabelMap::from_sorted_iter`]: one evenly-spread sweep, one move per
//!   row, O(n) total, instead of n point insertions at O(polylog n) each.
//! * **Sorted delta merges** — later sorted runs land via `extend`, which
//!   detects sortedness and merges each run of new keys into its gap as a
//!   single backend splice.
//!
//! Scans use a [`MapCursor`](lll_api::MapCursor): seek once (one binary
//! search), then walk the slot array's occupancy structure label-to-label —
//! no rank→label re-resolution per step.
//!
//! Run with: `cargo run --release --example database_index`

use layered_list_labeling::prelude::*;

/// The delta pattern that punishes non-adaptive structures: each run is
/// sorted, but runs interleave in key space.
fn delta_run(run: usize, n_runs: usize, run_len: usize) -> Vec<(u64, String)> {
    (0..run_len)
        .map(|i| {
            let k = (i * n_runs + run) as u64 * 10;
            (k, format!("row-{k}"))
        })
        .collect()
}

fn ingest(backend: Backend, n_runs: usize, run_len: usize) -> LabelMap<u64, String> {
    // Base table: the first run, bulk-loaded in one sweep.
    let mut idx: LabelMap<u64, String> = ListBuilder::new().backend(backend).seed(7).label_map();
    idx.extend_sorted(delta_run(0, n_runs, run_len));
    // Delta merges: each later sorted run lands through the bulk-aware
    // `extend` (sorted input is detected and spliced gap-by-gap).
    for run in 1..n_runs {
        idx.extend(delta_run(run, n_runs, run_len));
    }
    idx
}

fn main() {
    let n_runs = 16;
    let run_len = 512;
    let n = n_runs * run_len;
    println!("ingesting {n} keys: one bulk-loaded base run + {} sorted delta merges\n", n_runs - 1);

    let idx_classic = ingest(Backend::Classic, n_runs, run_len);
    let idx_layered = ingest(Backend::Corollary11, n_runs, run_len);

    println!("ingest cost (element moves, growth rebuilds included):");
    println!(
        "  classical PMA : {:>9} total  ({:.2}/insert)",
        idx_classic.total_moves(),
        idx_classic.total_moves() as f64 / n as f64
    );
    println!(
        "  layered (C11) : {:>9} total  ({:.2}/insert)",
        idx_layered.total_moves(),
        idx_layered.total_moves() as f64 / n as f64
    );

    // And the all-at-once regime: the whole table pre-sorted, one sweep.
    let all: Vec<(u64, String)> = {
        let mut rows: Vec<(u64, String)> =
            (0..n_runs).flat_map(|r| delta_run(r, n_runs, run_len)).collect();
        rows.sort_by_key(|&(k, _)| k);
        rows
    };
    let bulk_all = LabelMap::from_sorted_iter(all);
    println!(
        "  one-sweep load: {:>9} total  ({:.2}/insert)  — from_sorted_iter, O(n)",
        bulk_all.total_moves(),
        bulk_all.total_moves() as f64 / n as f64
    );

    // Point lookups behave identically on every construction path.
    assert_eq!(idx_classic.get(&170).map(String::as_str), Some("row-170"));
    assert_eq!(idx_layered.get(&170).map(String::as_str), Some("row-170"));
    assert_eq!(bulk_all.get(&170).map(String::as_str), Some("row-170"));
    assert_eq!(idx_classic.get(&171), None);

    // Range scan via a cursor: seek to the lower bound once, then walk the
    // physical array — each step is one occupancy query.
    let mut cur = idx_layered.cursor_at(&100);
    let mut scan: Vec<(u64, &str)> = Vec::new();
    while let Some((&k, v)) = cur.entry() {
        if k >= 400 {
            break;
        }
        scan.push((k, v.as_str()));
        cur.move_next();
    }
    println!("\ncursor scan [100, 400): {} rows", scan.len());
    for (k, v) in scan.iter().take(5) {
        println!("  {k:>5} -> {v}");
    }

    // The cursor scan agrees with the rank-addressed range iterator, on
    // every backend.
    let scan_iter: Vec<u64> = idx_layered.range(100..400).map(|(k, _)| *k).collect();
    assert_eq!(scan.iter().map(|(k, _)| *k).collect::<Vec<_>>(), scan_iter);
    let scan_c: Vec<u64> = idx_classic.range(100..400).map(|(k, _)| *k).collect();
    assert_eq!(scan_iter, scan_c, "all indexes must return identical scans");
    println!("\ncursor scan ≡ range scan, identical across backends ✓");
}
