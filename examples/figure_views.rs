//! Render the paper's Figure 1 (the three views of the embedding) and
//! Figure 2/4 mechanics (buffering, deadweight, incorporation) live on a
//! small instance, so you can watch the slot taxonomy evolve.
//!
//! Legend: `F` occupied F-slot · `f` free F-slot · `B` buffered element ·
//! `b` buffer dummy · `.` R-empty slot.
//!
//! (This example deliberately stays on the paper-level API — the views
//! render the concrete `Embed` type's internals, which the production
//! `lll-api` layer intentionally erases.)
//!
//! Run with: `cargo run --example figure_views`

use layered_list_labeling::adaptive::AdaptiveBuilder;
use layered_list_labeling::classic::ClassicBuilder;
use layered_list_labeling::core::traits::{LabelingBuilder, ListLabeling};
use layered_list_labeling::embedding::views::{embedding_view, figure1};
use layered_list_labeling::embedding::EmbedBuilder;

fn main() {
    let n = 24;
    let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    let mut e = b.build_default(n);

    println!("empty embedding (Figure 1's three views):\n{}", figure1(&e));

    // Fill half the capacity at the front (hammer) — cheap ops take the
    // fast path; expensive simulated ops buffer in the R-shell.
    for i in 0..n / 2 {
        e.insert(0);
        if [1, 4, 8, n / 2 - 1].contains(&i) {
            println!("after {} head-inserts:", i + 1);
            println!("{}", figure1(&e));
            if e.rebuild_pending() {
                println!("  (rebuild pending: {} buffered)\n", e.buffered());
            }
        }
    }

    let s = e.stats();
    println!(
        "stats so far: fast={} slow={} rebuilds={} max-deadweight={}",
        s.fast_ops, s.slow_ops, s.rebuilds_completed, s.max_deadweight
    );

    // Deletions leave ghosts in the F-emulator until it catches up.
    for _ in 0..4 {
        e.delete(0);
    }
    println!("\nafter 4 deletions:\n{}", figure1(&e));

    // Buffered-element view: slot counts are conserved forever.
    let tags = e.tag_array();
    println!(
        "slot census: {} F-slots, {} buffer slots ({} real, {} dummy), {} white",
        tags.f_count(),
        tags.buf_count(),
        tags.buffered_real_count(),
        tags.buf_dummy_count(),
        e.num_slots() - tags.f_count() - tags.buf_count(),
    );
    let v = embedding_view(&e);
    assert_eq!(v.chars().filter(|&c| c == 'F' || c == 'f').count(), tags.f_count());
    println!("\nviews consistent with the slot census ✓");
}
