//! Corollary 12 in action: a "learned" ingest pipeline.
//!
//! A database bulk-loader often has a model of where each arriving row will
//! end up in the final sorted order (from a learned CDF model, a histogram,
//! or last week's distribution). Corollary 12 turns that model into speed:
//! the layered structure `Predicted ⊳ (Randomized ⊳ Deamortized)` pays
//! O(log² η) amortized when the model's max rank error is η — while keeping
//! the randomized fallback on arbitrary input and the deamortized
//! worst-case cap on every single operation.
//!
//! We ingest a reversed stream (worst case for classical PMAs: every insert
//! at rank 0) with predictors of increasing error and watch the cost climb
//! from near-free (perfect model) toward the classical regime (useless
//! model), with the worst op bounded throughout. Oracle predictions are
//! per-arrival, so this sweep uses the paper-level fixed-capacity API; the
//! production path — `Backend::Corollary12` behind a [`LabelMap`] — runs
//! the same layered structure with the no-information predictor.
//!
//! Run with: `cargo run --release --example learned_index`

use layered_list_labeling::core::traits::ListLabeling;
use layered_list_labeling::embedding::corollary12;
use layered_list_labeling::prelude::*;
use layered_list_labeling::workloads::{descending_inserts, with_predictions};

fn main() {
    let n = 1 << 12;
    println!("ingesting {n} rows in reverse order with learned rank predictions\n");
    println!("{:>8}  {:>10}  {:>8}  {:>9}", "η", "amortized", "worst op", "slow ops");
    println!("{}", "-".repeat(42));

    for eta in [0usize, 4, 16, 64, 256, 1024] {
        let pw = with_predictions(descending_inserts(n), eta, 0xDB);
        let mut index = corollary12(n, eta.max(1), pw.predictions.clone(), 0xA1);
        let mut total = 0u64;
        let mut worst = 0u64;
        for &op in &pw.workload.ops {
            let c = index.apply(op).cost();
            total += c;
            worst = worst.max(c);
        }
        println!(
            "{:>8}  {:>10.2}  {:>8}  {:>9}",
            eta,
            total as f64 / n as f64,
            worst,
            index.stats().slow_ops
        );
        // the list-labeling contract holds regardless of model quality
        assert_eq!(index.len(), n);
        let l0 = index.label_of_rank(0);
        let l_last = index.label_of_rank(n - 1);
        assert!(l0 < l_last);
        assert!(index.stats().max_deadweight <= 4);
    }

    println!("\nbetter predictions -> cheaper ingest; the worst case stays capped");
    println!("(Corollary 12: O(log² η) good case + O(log^1.5 n) expected + O(log² n) worst case)");

    // The production path: the same layered structure, dynamic capacity,
    // keyed access — no predictions needed (the scaled-rank default).
    let mut learned: LabelMap<u64, u64> =
        ListBuilder::new().backend(Backend::Corollary12).eta(64).seed(0xA1).label_map();
    for k in (0..n as u64).rev() {
        learned.insert(k, k * 7);
    }
    assert_eq!(learned.len(), n);
    assert_eq!(learned.get(&99), Some(&693));
    println!(
        "\nproduction path (LabelMap over Backend::Corollary12, reversed ingest): \
         {:.2} moves/insert ✓",
        learned.total_moves() as f64 / n as f64
    );
}
