//! Durable snapshots: persist a map to disk, restore it in one O(n) bulk
//! sweep — no op-log replay, no label persistence.
//!
//! Labels are ephemeral artifacts of the rebalancing scheme; only rank
//! order is semantic. A snapshot is therefore just the versioned header
//! plus the sorted run, and restore lands it through the bulk path at one
//! move per element. `OrderedList` snapshots additionally carry the
//! handle↔rank table, so handles taken before the snapshot keep working
//! after restore — across a process restart, if you persist them too.
//!
//! Run with: `cargo run --release --example snapshot_restore`

use layered_list_labeling::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    // ── LabelMap: a keyed index, snapshot to a real file ──────────────
    let mut index: LabelMap<u64, String> =
        ListBuilder::new().backend(Backend::Corollary11).seed(42).label_map();
    for k in 0..50_000u64 {
        index.insert(k * 7 % 100_000, format!("row-{k}"));
    }
    let path = std::env::temp_dir().join("lll_index.snap");
    let mut file = BufWriter::new(File::create(&path).unwrap());
    index.write_snapshot(&mut file).unwrap();
    // Surface buffered write errors (a silently dropped BufWriter would
    // swallow them): flush explicitly before trusting the snapshot.
    file.into_inner().unwrap();
    println!(
        "wrote {} entries ({} bytes) to {}",
        index.len(),
        std::fs::metadata(&path).unwrap().len(),
        path.display()
    );

    let restored: LabelMap<u64, String> =
        LabelMap::read_snapshot(&mut BufReader::new(File::open(&path).unwrap())).unwrap();
    assert!(restored.iter().eq(index.iter()));
    println!(
        "restored {} entries on {} in {} moves ({:.3} moves/entry — the O(n) bulk sweep)",
        restored.len(),
        restored.backend_name(),
        restored.total_moves(),
        restored.total_moves() as f64 / restored.len() as f64
    );

    // ── OrderedList: handles survive the round-trip ───────────────────
    let mut tasks: OrderedList<String> = OrderedList::new();
    let deploy = tasks.push_back("deploy".into());
    let build = tasks.insert_before(deploy, "build".into());
    let test = tasks.insert_after(build, "test".into());
    let mut buf = Vec::new();
    tasks.write_snapshot(&mut buf).unwrap();
    let tasks2: OrderedList<String> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
    // `build`, `test`, `deploy` were issued before the snapshot; they
    // address the same elements in the restored list.
    assert_eq!(tasks2.get(build).map(String::as_str), Some("build"));
    assert!(tasks2.precedes(build, test) && tasks2.precedes(test, deploy));
    println!("\nhandles survived restore: {:?}", tasks2.values().collect::<Vec<_>>());

    // ── ShardedMap: the split-key directory is persisted too ──────────
    let shards = ShardedBuilder::new().max_shard_len(4096).seed(7).build::<u64, u64>();
    for k in 0..30_000u64 {
        shards.insert(k, k * k);
    }
    let mut buf = Vec::new();
    shards.write_snapshot(&mut buf).unwrap();
    let shards2 = ShardedMap::<u64, u64>::read_snapshot(&mut buf.as_slice()).unwrap();
    shards2.check_invariants();
    println!(
        "\nsharded map restored pre-sharded: {} → {} ({} shards preserved)",
        shards.stats(),
        shards2.stats(),
        shards2.shard_count()
    );

    // ── Corrupt input fails typed, never panics ───────────────────────
    let mut bent = buf.clone();
    bent[0] ^= 0xFF;
    match ShardedMap::<u64, u64>::read_snapshot(&mut bent.as_slice()) {
        Err(e) => println!("\ncorrupt snapshot rejected cleanly: {e}"),
        Ok(_) => unreachable!("bad magic must not decode"),
    }
    std::fs::remove_file(&path).ok();
}
