//! Live observability demo: spawn an `lll-server` on loopback, drive a
//! mixed workload from several client connections, then poll the
//! `metrics` and `trace` verbs and render them as a text dashboard —
//! per-verb latency quantiles, shard-occupancy skew, and the recent
//! structural-event log. This is the full dump a scrape endpoint or ops
//! tool would consume, fetched in two round trips.
//!
//! Run with: `cargo run --example metrics_dashboard`

use lll_obs::TraceKind;
use lll_server::{Client, Server, ServerConfig};
use lll_sharded::ShardedBuilder;
use std::sync::Arc;

const CONNS: usize = 4;
const OPS_PER_CONN: usize = 2_000;

fn main() {
    // Small shards so the workload visibly splits the directory.
    let map = Arc::new(ShardedBuilder::new().max_shard_len(256).min_shard_len(16).build());
    let mut server = Server::start(map, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("lll-server on {addr}; driving {CONNS} connections x {OPS_PER_CONN} mixed ops\n");

    // Mixed workload: 50% insert / 30% get / 15% contains / 5% remove,
    // keys drawn from a rolling window so shards split *and* merge.
    let workers: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..OPS_PER_CONN {
                    let key = format!("key:{:06}", (c * OPS_PER_CONN + i * 7) % 4_096);
                    let key = key.as_bytes();
                    match i % 20 {
                        0..=9 => drop(client.insert(key, b"v").unwrap()),
                        10..=15 => drop(client.get(key).unwrap()),
                        16..=18 => drop(client.contains(key).unwrap()),
                        _ => drop(client.remove(key).unwrap()),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    let mut client = Client::connect(addr).expect("connect");
    let m = client.metrics().expect("metrics verb");
    let t = client.trace().expect("trace verb");

    println!("== per-verb latency (ns), reply version {} ==", m.version);
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "verb", "count", "p50", "p95", "p99", "max"
    );
    for v in m.verbs.iter().filter(|v| v.count > 0) {
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
            v.verb, v.count, v.p50_ns, v.p95_ns, v.p99_ns, v.max_ns
        );
    }

    println!(
        "\n== shard occupancy ({} shards, {} splits, {} merges) ==",
        m.shard_lens.len(),
        m.splits,
        m.merges
    );
    let max_len = m.shard_lens.iter().copied().max().unwrap_or(0).max(1);
    for (i, ((len, reads), writes)) in
        m.shard_lens.iter().zip(&m.shard_reads).zip(&m.shard_writes).enumerate()
    {
        let bar = "#".repeat((len * 40 / max_len) as usize);
        println!("shard {i:>3}: {len:>5} entries  {reads:>6} reads {writes:>6} writes  |{bar}");
    }
    if m.lock_hold_nanos > 0 {
        println!(
            "lock time (debug builds): {} us waited, {} us held",
            m.lock_wait_nanos / 1_000,
            m.lock_hold_nanos / 1_000
        );
    }

    println!("\n== recent structural events (trace ring, oldest first) ==");
    for e in t.events.iter().rev().take(10).rev() {
        let kind = TraceKind::from_u64(e.kind).map_or("?", TraceKind::name);
        println!("#{:<6} {:<10} a={:<6} b={:<6} c={}", e.seq, kind, e.a, e.b, e.c);
    }

    println!("\n== Prometheus exposition (first lines of {} bytes) ==", m.text.len());
    for line in m.text.lines().take(8) {
        println!("{line}");
    }

    client.drain(None).expect("drain");
    server.join();
    println!("\ndrained cleanly; full metric catalog in docs/observability.md");
}
