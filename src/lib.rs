//! # layered-list-labeling
//!
//! A Rust reproduction of *Layered List Labeling* (Bender, Conway,
//! Farach-Colton, Komlós, Kuszmaul; PODS 2024): composable list-labeling /
//! packed-memory-array algorithms where the embedding `F ⊳ R` cherry-picks
//! the best worst-case, adaptive and expected cost bounds of its layers.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — traits, slot arrays, cost accounting ([`lll_core`]).
//! * [`classic`] — the classical Itai–Konheim–Rodeh PMA, amortized
//!   O(log² n).
//! * [`deamortized`] — a worst-case O(log² n)-style PMA (the `Z` of
//!   Corollary 11).
//! * [`randomized`] — a history-independent randomized PMA (the `Y`).
//! * [`adaptive`] — the Bender–Hu adaptive PMA, O(log n) on hammer-insert
//!   workloads (the `X`).
//! * [`predictions`] — a learning-augmented PMA with rank predictions
//!   (the `X` of Corollary 12).
//! * [`embedding`] — the paper's contribution: [`embedding::Embed`] (`F ⊳ R`,
//!   Theorem 2) and [`embedding::corollary11`] / [`embedding::corollary12`]
//!   (Theorem 3 instantiations).
//! * [`workloads`] — deterministic workload generators for every experiment.
//!
//! ## Quickstart
//!
//! ```
//! use layered_list_labeling::prelude::*;
//! use layered_list_labeling::embedding::corollary11;
//!
//! let n = 1024;
//! let mut layered = corollary11(n, 42);
//! // Hammer-insert workload: repeatedly insert at the same rank.
//! for _ in 0..n / 2 {
//!     layered.insert(0);
//! }
//! assert_eq!(layered.len(), n / 2);
//! // Elements stay sorted in one physical array:
//! let labels: Vec<usize> = (0..layered.len()).map(|r| layered.label_of_rank(r)).collect();
//! assert!(labels.windows(2).all(|w| w[0] < w[1]));
//! ```

pub use lll_adaptive as adaptive;
pub use lll_classic as classic;
pub use lll_core as core;
pub use lll_deamortized as deamortized;
pub use lll_embedding as embedding;
pub use lll_predictions as predictions;
pub use lll_randomized as randomized;
pub use lll_workloads as workloads;

pub mod prelude {
    //! One-stop imports for applications.
    pub use lll_core::prelude::*;
}
