//! # layered-list-labeling
//!
//! A Rust reproduction of *Layered List Labeling* (Bender, Conway,
//! Farach-Colton, Komlós, Kuszmaul; PODS 2024) — composable list-labeling /
//! packed-memory-array algorithms where the embedding `F ⊳ R` cherry-picks
//! the best worst-case, adaptive and expected cost bounds of its layers —
//! plus a production-facing ordered-collection API on top.
//!
//! ## Quickstart: the production API
//!
//! Applications use [`api`]: pick a backend at runtime, never choose a
//! capacity, and work with keys and stable handles instead of raw ranks.
//!
//! ```
//! use layered_list_labeling::prelude::*;
//!
//! // A sorted map on the paper's Corollary 11 structure. Keys stay
//! // physically sorted in one slot array, so `range` is a contiguous
//! // memory sweep; the structure grows and shrinks on demand.
//! let mut index: LabelMap<u64, &str> =
//!     ListBuilder::new().backend(Backend::Corollary11).seed(42).label_map();
//! index.insert(30, "thirty");
//! index.insert(10, "ten");
//! index.insert(20, "twenty");
//! assert_eq!(index.get(&20), Some(&"twenty"));
//! let keys: Vec<u64> = index.range(10..30).map(|(k, _)| *k).collect();
//! assert_eq!(keys, [10, 20]);
//!
//! // Order maintenance (Dietz '82): stable handles, O(1) order queries.
//! let mut list = OrderedList::new();
//! let b = list.push_back("b");
//! let a = list.insert_before(b, "a");
//! let c = list.insert_after(b, "c");
//! assert!(list.precedes(a, b) && list.precedes(b, c));
//! ```
//!
//! ## The paper-level API
//!
//! The theory-shaped interface (fixed capacity `n`, `insert(rank)`, move
//! logs) remains fully available for experiments and cost accounting:
//!
//! ```
//! use layered_list_labeling::core::traits::ListLabeling;
//! use layered_list_labeling::embedding::corollary11;
//!
//! let n = 1024;
//! let mut layered = corollary11(n, 42);
//! // Hammer-insert workload: repeatedly insert at the same rank.
//! for _ in 0..n / 2 {
//!     layered.insert(0);
//! }
//! assert_eq!(layered.len(), n / 2);
//! // Elements stay sorted in one physical array:
//! let labels: Vec<usize> = (0..layered.len()).map(|r| layered.label_of_rank(r)).collect();
//! assert!(labels.windows(2).all(|w| w[0] < w[1]));
//! ```
//!
//! ## Crate map
//!
//! * [`api`] — the production API: [`api::OrderedList`], [`api::LabelMap`],
//!   [`api::ListBuilder`] ([`lll_api`]).
//! * [`sharded`] — the concurrent façade: [`sharded::ShardedMap`] partitions
//!   the key space across per-shard rebalance domains behind per-shard
//!   locks for multi-writer workloads ([`lll_sharded`]).
//! * [`core`] — traits, slot arrays, cost accounting ([`lll_core`]).
//! * [`classic`] — the classical Itai–Konheim–Rodeh PMA, amortized
//!   O(log² n).
//! * [`deamortized`] — a worst-case O(log² n)-style PMA (the `Z` of
//!   Corollary 11).
//! * [`randomized`] — a history-independent randomized PMA (the `Y`).
//! * [`adaptive`] — the Bender–Hu adaptive PMA, O(log n) on hammer-insert
//!   workloads (the `X`).
//! * [`predictions`] — a learning-augmented PMA with rank predictions
//!   (the `X` of Corollary 12).
//! * [`embedding`] — the paper's contribution: [`embedding::Embed`] (`F ⊳ R`,
//!   Theorem 2) and [`embedding::corollary11`] / [`embedding::corollary12`]
//!   (Theorem 3 instantiations).
//! * [`workloads`] — deterministic workload generators for every experiment.

#![forbid(unsafe_code)]

pub use lll_adaptive as adaptive;
pub use lll_api as api;
pub use lll_classic as classic;
pub use lll_core as core;
pub use lll_deamortized as deamortized;
pub use lll_embedding as embedding;
pub use lll_predictions as predictions;
pub use lll_randomized as randomized;
pub use lll_sharded as sharded;
pub use lll_wal as wal;
pub use lll_workloads as workloads;

pub mod prelude {
    //! One-stop imports for applications.
    pub use lll_api::{
        Backend, Codec, ErasedList, Handle, LabelMap, ListBuilder, OrderedList, RawList,
        SnapshotError,
    };
    pub use lll_core::prelude::*;
    pub use lll_sharded::{ShardedBuilder, ShardedMap};
}
