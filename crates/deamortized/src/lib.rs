//! # lll-deamortized — a worst-case-bounded packed-memory array
//!
//! The `Z` of the paper's Corollary 11 is a list-labeling algorithm with
//! **worst-case** cost O(log² n) per operation (Willard 1992 \[49\]; see also
//! the simplified constructions of Bender et al. [7, 16]). Where the
//! classical PMA occasionally stops the world to re-spread a huge window,
//! a deamortized PMA pays a bounded amount on *every* operation.
//!
//! This implementation follows the staggered-incremental-rebalance approach
//! (DESIGN.md §5.3):
//!
//! * **Soft/hard thresholds.** Each calibrator-tree level has the classical
//!   interpolated *hard* threshold plus a tighter *soft* threshold. Soft
//!   violations enqueue an incremental **job**; the hard gap is the slack
//!   the window may consume while its job drains.
//! * **Incremental jobs.** A job freezes an even-spread target layout for
//!   its window and executes it a few moves at a time: left-movers
//!   left-to-right, then right-movers right-to-left — the order under which
//!   no move ever crosses an occupied slot. Every operation performs at
//!   most `work_quota ≈ c·log² n` moves of job work. Concurrent inserts,
//!   deletes and local shifts are tolerated: stale pair entries are skipped
//!   and blocked moves clamp to the nearest safe slot.
//! * **Bounded placement.** An insertion shifts at most `shift_cap ≈
//!   4·log n` slots to reach a gap; failing that it synchronously rebalances
//!   a window of at most `inline_cap ≈ c·log² n` slots around the insertion
//!   point. Only if even that window is hard-saturated does the structure
//!   fall back to a counted **forced sync** (classical full rebalance) —
//!   the safety valve that keeps the structure correct under adversarial
//!   timing. Experiments E10/E11 measure the realized worst case and the
//!   forced-sync count (zero on all evaluated workloads at realistic sizes).
//!
//! **Substitution note** (DESIGN.md §5.3): Willard's original construction
//! is substantially more intricate; what Theorem 3 consumes from `Z` — a
//! hard cap on every single operation's cost — is preserved and *measured*
//! rather than proven.

#![forbid(unsafe_code)]

use lll_core::density::{even_targets_into, SegTree, Thresholds};
use lll_core::ids::{ElemId, IdGen};
use lll_core::report::{BulkReport, OpReport};
use lll_core::slot_array::{merge_sorted, SlotArray};
use lll_core::traits::{log2f, LabelingBuilder, ListLabeling};
use std::collections::HashMap;

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DeamortizedConfig {
    /// Per-operation incremental job work, as a multiple of log²(m) moves.
    pub work_mult: f64,
    /// Max shift distance during placement, as a multiple of log(m).
    pub shift_cap_mult: f64,
    /// Max window size for synchronous inline rebalances, as a multiple of
    /// log²(m) slots.
    pub inline_cap_mult: f64,
    /// Absolute density margin reserved below the hard threshold at the
    /// leaves, tapering to zero at the root: the slack a window may consume
    /// while its background job drains. (0.0 = soft == hard.)
    pub soft_margin: f64,
}

impl Default for DeamortizedConfig {
    fn default() -> Self {
        Self { work_mult: 1.0, shift_cap_mult: 4.0, inline_cap_mult: 4.0, soft_margin: 0.10 }
    }
}

/// One incremental rebalance job: a frozen relocation plan for a window.
#[derive(Clone, Debug)]
struct Job {
    a: usize,
    b: usize,
    /// Remaining `(elem, target)` entries in safe execution order.
    queue: Vec<(ElemId, usize)>,
    /// Next queue index to execute.
    cursor: usize,
}

impl Job {
    fn remaining(&self) -> usize {
        self.queue.len() - self.cursor
    }
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeamortizedStats {
    /// Jobs created.
    pub jobs_created: u64,
    /// Jobs completed (including cancelled-by-absorption).
    pub jobs_completed: u64,
    /// Synchronous inline (small-window) rebalances.
    pub inline_rebalances: u64,
    /// Forced full-window synchronizations (the safety valve; should be 0).
    pub forced_syncs: u64,
    /// Job moves that had to clamp short of their target.
    pub clamped_moves: u64,
}

/// The deamortized PMA.
#[derive(Clone, Debug)]
pub struct DeamortizedPma {
    slots: SlotArray,
    tree: SegTree,
    thresholds: Thresholds,
    ids: IdGen,
    capacity: usize,
    cfg: DeamortizedConfig,
    jobs: Vec<Job>,
    elem_pos: HashMap<ElemId, usize>,
    stats: DeamortizedStats,
    work_quota: usize,
    shift_cap: usize,
    inline_cap: usize,
    /// Reusable buffer for the even-spread plan in [`Self::create_job`].
    targets_scratch: Vec<usize>,
    /// Reusable buffer for the right-moving half of a plan.
    movers_scratch: Vec<(ElemId, usize)>,
    /// Retired job queues, recycled by [`Self::create_job`] — steady-state
    /// churn creates and completes jobs constantly, and reusing their
    /// queues keeps that cycle allocation-free once warm.
    queue_pool: Vec<Vec<(ElemId, usize)>>,
}

impl DeamortizedPma {
    /// New empty structure for `capacity` elements on `num_slots` slots.
    pub fn new(capacity: usize, num_slots: usize, cfg: DeamortizedConfig) -> Self {
        assert!(num_slots as f64 >= capacity as f64 * 1.05, "deamortized PMA needs ≥1.05x slack");
        let lg = log2f(num_slots);
        Self {
            slots: SlotArray::new(num_slots),
            tree: SegTree::new(num_slots),
            thresholds: Thresholds::for_capacity(capacity, num_slots),
            ids: IdGen::new(),
            capacity,
            cfg,
            jobs: Vec::new(),
            elem_pos: HashMap::new(),
            stats: DeamortizedStats::default(),
            work_quota: ((cfg.work_mult * lg * lg).ceil() as usize).max(4),
            shift_cap: ((cfg.shift_cap_mult * lg).ceil() as usize).max(4),
            inline_cap: ((cfg.inline_cap_mult * lg * lg).ceil() as usize).max(16),
            targets_scratch: Vec::new(),
            movers_scratch: Vec::new(),
            queue_pool: Vec::new(),
        }
    }

    /// Experiment counters.
    pub fn stats(&self) -> DeamortizedStats {
        self.stats
    }

    /// Number of currently active incremental jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    // ----- threshold helpers ------------------------------------------------

    fn hard_upper(&self, level: usize) -> f64 {
        self.thresholds.upper(level, self.tree.height())
    }

    /// Soft (patrol) threshold: `hard - margin·(1 - level/height)`. Full
    /// margin at the leaves, zero at the root (whose hard threshold is
    /// capacity-driven and cannot be tightened without rejecting legal
    /// loads).
    fn soft_upper(&self, level: usize) -> f64 {
        let h = self.tree.height().max(1);
        let taper = 1.0 - level as f64 / h as f64;
        self.hard_upper(level) - self.cfg.soft_margin * taper
    }

    fn soft_lower(&self, level: usize) -> f64 {
        self.thresholds.lower(level, self.tree.height())
    }

    fn density_with(&self, a: usize, b: usize, extra: usize) -> f64 {
        (self.slots.occupied_in(a, b) + extra) as f64 / (b - a) as f64
    }

    // ----- tracked movement -------------------------------------------------

    fn place_tracked(&mut self, pos: usize) -> ElemId {
        let id = self.ids.fresh();
        self.slots.place(pos, id);
        self.elem_pos.insert(id, pos);
        id
    }

    fn move_tracked(&mut self, from: usize, to: usize) {
        let e = self.slots.move_elem(from, to);
        self.elem_pos.insert(e, to);
    }

    fn remove_tracked(&mut self, pos: usize) -> ElemId {
        let e = self.slots.remove(pos);
        self.elem_pos.remove(&e);
        e
    }

    // ----- incremental jobs -------------------------------------------------

    /// Freeze an even-spread plan for `[a, b)` into a job (or execute small
    /// plans inline when `sync` is set).
    ///
    /// Jobs at different levels may coexist even when nested: small jobs
    /// provide fast local relief while a large ancestor job drains slowly in
    /// the background. Stale plan entries are resolved through `elem_pos`
    /// and blocked moves clamp, so coexistence is safe.
    fn create_job(&mut self, a: usize, b: usize, sync: bool) {
        if !sync {
            // One plan per window is enough.
            if self.jobs.iter().any(|j| j.a == a && j.b == b) {
                return;
            }
        } else {
            // A synchronous rebalance invalidates any plan nested in it.
            self.invalidate_jobs_within(a, b);
        }

        let k = self.slots.occupied_in(a, b);
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        even_targets_into(a, b, k, &mut targets);
        // Left-movers go straight into the (recycled) queue ascending; the
        // right-movers collect in scratch and append reversed.
        let mut queue = self.queue_pool.pop().unwrap_or_default();
        queue.clear();
        let mut right_movers = std::mem::take(&mut self.movers_scratch);
        right_movers.clear();
        for (i, (pos, elem)) in self.slots.iter_occupied_in(a, b).enumerate() {
            let t = targets[i];
            if t < pos {
                queue.push((elem, t));
            } else if t > pos {
                right_movers.push((elem, t));
            }
        }
        // Safe order: left-movers ascending, then right-movers descending.
        queue.extend(right_movers.drain(..).rev());
        self.targets_scratch = targets;
        self.movers_scratch = right_movers;
        let mut job = Job { a, b, queue, cursor: 0 };
        self.stats.jobs_created += 1;
        if sync {
            self.drain_job(&mut job, usize::MAX);
            self.stats.jobs_completed += 1;
            self.recycle_queue(job.queue);
        } else if job.remaining() == 0 {
            self.stats.jobs_completed += 1;
            self.recycle_queue(job.queue);
        } else {
            self.jobs.push(job);
            // Backstop: never let the job set grow unboundedly; complete the
            // smallest plan synchronously if it does.
            let cap = 2 * self.tree.height() + 8;
            if self.jobs.len() > cap {
                self.jobs.sort_by_key(|j| j.b - j.a);
                let mut smallest = self.jobs.remove(0);
                self.drain_job(&mut smallest, usize::MAX);
                self.stats.jobs_completed += 1;
                self.recycle_queue(smallest.queue);
            }
        }
    }

    /// Complete-by-invalidation every job nested in `[a, b)`, recycling
    /// their queues.
    fn invalidate_jobs_within(&mut self, a: usize, b: usize) {
        let mut i = 0;
        while i < self.jobs.len() {
            if a <= self.jobs[i].a && self.jobs[i].b <= b {
                let job = self.jobs.remove(i);
                self.stats.jobs_completed += 1;
                self.recycle_queue(job.queue);
            } else {
                i += 1;
            }
        }
    }

    /// Return a finished job's queue to the pool (bounded; excess is freed).
    fn recycle_queue(&mut self, mut queue: Vec<(ElemId, usize)>) {
        if queue.capacity() > 0 && self.queue_pool.len() < 16 {
            queue.clear();
            self.queue_pool.push(queue);
        }
    }

    /// Execute up to `budget` moves of `job`; returns moves performed.
    fn drain_job(&mut self, job: &mut Job, budget: usize) -> usize {
        let mut done = 0usize;
        while job.cursor < job.queue.len() && done < budget {
            let (elem, target) = job.queue[job.cursor];
            job.cursor += 1;
            let Some(&cur) = self.elem_pos.get(&elem) else {
                continue; // deleted since the plan froze
            };
            if cur == target {
                continue;
            }
            let dest = if cur < target {
                // rightward: clamp at the first occupied slot in (cur, target]
                match self.slots.next_occupied_at_or_after(cur + 1) {
                    Some(fb) if fb <= target => {
                        self.stats.clamped_moves += 1;
                        if fb == cur + 1 {
                            continue;
                        }
                        fb - 1
                    }
                    _ => target,
                }
            } else {
                // leftward: clamp at the last occupied slot in [target, cur)
                match self.slots.prev_occupied_at_or_before(cur - 1) {
                    Some(fb) if fb >= target => {
                        self.stats.clamped_moves += 1;
                        if fb == cur - 1 {
                            continue;
                        }
                        fb + 1
                    }
                    _ => target,
                }
            };
            self.move_tracked(cur, dest);
            done += 1;
        }
        done
    }

    /// Perform one operation's worth of background job work.
    fn run_jobs(&mut self) {
        let mut budget = self.work_quota;
        // Smallest windows first: they unblock local density fastest.
        self.jobs.sort_by_key(|j| j.b - j.a);
        let mut i = 0;
        while i < self.jobs.len() && budget > 0 {
            let mut job = std::mem::replace(
                &mut self.jobs[i],
                Job { a: 0, b: 0, queue: Vec::new(), cursor: 0 },
            );
            let done = self.drain_job(&mut job, budget);
            budget -= done;
            if job.remaining() == 0 {
                self.stats.jobs_completed += 1;
                self.jobs.remove(i);
                self.recycle_queue(job.queue);
            } else {
                self.jobs[i] = job;
                i += 1;
            }
        }
    }

    /// Run every active job to completion (forced path only).
    fn complete_all_jobs(&mut self) {
        let jobs = std::mem::take(&mut self.jobs);
        for mut job in jobs {
            self.drain_job(&mut job, usize::MAX);
            self.stats.jobs_completed += 1;
            self.recycle_queue(job.queue);
        }
    }

    // ----- placement --------------------------------------------------------

    /// Synchronously rebalance `[a, b)` to an even spread (small windows).
    fn inline_rebalance(&mut self, a: usize, b: usize) {
        self.stats.inline_rebalances += 1;
        self.create_job(a, b, true);
    }

    /// Current predecessor/successor positions for inserting at `rank`.
    fn rank_neighbors(&self, rank: usize) -> (Option<usize>, Option<usize>) {
        let len = self.len();
        let pred = if rank > 0 { Some(self.slots.select(rank - 1)) } else { None };
        let succ = if rank < len { Some(self.slots.select(rank)) } else { None };
        (pred, succ)
    }

    /// Find the placement slot for an insert at `rank`. Returns the chosen
    /// free slot after any shifting. Neighbor positions are recomputed from
    /// the rank after every rebalance (positions go stale).
    fn make_room(&mut self, rank: usize) -> usize {
        let (pred, succ) = self.rank_neighbors(rank);
        let m = self.slots.num_slots();
        // 1. A free slot already inside the gap?
        let (lo, hi) = match (pred, succ) {
            (None, None) => return m / 2,
            (Some(p), None) => (p + 1, m),
            (None, Some(q)) => (0, q),
            (Some(p), Some(q)) => (p + 1, q),
        };
        if lo < hi {
            if let Some(f) = self.slots.next_free(lo) {
                if f < hi {
                    // choose the free slot closest to the middle of the gap
                    let mid = lo + (hi - lo) / 2;
                    let f2 = if mid > f {
                        self.slots.next_free(mid).filter(|&x| x < hi).unwrap_or(f)
                    } else {
                        f
                    };
                    return f2;
                }
            }
        }
        // 2. Shift within shift_cap.
        let anchor = pred.or(succ).unwrap();
        let left = succ.map(|q| q.saturating_sub(1)).or(pred).and_then(|s| self.slots.prev_free(s));
        let right = pred.map(|p| p + 1).or(succ).and_then(|s| self.slots.next_free(s));
        let dl = left.map(|l| anchor.saturating_sub(l)).unwrap_or(usize::MAX);
        let dr = right.map(|r| r.saturating_sub(anchor)).unwrap_or(usize::MAX);
        if dl.min(dr) <= self.shift_cap {
            return if dl <= dr {
                self.shift_left(left.unwrap(), pred, succ)
            } else {
                self.shift_right(right.unwrap(), pred, succ)
            };
        }
        // 3. Inline rebalance around the insertion point, capped at
        //    inline_cap slots: prefer the smallest hard-feasible window, but
        //    accept any sub-cap window with physical room (the background
        //    jobs will restore global thresholds; what placement needs here
        //    is bounded-cost local room).
        let probe = succ.or(pred).unwrap();
        let seg = self.tree.seg_of(probe);
        let mut fallback: Option<(usize, usize)> = None;
        for level in 0..=self.tree.height() {
            let (a, b) = self.tree.window(level, seg);
            if b - a > self.inline_cap {
                break;
            }
            let w = b - a;
            let occ = self.slots.occupied_in(a, b);
            if (occ + 1) as f64 <= self.hard_upper(level) * w as f64 {
                self.inline_rebalance(a, b);
                return self.make_room_at(rank);
            }
            if occ + 1 < w {
                fallback = Some((a, b)); // largest sub-cap window with room
            }
        }
        if let Some((a, b)) = fallback {
            self.inline_rebalance(a, b);
            return self.make_room_at(rank);
        }
        // 3.5 Directed drain: every sub-cap window is saturated, which means
        // background jobs covering this region are lagging. Push the jobs
        // that contain the probe, bounded by inline_cap moves, then rescan.
        {
            let mut budget = self.inline_cap;
            self.jobs.sort_by_key(|j| j.b - j.a);
            let mut i = 0;
            while i < self.jobs.len() && budget > 0 {
                if self.jobs[i].a <= probe && probe < self.jobs[i].b {
                    let mut job = std::mem::replace(
                        &mut self.jobs[i],
                        Job { a: 0, b: 0, queue: Vec::new(), cursor: 0 },
                    );
                    budget -= self.drain_job(&mut job, budget);
                    if job.remaining() == 0 {
                        self.stats.jobs_completed += 1;
                        self.jobs.remove(i);
                        self.recycle_queue(job.queue);
                        continue;
                    }
                    self.jobs[i] = job;
                }
                i += 1;
            }
            for level in 0..=self.tree.height() {
                let (a, b) = self.tree.window(level, seg);
                if b - a > self.inline_cap {
                    break;
                }
                if self.slots.occupied_in(a, b) + 1 < b - a {
                    self.inline_rebalance(a, b);
                    return self.make_room_at(rank);
                }
            }
        }
        // 4. Forced sync: classical full ensure-room (counted).
        self.stats.forced_syncs += 1;
        self.complete_all_jobs();
        for level in 0..=self.tree.height() {
            let (a, b) = self.tree.window(level, seg);
            let cap = self.hard_upper(level) * (b - a) as f64;
            if (self.slots.occupied_in(a, b) + 1) as f64 <= cap {
                self.inline_rebalance(a, b);
                return self.make_room_at(rank);
            }
        }
        let (a, b) = self.tree.root_window();
        self.inline_rebalance(a, b);
        self.make_room_at(rank)
    }

    /// After a rebalance: recompute neighbors from the rank and find the
    /// (now nearby) free slot without caps.
    fn make_room_at(&mut self, rank: usize) -> usize {
        let (pred, succ) = self.rank_neighbors(rank);
        self.make_room_simple(pred, succ)
    }

    /// A free slot is near; find it without caps.
    fn make_room_simple(&mut self, pred: Option<usize>, succ: Option<usize>) -> usize {
        let m = self.slots.num_slots();
        let (lo, hi) = match (pred, succ) {
            (None, None) => return m / 2,
            (Some(p), None) => (p + 1, m),
            (None, Some(q)) => (0, q),
            (Some(p), Some(q)) => (p + 1, q),
        };
        if lo < hi {
            if let Some(f) = self.slots.next_free(lo) {
                if f < hi {
                    return f;
                }
            }
        }
        let left = succ.map(|q| q.saturating_sub(1)).or(pred).and_then(|s| self.slots.prev_free(s));
        let right = pred.map(|p| p + 1).or(succ).and_then(|s| self.slots.next_free(s));
        let anchor = pred.or(succ).unwrap();
        let dl = left.map(|l| anchor.saturating_sub(l)).unwrap_or(usize::MAX);
        let dr = right.map(|r| r.saturating_sub(anchor)).unwrap_or(usize::MAX);
        assert!(dl != usize::MAX || dr != usize::MAX, "no free slot in array");
        if dl <= dr {
            self.shift_left(left.unwrap(), pred, succ)
        } else {
            self.shift_right(right.unwrap(), pred, succ)
        }
    }

    /// Shift `(l, p]` one slot left into free `l`; returns the vacated slot
    /// adjacent to the gap (where the new element belongs).
    fn shift_left(&mut self, l: usize, pred: Option<usize>, _succ: Option<usize>) -> usize {
        let p = pred.expect("left shift requires a predecessor");
        for q in l + 1..=p {
            self.move_tracked(q, q - 1);
        }
        p
    }

    /// Shift `[q, r)` one slot right into free `r`; returns the vacated slot.
    fn shift_right(&mut self, r: usize, _pred: Option<usize>, succ: Option<usize>) -> usize {
        let q = succ.expect("right shift requires a successor");
        for t in (q..r).rev() {
            self.move_tracked(t, t + 1);
        }
        q
    }

    // ----- post-op threshold patrol ------------------------------------------

    /// After an insert at `pos`: enqueue a job for the smallest soft-feasible
    /// ancestor if any soft threshold is violated.
    fn patrol_upper(&mut self, pos: usize) {
        let seg = self.tree.seg_of(pos);
        let h = self.tree.height();
        let mut violated = false;
        for level in 0..=h {
            let (a, b) = self.tree.window(level, seg);
            let d = self.density_with(a, b, 0);
            if d > self.soft_upper(level) {
                violated = true;
            } else if violated {
                self.create_job(a, b, false);
                return;
            } else {
                return;
            }
        }
        if violated {
            let (a, b) = self.tree.root_window();
            self.create_job(a, b, false);
        }
    }

    /// After a delete at `pos`: mirror patrol with lower thresholds.
    fn patrol_lower(&mut self, pos: usize) {
        if self.len() < 32 {
            return;
        }
        let seg = self.tree.seg_of(pos);
        let h = self.tree.height();
        let mut violated = false;
        for level in 0..=h {
            let (a, b) = self.tree.window(level, seg);
            let d = self.density_with(a, b, 0);
            if d < self.soft_lower(level) {
                violated = true;
            } else if violated {
                self.create_job(a, b, false);
                return;
            } else {
                return;
            }
        }
        if violated {
            let (a, b) = self.tree.root_window();
            self.create_job(a, b, false);
        }
    }
}

impl ListLabeling for DeamortizedPma {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_slots(&self) -> usize {
        self.slots.num_slots()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.insert_into(rank, &mut out);
        out
    }

    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank <= len, "insert rank {rank} > len {len}");
        assert!(len < self.capacity, "at capacity");
        self.run_jobs();
        let pos = self.make_room(rank);
        let id = self.place_tracked(pos);
        self.patrol_upper(pos);
        self.slots.drain_log_into(&mut out.moves);
        out.placed = Some((id, pos as u32));
    }

    fn delete(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.delete_into(rank, &mut out);
        out
    }

    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank < len, "delete rank {rank} >= len {len}");
        self.run_jobs();
        let pos = self.slots.select(rank);
        let id = self.remove_tracked(pos);
        self.patrol_lower(pos);
        self.slots.drain_log_into(&mut out.moves);
        out.removed = Some((id, pos as u32));
    }

    /// Native bulk insert: interleave the run into the smallest window
    /// around the insertion gap that stays within its **soft** threshold
    /// (so the sweep leaves no immediate patrol debt), as one evenly-spread
    /// sweep. Plans nested inside the swept window are completed by
    /// absorption (the sweep achieves their even layout); overlapping
    /// outer plans tolerate the motion as they do any concurrent edit —
    /// stale entries resolve through `elem_pos` and blocked moves clamp.
    ///
    /// The per-operation worst-case bound applies to single operations; a
    /// batch of `count` is one operation costing at most one sweep of its
    /// window (≤ window population + `count` moves).
    fn splice(&mut self, rank: usize, count: usize) -> BulkReport {
        let len = self.len();
        assert!(rank <= len, "splice rank {rank} > len {len}");
        assert!(len + count <= self.capacity, "splice of {count} overflows capacity");
        if count == 0 {
            return BulkReport::default();
        }
        if count == 1 {
            let mut bulk = BulkReport::default();
            bulk.absorb_op(self.insert(rank));
            return bulk;
        }
        let height = self.tree.height();
        let (a, b) = if len == 0 {
            self.tree.root_window()
        } else {
            let probe =
                if rank < len { self.slots.select(rank) } else { self.slots.select(len - 1) };
            let seg = self.tree.seg_of(probe);
            let mut choice = None;
            for level in 0..=height {
                let (a, b) = self.tree.window(level, seg);
                let occ = self.slots.occupied_in(a, b);
                if occ + count <= b - a
                    && (occ + count) as f64 <= self.soft_upper(level) * (b - a) as f64
                {
                    choice = Some((a, b));
                    break;
                }
            }
            // The root always fits physically (capacity < num_slots).
            choice.unwrap_or_else(|| self.tree.root_window())
        };
        self.invalidate_jobs_within(a, b);
        self.stats.inline_rebalances += 1;
        let at = rank - self.slots.rank_at(a);
        let ids: Vec<ElemId> = (0..count).map(|_| self.ids.fresh()).collect();
        merge_sorted(&mut self.slots, a, b, at, &ids);
        let moves = self.slots.drain_log();
        for mv in &moves {
            self.elem_pos.insert(mv.elem, mv.to as usize);
        }
        BulkReport { moves, placed: ids }
    }

    fn slots(&self) -> &SlotArray {
        &self.slots
    }

    fn set_metrics(&mut self, metrics: lll_core::metrics::MetricsHandle) {
        self.slots.set_metrics(metrics);
    }

    fn name(&self) -> &'static str {
        "deamortized-pma"
    }
}

/// Builder for [`DeamortizedPma`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DeamortizedBuilder {
    /// Tuning knobs.
    pub cfg: DeamortizedConfig,
}

impl LabelingBuilder for DeamortizedBuilder {
    type Structure = DeamortizedPma;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        DeamortizedPma::new(capacity, num_slots, self.cfg)
    }

    fn min_slack(&self) -> f64 {
        1.3
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        let lg = log2f(capacity);
        lg * lg
    }

    fn worst_case_hint(&self, capacity: usize) -> f64 {
        let lg = log2f(capacity);
        // job quota + placement shift + inline rebalance, in move units
        (self.cfg.work_mult + self.cfg.inline_cap_mult) * lg * lg + self.cfg.shift_cap_mult * lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::run_against_oracle;
    use rand::{Rng, SeedableRng};

    fn mixed_ops(n: usize, total: usize, seed: u64) -> Vec<Op> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..total {
            if len == 0 || (len < n && rng.gen_bool(0.6)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        ops
    }

    #[test]
    fn oracle_random_workload() {
        let n = 500;
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        run_against_oracle(&mut z, &mixed_ops(n, 4000, 13), 137);
    }

    #[test]
    fn oracle_hammer_workload() {
        let n = 800;
        let ops: Vec<Op> = (0..n).map(|_| Op::Insert(0)).collect();
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        run_against_oracle(&mut z, &ops, 101);
    }

    #[test]
    fn oracle_tail_then_head() {
        let n = 600;
        let mut ops: Vec<Op> = (0..n / 2).map(Op::Insert).collect();
        ops.extend((0..n / 2).map(|_| Op::Insert(0)));
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        run_against_oracle(&mut z, &ops, 97);
    }

    #[test]
    fn per_op_cost_is_capped() {
        // The deamortization claim: on the workload that gives the classical
        // PMA its worst spikes (sustained head inserts), every single
        // operation stays under the configured worst-case budget.
        let n = 1 << 13;
        let builder = DeamortizedBuilder::default();
        let mut z = builder.build(n, n * 14 / 10);
        let budget = builder.worst_case_hint(n) * 3.0; // generous constant
        let mut max = 0u64;
        for _ in 0..n {
            max = max.max(z.insert(0).cost());
        }
        assert!((max as f64) < budget, "worst op {max} exceeded deamortized budget {budget}");
        assert_eq!(z.stats().forced_syncs, 0, "safety valve should not fire");
    }

    #[test]
    fn spikes_are_smaller_than_classic() {
        use lll_classic::ClassicBuilder;
        use lll_core::traits::LabelingBuilder as _;
        let n = 1 << 13;
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        let mut c = ClassicBuilder.build(n, n * 14 / 10);
        let (mut max_z, mut max_c) = (0u64, 0u64);
        for _ in 0..n {
            max_z = max_z.max(z.insert(0).cost());
            max_c = max_c.max(c.insert(0).cost());
        }
        assert!(
            max_z < max_c / 2,
            "deamortized max {max_z} should be far below classical max {max_c}"
        );
    }

    #[test]
    fn jobs_eventually_drain() {
        let n = 2048;
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        for _ in 0..n / 2 {
            z.insert(0);
        }
        // A quiet period of deletes/inserts lets the queue drain.
        for _ in 0..n / 4 {
            z.delete(0);
            z.insert(0);
        }
        assert!(z.active_jobs() <= 4, "jobs piled up: {}", z.active_jobs());
    }

    #[test]
    fn fills_to_capacity_and_empties() {
        let n = 1000;
        let mut z = DeamortizedBuilder::default().build(n, n * 14 / 10);
        for i in 0..n {
            z.insert(i / 2);
        }
        assert_eq!(z.len(), n);
        for _ in 0..n {
            z.delete(z.len() / 2);
        }
        assert!(z.is_empty());
    }
}
