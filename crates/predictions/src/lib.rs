//! # lll-predictions — a learning-augmented packed-memory array
//!
//! McCauley, Moseley, Niaparast, Singh, *Online List Labeling with
//! Predictions* (2023) — reference \[35\] of the layered-list-labeling paper
//! and the `X` of its Corollary 12.
//!
//! Each inserted element arrives with a **predicted final rank**; if the
//! predictor's maximum error is `η`, the algorithm achieves amortized cost
//! **O(log² η)** — beating the classical O(log² n) whenever predictions are
//! good, degrading gracefully to the classical bound as η → n.
//!
//! The mechanism (DESIGN.md §5.5): an element predicted to end at final
//! rank `p` is placed near slot `p·m/n` — its slot in the *final* layout —
//! subject to staying between its current rank neighbors. Good predictions
//! therefore keep the occupied density uniform **with respect to final
//! order**, so density violations are confined to η-sized neighborhoods:
//! rebalance windows are capped at `Θ(η·m/n)` slots (with a growing-window
//! fallback that restores the classical behavior when predictions lie).
//!
//! The [`RankPredictor`] trait abstracts the prediction source; workloads
//! provide [`VecPredictor`] (an oracle with injected bounded error), and
//! [`ScaledRankPredictor`] gives the no-information default (current rank
//! scaled to capacity), under which the structure behaves like a classical
//! PMA.

#![forbid(unsafe_code)]

use lll_core::density::{even_targets, SegTree, Thresholds};
use lll_core::ids::IdGen;
use lll_core::report::OpReport;
use lll_core::slot_array::{spread_moves, SlotArray};
use lll_core::traits::{log2f, LabelingBuilder, ListLabeling};

/// A source of predicted final ranks, consulted once per insertion in
/// arrival order.
pub trait RankPredictor: Clone {
    /// Predict the final rank of the element being inserted now at current
    /// `rank`, given the structure's current `len` and `capacity`.
    fn predict(&mut self, rank: usize, len: usize, capacity: usize) -> usize;
}

/// No-information default: scales the current rank to the full capacity
/// (an element at the median now is predicted to end at the median).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScaledRankPredictor;

impl RankPredictor for ScaledRankPredictor {
    fn predict(&mut self, rank: usize, len: usize, capacity: usize) -> usize {
        if len == 0 {
            return capacity / 2;
        }
        ((rank as u128 * capacity as u128) / (len as u128 + 1)) as usize
    }
}

/// An oracle predictor: a pre-computed prediction per insertion, consumed
/// in arrival order. Workload generators produce these with a controlled
/// maximum error η (experiment E6).
#[derive(Clone, Debug, Default)]
pub struct VecPredictor {
    preds: Vec<usize>,
    next: usize,
}

impl VecPredictor {
    /// Wrap a per-insertion prediction sequence.
    pub fn new(preds: Vec<usize>) -> Self {
        Self { preds, next: 0 }
    }
}

impl RankPredictor for VecPredictor {
    fn predict(&mut self, rank: usize, _len: usize, _capacity: usize) -> usize {
        let p = self.preds.get(self.next).copied().unwrap_or(rank);
        self.next += 1;
        p
    }
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct PredictedStats {
    /// Rebalances within the η-capped window family.
    pub local_rebalances: u64,
    /// Rebalances that needed the growing-window fallback (prediction
    /// quality worse than the configured η).
    pub grown_rebalances: u64,
}

/// The learning-augmented PMA.
#[derive(Clone, Debug)]
pub struct PredictedPma<P: RankPredictor> {
    slots: SlotArray,
    tree: SegTree,
    thresholds: Thresholds,
    ids: IdGen,
    capacity: usize,
    predictor: P,
    /// Rebalance windows are capped at this many slots (≈ 4·η·m/n).
    cap_window: usize,
    stats: PredictedStats,
}

impl<P: RankPredictor> PredictedPma<P> {
    /// New structure for `capacity` elements on `num_slots` slots, tuned for
    /// maximum prediction error `eta` (in rank units), with the given
    /// predictor.
    pub fn new(capacity: usize, num_slots: usize, eta: usize, predictor: P) -> Self {
        assert!(num_slots > capacity);
        let tree = SegTree::new(num_slots);
        let seg = num_slots / tree.num_segs().max(1);
        let slots_per_rank = num_slots as f64 / capacity as f64;
        let cap_window =
            ((4.0 * eta.max(1) as f64 * slots_per_rank).ceil() as usize).max(4 * seg.max(2));
        Self {
            slots: SlotArray::new(num_slots),
            tree,
            thresholds: Thresholds::for_capacity(capacity, num_slots),
            ids: IdGen::new(),
            capacity,
            predictor,
            cap_window,
            stats: PredictedStats::default(),
        }
    }

    /// Experiment counters.
    pub fn stats(&self) -> PredictedStats {
        self.stats
    }

    /// The configured rebalance-window cap in slots.
    pub fn cap_window(&self) -> usize {
        self.cap_window
    }

    fn rebalance(&mut self, a: usize, b: usize) {
        let k = self.slots.occupied_in(a, b);
        let targets = even_targets(a, b, k);
        let mut pairs = Vec::with_capacity(k);
        for (i, (pos, _)) in self.slots.iter_occupied_in(a, b).enumerate() {
            pairs.push((pos, targets[i]));
        }
        spread_moves(&mut self.slots, &pairs);
    }

    /// Make room near `probe` for one more element: smallest within-cap
    /// calibrator window within threshold, else geometrically grown
    /// neighborhoods (the bad-prediction fallback), else the root.
    fn ensure_room(&mut self, probe: usize) {
        let m = self.slots.num_slots();
        let h = self.tree.height();
        let seg = self.tree.seg_of(probe);
        // Leaf fast path: within threshold and physically roomy.
        let (la, lb) = self.tree.window(0, seg);
        let leaf_occ = self.slots.occupied_in(la, lb);
        if (leaf_occ + 1) as f64 <= self.thresholds.upper(0, h) * (lb - la) as f64
            && leaf_occ < lb - la
        {
            return;
        }
        for level in 1..=h {
            let (a, b) = self.tree.window(level, seg);
            if b - a > self.cap_window {
                break;
            }
            if (self.slots.occupied_in(a, b) + 1) as f64
                <= self.thresholds.upper(level, h) * (b - a) as f64
            {
                self.rebalance(a, b);
                self.stats.local_rebalances += 1;
                return;
            }
        }
        // Growing-neighborhood fallback: predictions were worse than η here.
        let mut half = self.cap_window.max(1);
        loop {
            let a = probe.saturating_sub(half);
            let b = (probe + half).min(m);
            if (self.slots.occupied_in(a, b) + 1) as f64
                <= self.thresholds.root_upper * (b - a) as f64
                || (a == 0 && b == m)
            {
                assert!(self.len() < m, "array physically full: len={} m={m}", self.len());
                self.rebalance(a, b);
                self.stats.grown_rebalances += 1;
                return;
            }
            half *= 2;
        }
    }

    fn neighbors(&self, rank: usize) -> (Option<usize>, Option<usize>) {
        let len = self.len();
        let pred = if rank > 0 { Some(self.slots.select(rank - 1)) } else { None };
        let succ = if rank < len { Some(self.slots.select(rank)) } else { None };
        (pred, succ)
    }

    /// The slot the prediction asks for, clamped into the legal gap.
    fn desired_slot(&self, prediction: usize, rank: usize) -> usize {
        let m = self.slots.num_slots();
        let ideal = ((prediction.min(self.capacity) as u128 * m as u128)
            / self.capacity.max(1) as u128) as usize;
        let ideal = ideal.min(m - 1);
        let (pred, succ) = self.neighbors(rank);
        let lo = pred.map(|p| p + 1).unwrap_or(0);
        let hi = succ.unwrap_or(m); // exclusive
        if lo >= hi {
            // adjacent neighbors: no legal slot without shifting; aim at the
            // boundary, place_at will shift
            return lo.min(m - 1);
        }
        ideal.clamp(lo, hi - 1)
    }

    /// Place a fresh element as close to `want` as the gap allows,
    /// shifting minimally when the gap is saturated.
    fn place_at(&mut self, rank: usize, want: usize) -> usize {
        let (pred, succ) = self.neighbors(rank);
        let m = self.slots.num_slots();
        let (lo, hi) = match (pred, succ) {
            (None, None) => (0, m),
            (Some(p), None) => (p + 1, m),
            (None, Some(q)) => (0, q),
            (Some(p), Some(q)) => (p + 1, q),
        };
        if lo < hi && !self.slots.is_occupied(want.clamp(lo, hi - 1)) {
            let id = self.ids.fresh();
            let pos = want.clamp(lo, hi - 1);
            self.slots.place(pos, id);
            return pos;
        }
        // Saturated gap: shift toward the nearest free slot.
        let anchor = pred.or(succ).unwrap_or(m / 2);
        let left = match (pred, succ) {
            (None, Some(q)) => {
                if q > 0 {
                    self.slots.prev_free(q - 1)
                } else {
                    None
                }
            }
            (Some(p), _) => self.slots.prev_free(p),
            _ => None,
        };
        let right = match (pred, succ) {
            (Some(p), None) => self.slots.next_free(p + 1),
            (_, Some(q)) => self.slots.next_free(q),
            _ => None,
        };
        let dl = left.map(|l| anchor.saturating_sub(l)).unwrap_or(usize::MAX);
        let dr = right.map(|r| r.saturating_sub(anchor)).unwrap_or(usize::MAX);
        let pos = if dl <= dr {
            let l = left.expect("no free slot");
            let p = pred.expect("left shift requires predecessor");
            for q in l + 1..=p {
                self.slots.move_elem(q, q - 1);
            }
            p
        } else {
            let r = right.expect("no free slot");
            let q = succ.expect("right shift requires successor");
            for t in (q..r).rev() {
                self.slots.move_elem(t, t + 1);
            }
            q
        };
        let id = self.ids.fresh();
        self.slots.place(pos, id);
        pos
    }
}

impl<P: RankPredictor> ListLabeling for PredictedPma<P> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_slots(&self) -> usize {
        self.slots.num_slots()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.insert_into(rank, &mut out);
        out
    }

    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank <= len, "insert rank {rank} > len {len}");
        assert!(len < self.capacity, "at capacity");
        let prediction = self.predictor.predict(rank, len, self.capacity);
        if len > 0 {
            let probe = self.desired_slot(prediction, rank);
            self.ensure_room(probe);
            // positions may have moved; the desired slot is recomputed below
        }
        let want = self.desired_slot(prediction, rank);
        let pos = self.place_at(rank, want);
        out.placed = self.slots.get(pos).map(|e| (e, pos as u32));
        self.slots.drain_log_into(&mut out.moves);
    }

    fn delete(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.delete_into(rank, &mut out);
        out
    }

    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank < len, "delete rank {rank} >= len {len}");
        let pos = self.slots.select(rank);
        let elem = self.slots.remove(pos);
        // Local lower-threshold patrol, capped like the upper side.
        if self.len() >= 8 {
            let h = self.tree.height();
            let seg = self.tree.seg_of(pos);
            let (la, lb) = self.tree.window(0, seg);
            let d = self.slots.occupied_in(la, lb) as f64 / (lb - la) as f64;
            if d < self.thresholds.lower(0, h) {
                for level in 1..=h {
                    let (a, b) = self.tree.window(level, seg);
                    if b - a > self.cap_window {
                        break;
                    }
                    let dd = self.slots.occupied_in(a, b) as f64 / (b - a) as f64;
                    if dd >= self.thresholds.lower(level, h) {
                        self.rebalance(a, b);
                        self.stats.local_rebalances += 1;
                        break;
                    }
                }
            }
        }
        self.slots.drain_log_into(&mut out.moves);
        out.removed = Some((elem, pos as u32));
    }

    fn slots(&self) -> &SlotArray {
        &self.slots
    }

    fn set_metrics(&mut self, metrics: lll_core::metrics::MetricsHandle) {
        self.slots.set_metrics(metrics);
    }

    fn name(&self) -> &'static str {
        "predicted-pma"
    }
}

/// Builder for [`PredictedPma`]: carries the error budget η and a prototype
/// predictor cloned into each built structure.
#[derive(Clone, Debug)]
pub struct PredictedBuilder<P: RankPredictor> {
    /// Maximum prediction error the structure is tuned for (rank units).
    pub eta: usize,
    /// Prototype predictor, cloned per build.
    pub predictor: P,
}

impl Default for PredictedBuilder<ScaledRankPredictor> {
    fn default() -> Self {
        Self { eta: 64, predictor: ScaledRankPredictor }
    }
}

impl<P: RankPredictor> LabelingBuilder for PredictedBuilder<P> {
    type Structure = PredictedPma<P>;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        PredictedPma::new(capacity, num_slots, self.eta, self.predictor.clone())
    }

    fn expected_cost_hint(&self, _capacity: usize) -> f64 {
        let lg = log2f(self.eta.max(2));
        (lg * lg).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::run_against_oracle;
    use rand::{Rng, SeedableRng};

    /// Descending-value insertion: arrival i ends at final rank n-1-i, so
    /// every insert is at current rank 0 — the classical PMA's hammer case,
    /// the predicted PMA's best case (perfect predictions spread arrivals).
    fn descending(n: usize) -> (Vec<Op>, Vec<usize>) {
        let ops = vec![Op::Insert(0); n];
        let preds = (0..n).rev().collect();
        (ops, preds)
    }

    #[test]
    fn oracle_with_perfect_predictions() {
        let n = 600;
        let (ops, preds) = descending(n);
        let b = PredictedBuilder { eta: 1, predictor: VecPredictor::new(preds) };
        let mut s = b.build(n, n * 14 / 10);
        run_against_oracle(&mut s, &ops, 53);
    }

    #[test]
    fn oracle_with_noisy_predictions() {
        let n = 600;
        let eta = 40usize;
        let (ops, mut preds) = descending(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for p in &mut preds {
            let noise = rng.gen_range(0..=2 * eta) as isize - eta as isize;
            *p = (*p as isize + noise).clamp(0, n as isize - 1) as usize;
        }
        let b = PredictedBuilder { eta, predictor: VecPredictor::new(preds) };
        let mut s = b.build(n, n * 14 / 10);
        run_against_oracle(&mut s, &ops, 53);
    }

    #[test]
    fn oracle_with_scaled_default() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 500;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..3000 {
            if len == 0 || (len < n && rng.gen_bool(0.6)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        let mut s = PredictedBuilder::default().build(n, n * 14 / 10);
        run_against_oracle(&mut s, &ops, 97);
    }

    #[test]
    fn perfect_predictions_beat_classic_on_descending() {
        use lll_classic::ClassicBuilder;
        let n = 1 << 13;
        let (ops, preds) = descending(n);
        let b = PredictedBuilder { eta: 1, predictor: VecPredictor::new(preds) };
        let mut s = b.build(n, n * 14 / 10);
        let mut c = ClassicBuilder.build(n, n * 14 / 10);
        let mut cost_s = 0u64;
        let mut cost_c = 0u64;
        for &op in &ops {
            cost_s += s.apply(op).cost();
            cost_c += c.apply(op).cost();
        }
        let (a, b2) = (cost_s as f64 / n as f64, cost_c as f64 / n as f64);
        assert!(a < 0.4 * b2, "predicted ({a:.2}/op) should be far below classical ({b2:.2}/op)");
    }

    #[test]
    fn cost_grows_with_eta() {
        // Corollary 12's shape: amortized cost increases with predictor
        // error (≈ log² η).
        let n = 1 << 12;
        let run = |eta: usize, seed: u64| -> f64 {
            let (ops, mut preds) = descending(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            if eta > 1 {
                for p in &mut preds {
                    let noise = rng.gen_range(0..=2 * eta) as isize - eta as isize;
                    *p = (*p as isize + noise).clamp(0, n as isize - 1) as usize;
                }
            }
            let b = PredictedBuilder { eta, predictor: VecPredictor::new(preds) };
            let mut s = b.build(n, n * 14 / 10);
            let total: u64 = ops.iter().map(|&op| s.apply(op).cost()).sum();
            total as f64 / n as f64
        };
        let low = run(1, 1);
        let high = run(n / 4, 1);
        assert!(low < high, "cost should grow with η: η=1 → {low:.2}, η=n/4 → {high:.2}");
    }

    #[test]
    fn grown_rebalances_fire_only_on_bad_predictions() {
        let n = 4096;
        // Perfect predictions, η configured honestly: no grown rebalances.
        let (ops, preds) = descending(n);
        let b = PredictedBuilder { eta: 1, predictor: VecPredictor::new(preds) };
        let mut s = b.build(n, n * 14 / 10);
        for &op in &ops {
            s.apply(op);
        }
        assert_eq!(s.stats().grown_rebalances, 0, "perfect predictions should stay local");
    }

    #[test]
    fn fills_to_capacity() {
        let n = 500;
        let mut s = PredictedBuilder::default().build(n, n * 14 / 10);
        for i in 0..n {
            s.insert(i / 2);
        }
        assert_eq!(s.len(), n);
    }
}
