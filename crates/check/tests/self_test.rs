//! The linter's own gate: every committed known-bad fixture must be
//! flagged (with the expected rules), the known-good fixture must be
//! silent, the CLI must exit non-zero on bad input, and the live
//! workspace must scan clean — so `cargo test` fails the moment a rule
//! regresses *or* the workspace picks up a violation.

use lll_check::{
    check_file, Diagnostic, RULE_GRAMMAR, RULE_LOCK_ORDER, RULE_NO_ALLOC, RULE_OBS,
    RULE_PANIC_FREE, RULE_UNSAFE,
};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path).unwrap();
    (path.to_string_lossy().into_owned(), text)
}

fn run(name: &str) -> Vec<Diagnostic> {
    let (path, text) = fixture(name);
    check_file(&path, &text)
}

fn count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn flags_panic_free_violations() {
    let diags = run("bad_panic_free.rs");
    // indexing, unwrap, expect, truncating cast, panic!, unreachable!
    assert_eq!(count(&diags, RULE_PANIC_FREE), 6, "{diags:#?}");
    assert_eq!(diags.len(), 6, "only panic-free findings expected: {diags:#?}");
}

#[test]
fn flags_wal_decode_regressions() {
    let diags = run("bad_wal_decode.rs");
    // 7 index expressions (4 header bytes, the unwrap line's slice, the
    // expect line's slice — see the fixture), unwrap, expect, panic!,
    // unreachable!, truncating cast
    assert_eq!(count(&diags, RULE_PANIC_FREE), 11, "{diags:#?}");
    assert_eq!(diags.len(), 11, "only panic-free findings expected: {diags:#?}");
}

#[test]
fn flags_lock_order_violations() {
    let diags = run("bad_lock_order.rs");
    // nested shard locks, directory under shard, raw .read() bypass
    assert_eq!(count(&diags, RULE_LOCK_ORDER), 3, "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn flags_rcu_lock_order_violations() {
    let diags = run("bad_lock_order_rcu.rs");
    // maintenance under shard, maintenance under a live RCU guard, second
    // shard probe without maintenance, publish under the thread's own RCU
    // guard, raw .lock() bypass — the two `fine_` fns must stay silent
    assert_eq!(count(&diags, RULE_LOCK_ORDER), 5, "{diags:#?}");
    assert_eq!(diags.len(), 5, "{diags:#?}");
}

#[test]
fn flags_unsafe_violations() {
    let diags = run("bad_unsafe.rs");
    // missing #![forbid(unsafe_code)] + un-whitelisted unsafe block
    assert_eq!(count(&diags, RULE_UNSAFE), 2, "{diags:#?}");

    let diags = run("bad_unsafe_whitelisted.rs");
    // whitelisted file: only the SAFETY-less block fires
    assert_eq!(count(&diags, RULE_UNSAFE), 1, "{diags:#?}");
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn flags_no_alloc_violations() {
    let diags = run("bad_no_alloc.rs");
    // Vec::new, to_vec, format!
    assert_eq!(count(&diags, RULE_NO_ALLOC), 3, "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn flags_obs_registered_violations() {
    let diags = run("bad_obs_names.rs");
    // camelCase name, duplicate registration, non-literal name; the
    // twice-registered *labeled* family is legitimate and must not fire
    assert_eq!(count(&diags, RULE_OBS), 3, "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn obs_duplicates_across_files_are_cross_checked() {
    let one = "fn a(reg: &Registry) {\n    reg.register_counter(\"lll_shared_total\", \"x\");\n}\n";
    let two = "fn b(reg: &Registry) {\n    reg.register_counter(\"lll_shared_total\", \"y\");\n}\n";
    let mut sites = Vec::new();
    let mut diags = Vec::new();
    for (path, text) in [("one.rs", one), ("two.rs", two)] {
        let (d, s) = lll_check::check_file_with_sites(path, text);
        assert!(d.is_empty(), "each file is clean in isolation: {d:#?}");
        sites.extend(s);
    }
    lll_check::check_obs_unique(&sites, &mut diags);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RULE_OBS);
    assert!(diags[0].msg.contains("one.rs"), "{}", diags[0].msg);
}

#[test]
fn flags_grammar_violations() {
    let diags = run("bad_allow_missing_justification.rs");
    // naked allow + allow naming an unknown rule
    assert_eq!(count(&diags, RULE_GRAMMAR), 2, "{diags:#?}");
    // the mis-spelled allow suppresses nothing: the indexing still fires
    assert_eq!(count(&diags, RULE_PANIC_FREE), 1, "{diags:#?}");
}

#[test]
fn good_fixture_is_silent() {
    let diags = run("good_allow.rs");
    assert!(diags.is_empty(), "justified allows must suppress cleanly: {diags:#?}");
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    let bad = [
        "bad_panic_free.rs",
        "bad_wal_decode.rs",
        "bad_lock_order.rs",
        "bad_lock_order_rcu.rs",
        "bad_unsafe.rs",
        "bad_unsafe_whitelisted.rs",
        "bad_no_alloc.rs",
        "bad_obs_names.rs",
        "bad_allow_missing_justification.rs",
    ];
    for name in bad {
        let (path, _) = fixture(name);
        let out = Command::new(env!("CARGO_BIN_EXE_lll-check")).arg(&path).output().unwrap();
        assert!(!out.status.success(), "CLI must fail on {name}");
    }
    let (path, _) = fixture("good_allow.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_lll-check")).arg(&path).output().unwrap();
    assert!(out.status.success(), "CLI must pass on good_allow.rs");
}

#[test]
fn workspace_scans_clean() {
    let root = workspace_root();
    let report = lll_check::check_workspace(&root).unwrap();
    assert!(report.files > 20, "expected to scan the whole workspace, saw {}", report.files);
    assert!(
        report.diagnostics.is_empty(),
        "the live workspace must be lint-clean:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

fn workspace_root() -> PathBuf {
    // crates/check → two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

#[test]
fn lexer_ignores_strings_comments_and_lifetimes() {
    // Tokens inside strings, raw strings, and doc comments must not fire.
    let text = concat!(
        "// lll-check: enforce(panic-free-decode)\n",
        "pub fn f<'a>(s: &'a str) -> &'a str {\n",
        "    let _msg = \"call .unwrap() and panic! freely in here x[0]\";\n",
        "    let _raw = r#\"also here: buf[1].expect(\"no\")\"#;\n",
        "    let _ch = '[';\n",
        "    s\n",
        "}\n",
        "pub fn slices_and_patterns(buf: &mut [u8]) -> u8 {\n",
        "    let [first, rest @ ..] = buf else { return 0 };\n",
        "    let _ty: &[u8] = rest;\n",
        "    *first\n",
        "}\n",
    );
    let diags = check_file("lexer_probe.rs", text);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn doc_prose_cannot_activate_rules() {
    // A comment that merely *mentions* the grammar mid-sentence is inert;
    // only a comment that starts with the marker is a directive.
    let text = concat!(
        "//! Grammar note: write `lll-check: no-alloc` above a fn.\n",
        "pub fn allocs_fine() -> Vec<u8> {\n",
        "    Vec::new()\n",
        "}\n",
    );
    let diags = check_file("prose_probe.rs", text);
    assert!(diags.is_empty(), "{diags:#?}");
}
