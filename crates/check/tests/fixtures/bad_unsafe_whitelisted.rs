// Known-bad fixture: a *whitelisted* file still owes every unsafe block
// a SAFETY comment.
// lll-check: assume(unsafe-allowed)

pub fn undocumented(p: *const u32) -> u32 {
    // finding: whitelisted unsafe with no SAFETY comment
    unsafe { *p }
}

pub fn documented(slice: &[u32]) -> u32 {
    // SAFETY: the index is bounds-checked on the line above the read.
    if slice.is_empty() { 0 } else { unsafe { *slice.as_ptr() } }
}
