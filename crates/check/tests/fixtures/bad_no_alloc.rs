// Known-bad fixture: annotated hot-path functions that allocate.

// lll-check: no-alloc
pub fn hot_path(xs: &[u64]) -> Vec<u64> {
    // finding: allocating constructor
    let mut out = Vec::new();
    out.extend_from_slice(xs);
    // finding: `to_vec`
    let copy = xs.to_vec();
    out.extend(copy);
    out
}

// lll-check: no-alloc
#[inline]
pub fn hot_label(x: u64) -> String {
    // finding: `format!`
    format!("{x:016x}")
}

// lll-check: no-alloc
pub fn fine(xs: &[u64], dst: &mut Vec<u64>) -> u64 {
    // Reusing caller scratch is the sanctioned pattern.
    dst.clear();
    dst.extend_from_slice(xs);
    dst.iter().sum()
}

pub fn unannotated_may_alloc(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
