// Known-bad fixture: an allow with no justification is itself a finding
// (the suppression must say why), and an allow naming an unknown rule is
// a grammar finding.
// lll-check: enforce(panic-free-decode)

pub fn decode(buf: &[u8]) -> u8 {
    // finding: naked allow — no justification
    // lll-check: allow(panic-free-decode)
    let first = buf[0];
    // finding: unknown rule name in allow
    // lll-check: allow(panick-free-decode, typo in the rule name)
    let second = buf[1];
    first ^ second
}
