// Known-bad fixture: acquisition sites that violate the RCU'd protocol —
// the maintenance → shard order, the one-shard-per-point-op rule, and the
// publication preconditions. (Fixtures are lexed, never compiled: the
// wrapper fns and RcuCell here are the real crate's names, not imports.)

use std::sync::{Arc, Mutex, RwLock};

pub struct Directory {
    // lock-order: shard
    pub shards: Vec<RwLock<Vec<u64>>>,
}

pub struct Map {
    // lock-order: rcu
    pub dir: RcuCell<Directory>,
    // lock-order: maintenance
    pub maint: Mutex<()>,
}

impl Map {
    pub fn bad_maintenance_under_shard(&self, d: &Directory) {
        let s = rlock(&d.shards[0], Level::Shard);
        // finding: maintenance lock requested under a shard guard
        let m = mlock(&self.maint);
        drop((s, m));
    }

    pub fn bad_maintenance_under_rcu(&self) {
        let d = rcu_load(&self.dir);
        // finding: maintenance lock requested while an RCU guard pins the
        // directory — the publisher's grace wait would deadlock
        let m = mlock(&self.maint);
        drop((d, m));
    }

    pub fn bad_second_probe(&self, d: &Directory) {
        let a = try_rlock(&d.shards[0], Level::Shard);
        // finding: second shard acquisition without the maintenance lock
        let b = try_rlock(&d.shards[1], Level::Shard);
        drop((a, b));
    }

    pub fn bad_publish_under_own_guard(&self, next: Arc<Directory>) {
        let m = mlock(&self.maint);
        let d = rcu_load(&self.dir);
        // finding: publishing while this thread's own RCU guard is live
        rcu_publish(&self.dir, next);
        drop((m, d));
    }

    pub fn bad_raw_maintenance(&self) {
        // finding: raw .lock() on an annotated field bypasses the tracker
        let _g = self.maint.lock();
    }

    pub fn fine_maintenance_stacks_shards(&self, d: &Directory, next: Arc<Directory>) {
        let m = mlock(&self.maint);
        {
            let a = wlock(&d.shards[0], Level::Shard);
            let b = wlock(&d.shards[1], Level::Shard);
            drop((a, b));
        }
        rcu_publish(&self.dir, next);
        drop(m);
    }

    pub fn fine_read_path(&self, d: &Directory) -> bool {
        let dir = rcu_load(&self.dir);
        let probe = try_rlock(&d.shards[0], Level::Shard);
        drop(dir);
        probe.is_some()
    }
}
