// Known-bad fixture: a WAL frame decoder that reintroduces every panic
// class the real `lll-wal` record module (`crates/wal/src/record.rs`)
// must stay free of — hostile length fields, indexing into short
// buffers, unwraps on checksum math. Mirrors the enforced module's
// annotation so the linter treats it identically.
// lll-check: enforce(panic-free-decode)

pub struct Frame {
    pub lsn: u64,
    pub payload: Vec<u8>,
}

pub fn decode_frame(buf: &[u8]) -> Frame {
    // finding: indexing — a torn 7-byte tail panics right here
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    // finding: `.unwrap()` — TryInto fails on a short slice
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    // finding: truncating cast — a hostile 64-bit length silently wraps
    let body_len = (buf.len() as u64 - 8) as u32;
    if len != body_len {
        // finding: panic! — torn frames are data, not bugs
        panic!("frame length mismatch: {len} vs {body_len}");
    }
    // finding: `.expect()` — an empty body is a torn frame, not a bug
    let (lsn_bytes, payload) = buf[8..].split_first_chunk::<8>().expect("body too short");
    let lsn = u64::from_le_bytes(*lsn_bytes);
    if crc == 0 {
        // finding: unreachable! — a zero checksum is reachable from disk
        unreachable!("CRC cannot be zero");
    }
    Frame { lsn, payload: payload.to_vec() }
}

pub fn not_flagged(buf: &[u8]) -> u64 {
    // Bounds-checked access, widening casts, and defaulted parses are the
    // sanctioned shapes.
    let first = buf.first().copied().unwrap_or(0);
    u64::from(first) + buf.len() as u64
}

#[cfg(test)]
mod tests {
    // Test modules are exempt: unwrap freely.
    #[test]
    fn torn_tail() {
        let buf: Vec<u8> = Vec::new();
        assert!(buf.first().copied().unwrap_or(0xAB) == 0xAB);
    }
}
