// Known-bad fixture: every way a decode module can reintroduce a panic.
// lll-check: enforce(panic-free-decode)

pub fn decode(buf: &[u8]) -> u32 {
    // finding: direct indexing
    let first = buf[0];
    // finding: `.unwrap()`
    let parsed: u32 = std::str::from_utf8(buf).unwrap().parse().unwrap_or(0);
    // finding: `.expect()`
    let tail = buf.last().expect("empty buffer");
    // finding: truncating cast
    let short = parsed as u16;
    if first == 0 {
        // finding: panic!
        panic!("zero prefix");
    }
    if *tail == 0xFF {
        // finding: unreachable!
        unreachable!();
    }
    u32::from(short)
}

pub fn not_flagged(buf: &[u8]) -> u64 {
    // `unwrap_or` / `unwrap_or_else` / widening casts are fine.
    let v = buf.first().copied().unwrap_or(0);
    let w = std::str::from_utf8(buf).map(str::len).unwrap_or_else(|_| 0);
    v as u64 + w as u64
}

#[cfg(test)]
mod tests {
    // Test modules are exempt: unwrap freely.
    #[test]
    fn roundtrip() {
        let v: u32 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
