// Known-good fixture: the linter must stay silent here — justified
// allows, exempt test modules, widening casts, and a clean no-alloc fn.
// lll-check: enforce(panic-free-decode)

pub fn decode(buf: &[u8]) -> u64 {
    // lll-check: allow(panic-free-decode, index is guarded by the len check on the previous line)
    let first = if buf.len() >= 2 { buf[0] } else { 0 };
    let wide = first as u64;
    // lll-check: allow(panic-free-decode, cast is a checked narrowing — value is masked to 16 bits)
    let low = (wide & 0xFFFF) as u16;
    wide + u64::from(low)
}

// lll-check: no-alloc
pub fn sum_into(xs: &[u64], acc: &mut u64) {
    for x in xs {
        *acc = acc.wrapping_add(*x);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: u64 = "9".parse().unwrap();
        assert_eq!(v, 9);
    }
}
