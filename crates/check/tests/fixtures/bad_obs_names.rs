//! Known-bad fixture for the `obs-registered` rule: metric names must be
//! snake_case string literals, each registered at one call site (labeled
//! histogram families excepted).

fn register_all(reg: &Registry, dynamic_name: &str, help: &str) {
    reg.register_counter("llOpsTotal", "camelCase metric name");
    reg.register_counter("lll_dup_total", "first registration");
    reg.register_counter("lll_dup_total", "second registration");
    reg.register_gauge(
        dynamic_name,
        help,
    );
    reg.register_histogram_labeled(
        "lll_req_ns",
        ("verb", "get"),
        "labeled family",
        1,
        1 << 20,
    );
    reg.register_histogram_labeled(
        "lll_req_ns",
        ("verb", "put"),
        "a labeled family may register from several sites",
        1,
        1 << 20,
    );
}
