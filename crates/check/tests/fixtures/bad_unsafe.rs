// Known-bad fixture: a crate root with no forbid attribute and an
// un-whitelisted unsafe block.
// lll-check: assume(crate-root)

pub fn sneaky(p: *const u32) -> u32 {
    // finding: `unsafe` outside the whitelist (and the missing
    // `#![forbid(unsafe_code)]` at the root is a second finding)
    unsafe { *p }
}
