// Known-bad fixture: acquisition sites that invert the directory→shard
// lock order the annotated fields declare.

use std::sync::RwLock;

pub struct Directory {
    pub shard_bounds: Vec<u64>,
    // lock-order: shard
    pub shards: Vec<RwLock<Vec<u64>>>,
}

pub struct Map {
    // lock-order: directory
    pub dir: RwLock<Directory>,
}

fn rlock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Map {
    pub fn bad_nested_shards(&self) -> usize {
        let dir = rlock(&self.dir);
        let left = rlock(&dir.shards[0]);
        {
            // finding: second shard lock while `left` is live
            let right = rlock(&dir.shards[1]);
            left.len() + right.len()
        }
    }

    pub fn bad_dir_under_shard(&self, outer: &Directory) -> usize {
        let shard = rlock(&outer.shards[0]);
        // finding: directory lock under a shard lock
        let dir = rlock(&self.dir);
        shard.len() + dir.shard_bounds.len()
    }

    pub fn bad_raw_acquire(&self) -> usize {
        // finding: raw .read() on an annotated field bypasses the tracker
        self.dir.read().map(|d| d.shard_bounds.len()).unwrap_or(0)
    }

    pub fn fine_sequential(&self) -> usize {
        let n = {
            let dir = rlock(&self.dir);
            let left = rlock(&dir.shards[0]);
            left.len()
        };
        let m = {
            let dir = rlock(&self.dir);
            let right = rlock(&dir.shards[1]);
            right.len()
        };
        n + m
    }
}
