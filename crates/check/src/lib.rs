//! # lll-check — hand-rolled workspace invariant linter
//!
//! The workspace's load-bearing invariants — panic-free decoders, the
//! directory→shard lock order, the zero-alloc steady-state insert path,
//! and the no-`unsafe` baseline — exist as comments and reviewer
//! discipline. This crate turns them into a mechanical gate: a token-level
//! static-analysis pass (the offline workspace has no `syn`; the rules
//! below need no type information) run as `cargo run -p lll-check`
//! locally and in CI, exiting non-zero on any finding.
//!
//! ## Rules
//!
//! * **panic-free-decode** — in decode modules opted in with an
//!   `enforce(...)` directive, forbid `.unwrap()` / `.expect()`,
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!`, direct
//!   indexing (`x[i]`, `x[a..b]`), and possibly-truncating `as` casts.
//!   `#[cfg(test)]` modules are exempt; individual lines escape with a
//!   justified `allow(...)` directive.
//! * **lock-order** — fields annotated with a `lock-order:` comment
//!   (levels `maintenance`, `directory` (legacy), `shard`, and `rcu`)
//!   declare the locking protocol; acquisition sites — `rlock(..)` /
//!   `try_rlock(..)` / `wlock(..)` calls carrying a `Level::` argument,
//!   `mlock(..)` (always maintenance), and `rcu_load(..)` (an RCU borrow)
//!   — are scanned lexically with guard lifetimes simulated by brace
//!   depth. Findings: a second shard lock without the maintenance lock
//!   held, the maintenance lock under a shard guard or a live RCU borrow,
//!   `rcu_publish(..)` while this thread still holds a shard guard or RCU
//!   borrow (the grace wait would deadlock), the legacy directory-level
//!   inversions, and any raw `.read()` / `.write()` / `.lock()` on an
//!   annotated field (it would bypass the runtime tracker).
//! * **unsafe-discipline** — every crate root must carry
//!   `#![forbid(unsafe_code)]`; `unsafe` may appear only in the
//!   [`UNSAFE_ALLOWED`] whitelist (the counting-allocator harness, the
//!   RCU cell, and the future SIMD module), and every whitelisted site
//!   needs a `// SAFETY:` comment on or just above the line. Crate roots
//!   in [`UNSAFE_DENY_ROOTS`] host a whitelisted module and so carry
//!   `#![deny(unsafe_code)]` instead — `forbid` cannot be re-allowed from
//!   an inner module, `deny` can.
//! * **no-alloc** — functions annotated with a `no-alloc` directive may
//!   not call allocating constructors (`Vec::new`, `with_capacity`,
//!   `collect`, `to_vec`, `format!`, `Box::new`, …).
//! * **obs-registered** — `lll-obs` registry call sites
//!   (`.register_counter(..)` and friends) must pass a snake_case string
//!   literal as the metric name, and a name may be registered at only one
//!   call site (labeled histogram families excepted) — in one file and
//!   across the workspace. Metric names are operational interface;
//!   `Registry` also panics on collisions at runtime, but the lint
//!   catches them before anything runs.
//!
//! The full annotation grammar and the rationale for each rule live in
//! `docs/static-analysis.md`. The linter is itself pinned by committed
//! known-bad fixtures under `tests/fixtures/` that it must flag.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Rule name: panic-free decode modules.
pub const RULE_PANIC_FREE: &str = "panic-free-decode";
/// Rule name: directory→shard lock order.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule name: `#![forbid(unsafe_code)]` + `// SAFETY:` discipline.
pub const RULE_UNSAFE: &str = "unsafe-discipline";
/// Rule name: allocation-free hot paths.
pub const RULE_NO_ALLOC: &str = "no-alloc";
/// Rule name: metric-registration hygiene (snake_case literal names,
/// no duplicate registrations).
pub const RULE_OBS: &str = "obs-registered";
/// Rule name: the linter's own annotation grammar (unknown directives,
/// unjustified allows).
pub const RULE_GRAMMAR: &str = "annotation-grammar";

/// Files allowed to contain `unsafe` (every site still needs a
/// `// SAFETY:` comment). Entries ending in `/` whitelist a directory.
pub const UNSAFE_ALLOWED: &[&str] = &[
    // The counting #[global_allocator] harness: GlobalAlloc is an unsafe
    // trait by definition; the impl forwards verbatim to System.
    "tests/zero_alloc.rs",
    // The RCU cell publishing the shard directory: Arc::into_raw/from_raw
    // behind striped borrow counters. The crate's only unsafe module.
    "crates/sharded/src/rcu.rs",
    // Reserved for the planned core::arch popcount/SIMD sweeps (see
    // ROADMAP "Subsume the Fenwick"): that crate opts out of the forbid
    // but buys in to per-site SAFETY comments.
    "crates/simd/",
];

/// Crate roots that host a whitelisted `unsafe` module. `forbid` is a
/// one-way door — an inner `#![allow(unsafe_code)]` cannot reopen it — so
/// these roots carry `#![deny(unsafe_code)]` instead: every *other* module
/// stays unsafe-free at compile time, and only the whitelisted module opts
/// back in (where this lint still demands per-site `// SAFETY:` comments).
pub const UNSAFE_DENY_ROOTS: &[&str] = &["crates/sharded/src/lib.rs"];

/// One finding: file, 1-based line, rule, and what was seen.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// A source file split into per-line *code* and *comment* views: string
/// and char literal contents are blanked out of the code view (their
/// delimiters remain), comments are removed from the code view and
/// collected — trimmed of their `//`-style markers — in the comment view.
/// All rules read these views, so tokens inside strings or doc examples
/// can never fire and annotations can never hide in code.
pub struct SourceFile {
    /// Workspace-relative path (diagnostics use it verbatim).
    pub path: String,
    /// Per-line code with comments/literal-contents blanked.
    pub code: Vec<String>,
    /// Per-line comment text ("" where the line has none).
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

impl SourceFile {
    /// Lex `text` into the code/comment views.
    pub fn parse(path: &str, text: &str) -> Self {
        let chars: Vec<char> = text.chars().collect();
        let mut code = vec![String::new()];
        let mut comments = vec![String::new()];
        let mut st = LexState::Code;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                if st == LexState::LineComment {
                    st = LexState::Code;
                }
                code.push(String::new());
                comments.push(String::new());
                i += 1;
                continue;
            }
            let line_code = code.last_mut().expect("line buffer");
            let line_com = comments.last_mut().expect("line buffer");
            match st {
                LexState::Code => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        st = LexState::LineComment;
                        i += 2;
                        // Skip doc-comment markers so `/// SAFETY:` and
                        // `//! ...` surface their text directly.
                        if matches!(chars.get(i), Some('/' | '!')) {
                            i += 1;
                        }
                    } else if c == '/' && next == Some('*') {
                        st = LexState::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        line_code.push('"');
                        st = LexState::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_is_ident_char(&chars, i) {
                        if let Some(skip) = raw_string_prefix(&chars, i) {
                            line_code.push('"');
                            st = LexState::RawStr(skip.1);
                            i += skip.0;
                        } else {
                            line_code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Lifetime (`'a`) vs char literal (`'a'`).
                        let is_lifetime = matches!(next, Some(n) if n == '_' || n.is_alphabetic())
                            && chars.get(i + 2).copied() != Some('\'');
                        line_code.push('\'');
                        if !is_lifetime {
                            st = LexState::CharLit;
                        }
                        i += 1;
                    } else {
                        line_code.push(c);
                        i += 1;
                    }
                }
                LexState::LineComment => {
                    line_com.push(c);
                    i += 1;
                }
                LexState::BlockComment(depth) => {
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        st = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        st = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line_com.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        line_code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        line_code.push('"');
                        st = LexState::Code;
                        i += 1;
                    } else {
                        line_code.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                    {
                        line_code.push('"');
                        st = LexState::Code;
                        i += 1 + hashes as usize;
                    } else {
                        line_code.push(' ');
                        i += 1;
                    }
                }
                LexState::CharLit => {
                    if c == '\\' {
                        line_code.push(' ');
                        i += 2;
                    } else if c == '\'' {
                        line_code.push('\'');
                        st = LexState::Code;
                        i += 1;
                    } else {
                        line_code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        Self { path: path.to_string(), code, comments }
    }

    fn has_directive(&self, directive: &str) -> bool {
        self.comments.iter().any(|c| check_directive(c) == Some(directive))
    }
}

fn prev_is_ident_char(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1] == '_' || chars[i - 1].is_alphanumeric())
}

/// If `chars[i..]` starts a raw (or raw-byte) string literal, the prefix
/// length to skip (through the opening `"`) and the `#` count.
fn raw_string_prefix(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((j + 1 - i, hashes))
}

/// The payload of a `lll-check:` comment, if this comment is one. Only
/// comments that *start* with the marker count, so prose that merely
/// mentions the grammar cannot activate a rule.
fn check_directive(comment: &str) -> Option<&str> {
    comment.trim().strip_prefix("lll-check:").map(str::trim)
}

/// Parse `allow(<rule>, <justification>)` → `(rule, justification)`.
fn parse_allow(directive: &str) -> Option<(&str, &str)> {
    let inner = directive.strip_prefix("allow(")?.strip_suffix(')')?;
    Some(match inner.split_once(',') {
        Some((rule, just)) => (rule.trim(), just.trim()),
        None => (inner.trim(), ""),
    })
}

/// Is line `i` covered by an `allow(rule, ..)` — trailing on the same
/// line, or on a standalone comment line directly above? Returns whether
/// the allow carries a justification.
fn allow_for(sf: &SourceFile, line: usize, rule: &str) -> Option<bool> {
    let allow_on = |i: usize| -> Option<bool> {
        let (r, just) = parse_allow(check_directive(&sf.comments[i])?)?;
        (r == rule).then_some(!just.is_empty())
    };
    if let Some(v) = allow_on(line) {
        return Some(v);
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        if !sf.code[i].trim().is_empty() {
            break; // a code line above ends the comment run
        }
        if let Some(v) = allow_on(i) {
            return Some(v);
        }
        if sf.comments[i].trim().is_empty() {
            break; // a fully blank line ends the comment run
        }
    }
    None
}

/// Push a finding unless a justified allow covers the line; an
/// *unjustified* allow is itself a finding.
fn emit(
    sf: &SourceFile,
    line: usize,
    rule: &'static str,
    msg: String,
    diags: &mut Vec<Diagnostic>,
) {
    match allow_for(sf, line, rule) {
        Some(true) => {}
        Some(false) => diags.push(Diagnostic {
            file: sf.path.clone(),
            line: line + 1,
            rule: RULE_GRAMMAR,
            msg: format!("allow({rule}) needs a justification: allow(<rule>, <why>)"),
        }),
        None => diags.push(Diagnostic { file: sf.path.clone(), line: line + 1, rule, msg }),
    }
}

/// Identifier token spans of one code line.
fn idents(line: &str) -> Vec<(usize, usize)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'_' || b[i].is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push((start, i));
        } else if b[i].is_ascii_digit() {
            // Consume numeric literals whole so `0u8` never yields `u8`.
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn prev_nonspace(line: &str, idx: usize) -> Option<char> {
    line[..idx].chars().rev().find(|c| !c.is_whitespace())
}

fn next_nonspace(line: &str, idx: usize) -> Option<char> {
    line[idx..].chars().find(|c| !c.is_whitespace())
}

/// Does `line` contain `tok` as a whole identifier?
fn has_ident(line: &str, tok: &str) -> bool {
    idents(line).iter().any(|&(s, e)| &line[s..e] == tok)
}

/// Mark every line inside a `#[cfg(test)]`-attributed block (module or
/// function) — those are exempt from panic-free-decode.
fn test_mod_lines(sf: &SourceFile) -> Vec<bool> {
    let mut out = vec![false; sf.code.len()];
    let mut i = 0;
    while i < sf.code.len() {
        if sf.code[i].replace(' ', "").contains("#[cfg(test)]") {
            if let Some((_, end)) = brace_span(sf, i) {
                out[i..=end].iter_mut().for_each(|b| *b = true);
                i = end;
            }
        }
        i += 1;
    }
    out
}

/// From `from` (inclusive), find the first `{` and the line of its
/// matching `}`. Gives up if no `{` opens within 8 lines.
fn brace_span(sf: &SourceFile, from: usize) -> Option<(usize, usize)> {
    let mut depth = 0u32;
    let mut opened = false;
    for j in from..sf.code.len() {
        for ch in sf.code[j].chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' if depth > 0 => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((from, j));
                    }
                }
                _ => {}
            }
        }
        if !opened && j >= from + 8 {
            return None;
        }
    }
    None
}

const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rule 1: panic-free decode modules. Active only in files carrying the
/// enforce directive for this rule.
pub fn check_panic_free(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !sf.has_directive("enforce(panic-free-decode)") {
        return;
    }
    let in_tests = test_mod_lines(sf);
    for (i, line) in sf.code.iter().enumerate() {
        if in_tests[i] {
            continue;
        }
        let toks = idents(line);
        for (t, &(s, e)) in toks.iter().enumerate() {
            let tok = &line[s..e];
            if (tok == "unwrap" || tok == "expect")
                && prev_nonspace(line, s) == Some('.')
                && next_nonspace(line, e) == Some('(')
            {
                emit(sf, i, RULE_PANIC_FREE, format!("`.{tok}()` in a decode module"), diags);
            } else if PANIC_MACROS.contains(&tok) && next_nonspace(line, e) == Some('!') {
                emit(sf, i, RULE_PANIC_FREE, format!("`{tok}!` in a decode module"), diags);
            } else if tok == "as" {
                if let Some(&(s2, e2)) = toks.get(t + 1) {
                    let target = &line[s2..e2];
                    if NARROW_CASTS.contains(&target) {
                        emit(
                            sf,
                            i,
                            RULE_PANIC_FREE,
                            format!(
                                "possibly truncating `as {target}` cast (use `try_from` or \
                                 allow with a width argument)"
                            ),
                            diags,
                        );
                    }
                }
            }
        }
        for (j, ch) in line.char_indices() {
            if ch == '[' && is_index_bracket(line, j) {
                emit(
                    sf,
                    i,
                    RULE_PANIC_FREE,
                    "direct indexing can panic; decode paths must use checked access".to_string(),
                    diags,
                );
            }
        }
    }
}

/// Is the `[` at byte `j` an indexing/slicing bracket? It is when it
/// follows a value expression — an identifier, `)`, or `]` — but not when
/// the identifier is a keyword: `&mut [u8]` is a slice type and
/// `let [a, b] = ..` is a pattern, not indexing.
fn is_index_bracket(line: &str, j: usize) -> bool {
    let before = line[..j].trim_end();
    let Some(last) = before.chars().next_back() else { return false };
    if last == ')' || last == ']' {
        return true;
    }
    if !(last.is_alphanumeric() || last == '_') {
        return false;
    }
    let tail: Vec<char> =
        before.chars().rev().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    let word: String = tail.into_iter().rev().collect();
    !matches!(
        word.as_str(),
        "mut"
            | "let"
            | "dyn"
            | "ref"
            | "in"
            | "as"
            | "move"
            | "return"
            | "match"
            | "else"
            | "box"
            | "static"
            | "const"
            | "impl"
            | "where"
    )
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LockLevel {
    Maintenance,
    Directory,
    Shard,
    Rcu,
}

/// Rule 2: the locking protocol around the sharded map. Active only in
/// files that annotate at least one lock field with a `lock-order:`
/// comment. Levels: `maintenance` (outermost mutex), `shard` (one
/// rebalance domain's `RwLock`), `rcu` (the published directory — borrows
/// via `rcu_load` nest freely but pin the grace period), and the legacy
/// `directory` level kept for pre-RCU layouts.
pub fn check_lock_order(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    // Collect annotated field names: the annotation line's own code if it
    // has any, else the next non-blank code line, holds the field.
    let mut fields: Vec<(String, LockLevel)> = Vec::new();
    for i in 0..sf.comments.len() {
        let Some(level) = sf.comments[i].trim().strip_prefix("lock-order:").map(str::trim) else {
            continue;
        };
        let field_line = if sf.code[i].trim().is_empty() {
            (i + 1..sf.code.len()).find(|&j| !sf.code[j].trim().is_empty())
        } else {
            Some(i)
        };
        let name = field_line.and_then(|j| field_name(&sf.code[j]));
        match (level, name) {
            (_, None) => diags.push(Diagnostic {
                file: sf.path.clone(),
                line: i + 1,
                rule: RULE_GRAMMAR,
                msg: "lock-order annotation is not attached to a field".to_string(),
            }),
            ("maintenance", Some(n)) => fields.push((n, LockLevel::Maintenance)),
            ("directory", Some(n)) => fields.push((n, LockLevel::Directory)),
            ("shard", Some(n)) => fields.push((n, LockLevel::Shard)),
            ("rcu", Some(n)) => fields.push((n, LockLevel::Rcu)),
            (other, Some(_)) => diags.push(Diagnostic {
                file: sf.path.clone(),
                line: i + 1,
                rule: RULE_GRAMMAR,
                msg: format!(
                    "unknown lock-order level `{other}` (expected \
                     maintenance|directory|shard|rcu)"
                ),
            }),
        }
    }
    if fields.is_empty() {
        return;
    }

    let classify = |text: &str| -> Option<LockLevel> {
        for (token, level) in [
            ("Level::Shard", LockLevel::Shard),
            ("Level::Directory", LockLevel::Directory),
            ("Level::Maintenance", LockLevel::Maintenance),
        ] {
            if text.contains(token) {
                return Some(level);
            }
        }
        // Field-name fallback, most-nested level first, so a call naming
        // both a shard field and its container (`dir.shards[0]`) reads as
        // the shard acquisition it is.
        [LockLevel::Shard, LockLevel::Rcu, LockLevel::Directory, LockLevel::Maintenance]
            .into_iter()
            .find(|&want| fields.iter().any(|(f, l)| *l == want && has_ident(text, f)))
    };

    let mut depth: i64 = 0;
    let mut guards: Vec<(LockLevel, i64)> = Vec::new();
    for i in 0..sf.code.len() {
        let line = &sf.code[i];

        // Raw acquisitions bypass the runtime tracker entirely. Only an
        // annotated field as the *receiver* counts (`self.maint.lock()`,
        // `dir.read()`) — a call further down a chain rooted at an
        // annotated field (`dir.shards[i].write()`, where `write` is a
        // tracked helper on the element) is a different receiver.
        if ["read", "write", "lock"].iter().any(|m| {
            line.match_indices(&format!(".{m}()")).any(|(at, _)| {
                let recv = line[..at].trim_end();
                fields.iter().any(|(f, _)| {
                    recv.ends_with(f.as_str())
                        && !recv[..recv.len() - f.len()]
                            .ends_with(|c: char| c.is_alphanumeric() || c == '_')
                })
            })
        }) {
            emit(
                sf,
                i,
                RULE_LOCK_ORDER,
                "raw .read()/.write()/.lock() on an annotated lock field bypasses the order \
                 tracker; acquire through the rlock()/wlock()/mlock() wrappers"
                    .to_string(),
                diags,
            );
        }

        let live =
            |guards: &[(LockLevel, i64)], lvl: LockLevel| guards.iter().any(|&(l, _)| l == lvl);
        let toks = idents(line);
        let has_let = toks.iter().any(|&(s, e)| &line[s..e] == "let");
        for &(s, e) in &toks {
            let tok = &line[s..e];
            if next_nonspace(line, e) != Some('(') {
                continue;
            }
            if tok == "rcu_publish" {
                // Publication preconditions the runtime tracker enforces
                // (maintenance-held is cross-function, so only the two
                // same-scope deadlocks are checked lexically).
                if live(&guards, LockLevel::Rcu) {
                    emit(
                        sf,
                        i,
                        RULE_LOCK_ORDER,
                        "publishes a new directory while an RCU guard is live on this thread \
                         (the grace wait would deadlock against its own borrow)"
                            .to_string(),
                        diags,
                    );
                }
                if live(&guards, LockLevel::Shard) {
                    emit(
                        sf,
                        i,
                        RULE_LOCK_ORDER,
                        "publishes a new directory while a shard guard is live (a fallback \
                         reader pinning the old directory could deadlock the grace wait)"
                            .to_string(),
                        diags,
                    );
                }
                continue;
            }
            let level = match tok {
                "mlock" => Some(LockLevel::Maintenance),
                "rcu_load" => Some(LockLevel::Rcu),
                // The level argument may have been wrapped to the next
                // line — but only consult the next line when this one
                // can't classify, so a *different* acquisition below
                // never bleeds in.
                "rlock" | "wlock" | "try_rlock" => {
                    let level = classify(&line[s..])
                        .or_else(|| sf.code.get(i + 1).and_then(|nxt| classify(nxt)));
                    let Some(level) = level else {
                        emit(
                            sf,
                            i,
                            RULE_LOCK_ORDER,
                            format!(
                                "cannot classify `{tok}(..)` acquisition: pass an explicit \
                                 Level::"
                            ),
                            diags,
                        );
                        continue;
                    };
                    Some(level)
                }
                _ => None,
            };
            let Some(level) = level else { continue };
            let maint_live = live(&guards, LockLevel::Maintenance);
            let shard_live = live(&guards, LockLevel::Shard);
            let dir_live = live(&guards, LockLevel::Directory);
            let rcu_live = live(&guards, LockLevel::Rcu);
            match level {
                LockLevel::Shard if shard_live && !maint_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "takes a second shard lock without the maintenance lock (point ops hold \
                     at most one shard; only maintenance stacks them)"
                        .to_string(),
                    diags,
                ),
                LockLevel::Directory if shard_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "takes the directory lock under a shard lock (order is directory → shard)"
                        .to_string(),
                    diags,
                ),
                LockLevel::Directory if dir_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "re-enters the directory lock (RwLock is not re-entrant)".to_string(),
                    diags,
                ),
                LockLevel::Maintenance if shard_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "takes the maintenance lock under a shard guard (order is maintenance → \
                     shard)"
                        .to_string(),
                    diags,
                ),
                LockLevel::Maintenance if rcu_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "takes the maintenance lock while an RCU guard pins the directory (a \
                     publisher's grace wait would deadlock)"
                        .to_string(),
                    diags,
                ),
                LockLevel::Maintenance if maint_live => emit(
                    sf,
                    i,
                    RULE_LOCK_ORDER,
                    "re-enters the maintenance lock (Mutex is not re-entrant)".to_string(),
                    diags,
                ),
                _ => {}
            }
            if has_let {
                guards.push((level, depth));
            }
        }

        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|&(_, d)| d <= depth);
                }
                _ => {}
            }
        }
    }
}

/// `   pub dir: RwLock<..>` → `dir` (the last identifier before the
/// field's `:`, skipping visibility).
fn field_name(code_line: &str) -> Option<String> {
    let prefix = code_line.split(':').next()?;
    let toks = idents(prefix);
    let &(s, e) = toks.last()?;
    let name = &prefix[s..e];
    (name != "pub").then(|| name.to_string())
}

/// Per-file configuration the unsafe rule needs (derived from the path by
/// [`config_for`]; fixtures override via `assume(..)` directives).
pub struct FileConfig {
    /// Is this a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
    /// that must carry `#![forbid(unsafe_code)]`?
    pub crate_root: bool,
    /// May this file contain `unsafe` at all (see [`UNSAFE_ALLOWED`])?
    pub unsafe_allowed: bool,
    /// Is this root allowed to use `#![deny(unsafe_code)]` instead of
    /// `forbid` because the crate hosts a whitelisted `unsafe` module
    /// (see [`UNSAFE_DENY_ROOTS`])?
    pub deny_root: bool,
}

/// Rule 3: unsafe discipline — forbid at every crate root (deny at the
/// [`UNSAFE_DENY_ROOTS`]), whitelist + `// SAFETY:` comments elsewhere.
pub fn check_unsafe(sf: &SourceFile, cfg: &FileConfig, diags: &mut Vec<Diagnostic>) {
    if cfg.crate_root && !cfg.unsafe_allowed {
        let has = |attr: &str| sf.code.iter().any(|l| l.replace(' ', "").contains(attr));
        let ok = if cfg.deny_root {
            has("#![deny(unsafe_code)]") || has("#![forbid(unsafe_code)]")
        } else {
            has("#![forbid(unsafe_code)]")
        };
        if !ok {
            let want =
                if cfg.deny_root { "#![deny(unsafe_code)]" } else { "#![forbid(unsafe_code)]" };
            diags.push(Diagnostic {
                file: sf.path.clone(),
                line: 1,
                rule: RULE_UNSAFE,
                msg: format!("crate root is missing {want}"),
            });
        }
    }
    for (i, line) in sf.code.iter().enumerate() {
        if !has_ident(line, "unsafe") {
            continue;
        }
        if !cfg.unsafe_allowed {
            emit(
                sf,
                i,
                RULE_UNSAFE,
                "`unsafe` outside the whitelist (UNSAFE_ALLOWED in lll-check)".to_string(),
                diags,
            );
        } else if !safety_comment_near(sf, i) {
            emit(
                sf,
                i,
                RULE_UNSAFE,
                "whitelisted `unsafe` without a `// SAFETY:` comment on or above the line"
                    .to_string(),
                diags,
            );
        }
    }
}

/// Does a `SAFETY:` comment cover `line` — trailing on the line itself, or
/// anywhere in the contiguous comment run directly above it? (Multi-line
/// safety arguments put the marker on their first line.)
fn safety_comment_near(sf: &SourceFile, line: usize) -> bool {
    if sf.comments[line].trim().starts_with("SAFETY:") {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        if !sf.code[i].trim().is_empty() {
            return false; // a code line ends the comment run
        }
        let c = sf.comments[i].trim();
        if c.is_empty() {
            return false; // a fully blank line ends the comment run
        }
        if c.starts_with("SAFETY:") {
            return true;
        }
    }
    false
}

const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "with_capacity"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::from",
    "Box::new",
    "String::new",
    "String::from",
    "HashMap::new",
    "BTreeMap::new",
    "VecDeque::new",
];

/// Rule 4: allocation-free functions. Active on every function annotated
/// with a `no-alloc` directive.
pub fn check_no_alloc(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for i in 0..sf.comments.len() {
        if check_directive(&sf.comments[i]) != Some("no-alloc") {
            continue;
        }
        // The annotated fn may sit under attributes/visibility lines.
        let fn_line = (i..sf.code.len().min(i + 7)).find(|&j| has_ident(&sf.code[j], "fn"));
        let Some(j) = fn_line else {
            diags.push(Diagnostic {
                file: sf.path.clone(),
                line: i + 1,
                rule: RULE_GRAMMAR,
                msg: "no-alloc annotation is not followed by a fn".to_string(),
            });
            continue;
        };
        let Some((_, end)) = brace_span(sf, j) else {
            continue;
        };
        for k in j..=end {
            let line = &sf.code[k];
            for &(s, e) in &idents(line) {
                let tok = &line[s..e];
                if ALLOC_METHODS.contains(&tok) && next_nonspace(line, e) == Some('(') {
                    emit(
                        sf,
                        k,
                        RULE_NO_ALLOC,
                        format!("allocating call `{tok}` in a no-alloc function"),
                        diags,
                    );
                } else if ALLOC_MACROS.contains(&tok) && next_nonspace(line, e) == Some('!') {
                    emit(
                        sf,
                        k,
                        RULE_NO_ALLOC,
                        format!("allocating macro `{tok}!` in a no-alloc function"),
                        diags,
                    );
                }
            }
            for path in ALLOC_PATHS {
                if let Some(pos) = line.find(path) {
                    let before_ok = pos == 0 || {
                        let c = line[..pos].chars().next_back().unwrap_or(' ');
                        !(c == '_' || c.is_alphanumeric() || c == ':')
                    };
                    if before_ok {
                        emit(
                            sf,
                            k,
                            RULE_NO_ALLOC,
                            format!("allocating constructor `{path}` in a no-alloc function"),
                            diags,
                        );
                    }
                }
            }
        }
    }
}

/// Methods whose first string-literal argument is a metric name.
const OBS_REGISTER_METHODS: &[&str] = &[
    "register_counter",
    "register_counter_shared",
    "register_gauge",
    "register_histogram",
    "register_histogram_shared",
    "register_histogram_labeled",
];

/// One metric-registration call site, for the cross-file uniqueness pass.
#[derive(Clone, Debug)]
pub struct ObsSite {
    /// Workspace-relative path of the registering file.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// The registered metric name.
    pub name: String,
    /// True for `register_histogram_labeled` — one *family* name may be
    /// registered from several labeled call sites.
    pub labeled: bool,
}

/// The metric-name grammar `lll_obs::Registry` enforces at runtime:
/// `[a-z][a-z0-9_]*`.
fn obs_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// The first `"..."` literal on `raw` at or after byte `from` (no escape
/// handling — metric names never need it).
fn first_literal(raw: &str, from: usize) -> Option<String> {
    let open = from + raw.get(from..)?.find('"')?;
    let rest = &raw[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Rule 5: metric-registration hygiene. Call sites of the registry's
/// `register_*` methods must name their metric with a snake_case
/// string literal, and no name may be registered twice in one file
/// (labeled families excepted). Needs the raw line text because the
/// lexer blanks string-literal contents out of the code view. Returns
/// the call sites for [`check_workspace`]'s cross-file uniqueness pass.
pub fn check_obs_registered(
    sf: &SourceFile,
    raw: &[&str],
    diags: &mut Vec<Diagnostic>,
) -> Vec<ObsSite> {
    let in_tests = test_mod_lines(sf);
    let mut sites: Vec<ObsSite> = Vec::new();
    for (i, line) in sf.code.iter().enumerate() {
        if in_tests[i] {
            continue;
        }
        for &(s, e) in &idents(line) {
            let tok = &line[s..e];
            if !OBS_REGISTER_METHODS.contains(&tok) {
                continue;
            }
            // Call sites only: method syntax. Definitions (`fn register_*`)
            // and prose never carry a leading dot.
            if prev_nonspace(line, s) != Some('.') || next_nonspace(line, e) != Some('(') {
                continue;
            }
            // The name is the first string literal at the call — on the
            // call line, or (call wrapped by rustfmt) on the next line.
            let name = raw
                .get(i)
                .and_then(|r| first_literal(r, r.find(tok).unwrap_or(0)))
                .or_else(|| raw.get(i + 1).and_then(|r| first_literal(r, 0)));
            let Some(name) = name else {
                emit(
                    sf,
                    i,
                    RULE_OBS,
                    format!("`{tok}` call without a string-literal metric name"),
                    diags,
                );
                continue;
            };
            if !obs_snake_case(&name) {
                emit(
                    sf,
                    i,
                    RULE_OBS,
                    format!("metric name {name:?} is not snake_case ([a-z][a-z0-9_]*)"),
                    diags,
                );
            }
            let labeled = tok == "register_histogram_labeled";
            if let Some(prev) = sites.iter().find(|p| p.name == name && !(p.labeled && labeled)) {
                emit(
                    sf,
                    i,
                    RULE_OBS,
                    format!(
                        "metric name {name:?} already registered at line {} (names are \
                         operational interface; Registry panics on collision)",
                        prev.line
                    ),
                    diags,
                );
            }
            sites.push(ObsSite { file: sf.path.clone(), line: i + 1, name, labeled });
        }
    }
    sites
}

/// Cross-file half of the obs-registered rule: the same metric name
/// registered from two files is a finding (labeled families excepted) —
/// two registries could merge into one exposition endpoint.
pub fn check_obs_unique(sites: &[ObsSite], diags: &mut Vec<Diagnostic>) {
    for (i, site) in sites.iter().enumerate() {
        if let Some(prev) = sites[..i]
            .iter()
            .find(|p| p.name == site.name && p.file != site.file && !(p.labeled && site.labeled))
        {
            diags.push(Diagnostic {
                file: site.file.clone(),
                line: site.line,
                rule: RULE_OBS,
                msg: format!(
                    "metric name {:?} already registered in {} (line {})",
                    site.name, prev.file, prev.line
                ),
            });
        }
    }
}

/// Validate the annotation grammar itself: unknown directives and allows
/// naming unknown rules are findings, so a typo cannot silently disable a
/// gate.
pub fn check_grammar(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const RULES: &[&str] =
        &[RULE_PANIC_FREE, RULE_LOCK_ORDER, RULE_UNSAFE, RULE_NO_ALLOC, RULE_OBS];
    for (i, comment) in sf.comments.iter().enumerate() {
        let Some(d) = check_directive(comment) else { continue };
        if let Some((rule, _)) = parse_allow(d) {
            if !RULES.contains(&rule) {
                diags.push(Diagnostic {
                    file: sf.path.clone(),
                    line: i + 1,
                    rule: RULE_GRAMMAR,
                    msg: format!("allow names unknown rule `{rule}`"),
                });
            }
            continue;
        }
        let known = d == "enforce(panic-free-decode)"
            || d == "no-alloc"
            || d == "assume(crate-root)"
            || d == "assume(unsafe-allowed)";
        if !known {
            diags.push(Diagnostic {
                file: sf.path.clone(),
                line: i + 1,
                rule: RULE_GRAMMAR,
                msg: format!("unknown lll-check directive `{d}`"),
            });
        }
    }
}

/// Derive a file's config from its workspace-relative path plus any
/// `assume(..)` directives (the fixture escape hatch).
pub fn config_for(rel: &str, sf: &SourceFile) -> FileConfig {
    let unsafe_allowed = UNSAFE_ALLOWED.iter().any(|p| rel == *p || rel.starts_with(p))
        || sf.has_directive("assume(unsafe-allowed)");
    let crate_root = rel == "src/lib.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel.contains("/src/bin/")
        || sf.has_directive("assume(crate-root)");
    let deny_root = UNSAFE_DENY_ROOTS.contains(&rel);
    FileConfig { crate_root, unsafe_allowed, deny_root }
}

/// Run every rule over one file's text.
pub fn check_file(rel: &str, text: &str) -> Vec<Diagnostic> {
    check_file_with_sites(rel, text).0
}

/// [`check_file`] plus the metric-registration sites it saw, so
/// [`check_workspace`] can run the cross-file uniqueness pass without
/// re-parsing every file.
pub fn check_file_with_sites(rel: &str, text: &str) -> (Vec<Diagnostic>, Vec<ObsSite>) {
    let sf = SourceFile::parse(rel, text);
    let cfg = config_for(rel, &sf);
    let raw: Vec<&str> = text.lines().collect();
    let mut diags = Vec::new();
    check_grammar(&sf, &mut diags);
    check_panic_free(&sf, &mut diags);
    check_lock_order(&sf, &mut diags);
    check_unsafe(&sf, &cfg, &mut diags);
    check_no_alloc(&sf, &mut diags);
    let sites = check_obs_registered(&sf, &raw, &mut diags);
    (diags, sites)
}

/// A whole-workspace run: how many files were scanned and every finding.
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Every finding, in path order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Scan every `.rs` file under `root` (skipping `target/`, `.git/`, and
/// fixture directories) and run all rules.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    let mut sites = Vec::new();
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        let (diags, file_sites) = check_file_with_sites(rel, &text);
        diagnostics.extend(diags);
        sites.extend(file_sites);
    }
    check_obs_unique(&sites, &mut diagnostics);
    Ok(Report { files: files.len(), diagnostics })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds the committed known-bad inputs the
            // self-tests feed back through the linter — deliberately dirty.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
