//! CLI for the workspace invariant linter.
//!
//! * `cargo run -p lll-check` — scan the whole workspace (found by walking
//!   up from the current directory to the `[workspace]` manifest); exit 0
//!   iff no rule fires.
//! * `cargo run -p lll-check -- <file>...` — scan specific files (used by
//!   the fixture self-tests); paths are taken verbatim as the
//!   workspace-relative names rules key their path-based config on.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && fs::read_to_string(&manifest).ok()?.contains("[workspace]") {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scanned, diags) = if args.is_empty() {
        let Some(root) = find_workspace_root() else {
            eprintln!("lll-check: cannot locate a [workspace] Cargo.toml above the current dir");
            return ExitCode::FAILURE;
        };
        match lll_check::check_workspace(&root) {
            Ok(report) => (report.files, report.diagnostics),
            Err(e) => {
                eprintln!("lll-check: workspace scan failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut diags = Vec::new();
        for path in &args {
            match fs::read_to_string(path) {
                Ok(text) => diags.extend(lll_check::check_file(path, &text)),
                Err(e) => {
                    eprintln!("lll-check: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (args.len(), diags)
    };
    for d in &diags {
        println!("{d}");
    }
    println!("lll-check: {scanned} file(s) scanned, {} finding(s)", diags.len());
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
