//! Log-level integration tests: append/replay across reopen, segment
//! rotation, torn-tail recovery at **every** possible truncation point,
//! bit-flip detection, gap refusal, the audit/repair runbook, and the
//! byte-pinned golden segment fixture.

use lll_wal::{audit, repair, FsyncPolicy, Wal, WalError, WalOptions};
use std::path::{Path, PathBuf};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lll_wal_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(segment_bytes: u64) -> WalOptions {
    WalOptions { fsync: FsyncPolicy::Never, segment_bytes }
}

fn replay_all(wal: &Wal) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    wal.replay(0, |lsn, payload| {
        out.push((lsn, payload));
        Ok(())
    })
    .unwrap();
    out
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    v.sort();
    v
}

#[test]
fn append_replay_roundtrip_across_reopen() {
    let dir = test_dir("roundtrip");
    let payloads: Vec<Vec<u8>> =
        (0u32..200).map(|i| i.to_le_bytes().repeat(1 + (i as usize % 17))).collect();
    {
        let (wal, rec) = Wal::open(&dir, opts(8 << 20)).unwrap();
        assert_eq!(rec.records, 0);
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.last_lsn(), 200);
        assert_eq!(wal.durable_lsn(), 200);
        // Drop syncs and joins the flusher.
    }
    let (wal, rec) = Wal::open(&dir, opts(8 << 20)).unwrap();
    assert_eq!(rec.records, 200);
    assert_eq!(rec.last_lsn, 200);
    assert_eq!(rec.truncated_bytes, 0);
    let replayed = replay_all(&wal);
    assert_eq!(replayed.len(), 200);
    for (i, (lsn, p)) in replayed.iter().enumerate() {
        assert_eq!(*lsn, i as u64 + 1);
        assert_eq!(p, &payloads[i]);
    }
    // A partial replay starts exactly after the requested LSN.
    let mut tail = Vec::new();
    wal.replay(150, |lsn, _| {
        tail.push(lsn);
        Ok(())
    })
    .unwrap();
    assert_eq!(tail, (151..=200).collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rotation_builds_a_contiguous_chain_and_truncation_prunes_it() {
    let dir = test_dir("rotate");
    let (wal, _) = Wal::open(&dir, opts(512)).unwrap();
    for i in 0u32..300 {
        wal.append(&i.to_le_bytes().repeat(4)).unwrap();
        if i % 37 == 0 {
            // Periodic syncs force batch boundaries so rotation actually
            // triggers mid-run rather than once at the end.
            wal.sync().unwrap();
        }
    }
    wal.sync().unwrap();
    let before = segment_files(&dir).len();
    assert!(before >= 3, "expected several segments, got {before}");
    assert_eq!(replay_all(&wal).len(), 300);
    assert!(wal.metrics().rotations.get() >= before as u64 - 1);

    // Truncating through LSN 150 removes fully-covered segments but every
    // record past 150 survives.
    let removed = wal.truncate_through(150).unwrap();
    assert!(removed > 0);
    assert_eq!(segment_files(&dir).len(), before - removed as usize);
    let mut tail = Vec::new();
    wal.replay(150, |lsn, _| {
        tail.push(lsn);
        Ok(())
    })
    .unwrap();
    assert_eq!(tail, (151..=300).collect::<Vec<_>>());
    // The active segment is never deleted, even by a full truncation.
    wal.truncate_through(u64::MAX - 1).unwrap();
    assert_eq!(segment_files(&dir).len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Build a two-segment log and return (dir, bytes of the last segment).
fn build_small_log(tag: &str) -> (PathBuf, PathBuf) {
    let dir = test_dir(tag);
    let (wal, _) = Wal::open(&dir, opts(256)).unwrap();
    for i in 0u32..10 {
        wal.append(format!("record-{i:04}-padding-padding").as_bytes()).unwrap();
        wal.sync().unwrap();
    }
    drop(wal);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 2, "need a multi-segment chain, got {}", segs.len());
    let last = segs.last().unwrap().clone();
    (dir, last)
}

#[test]
fn every_prefix_truncation_of_the_tail_recovers() {
    let (dir, last) = build_small_log("prefix");
    let full = std::fs::read(&last).unwrap();
    let full_records = {
        let (wal, rec) = Wal::open(&dir, opts(256)).unwrap();
        drop(wal);
        rec.records
    };
    for cut in 0..full.len() {
        std::fs::write(&last, &full[..cut]).unwrap();
        let (wal, rec) = Wal::open(&dir, opts(256)).unwrap();
        // Whatever survived is a contiguous LSN prefix, replayable with
        // no panic, and the torn tail is physically gone.
        let replayed = replay_all(&wal);
        assert_eq!(replayed.len() as u64, rec.records);
        for (i, (lsn, _)) in replayed.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
        }
        assert!(rec.records <= full_records);
        drop(wal);
        // Recovery truncated: a second open sees a clean chain.
        let report = audit(&dir).unwrap();
        assert!(report.healthy(), "cut={cut}: {report:?}");
        // Restore the full tail for the next iteration. The tail segment
        // may have been deleted entirely (cut inside its header).
        std::fs::write(&last, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flips_in_the_tail_are_detected_never_panic() {
    let (dir, last) = build_small_log("flip");
    let full = std::fs::read(&last).unwrap();
    let baseline = {
        let (w, r) = Wal::open(&dir, opts(256)).unwrap();
        drop(w);
        r
    };
    for byte in 0..full.len() {
        let mut mutated = full.clone();
        mutated[byte] ^= 0x10;
        std::fs::write(&last, &mutated).unwrap();
        // Open either succeeds with ≤ the original record count (damage
        // truncated) or fails with a typed error (magic/version bytes).
        match Wal::open(&dir, opts(256)) {
            Ok((wal, rec)) => {
                assert!(rec.records <= baseline.records);
                drop(wal);
            }
            Err(
                WalError::BadMagic { .. }
                | WalError::UnsupportedVersion { .. }
                | WalError::Corrupt(_),
            ) => {}
            Err(other) => panic!("byte {byte}: unexpected error {other}"),
        }
        std::fs::write(&last, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_chain_damage_is_refused_then_repaired() {
    let (dir, _) = build_small_log("midchain");
    let segs = segment_files(&dir);
    let first = &segs[0];

    // Flip a payload byte deep inside the FIRST segment: a crash cannot
    // do that, so open refuses and points at repair.
    let bytes = std::fs::read(first).unwrap();
    let mut mutated = bytes.clone();
    let target = bytes.len() - 3;
    mutated[target] ^= 0xFF;
    std::fs::write(first, &mutated).unwrap();
    match Wal::open(&dir, opts(256)) {
        Err(WalError::Corrupt(msg)) => assert!(msg.contains("repair"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // The runbook: audit shows where, repair truncates there, open works.
    let report = audit(&dir).unwrap();
    assert!(!report.healthy());
    assert_eq!(report.first_damage, Some(0));
    let fixed = repair(&dir).unwrap();
    assert!(fixed.changed());
    assert!(!fixed.removed.is_empty()); // later segments are gone
    assert_eq!(fixed.last_lsn, report.last_lsn);
    let (wal, rec) = Wal::open(&dir, opts(256)).unwrap();
    assert_eq!(rec.last_lsn, fixed.last_lsn);
    assert!(audit(&dir).unwrap().healthy());
    drop(wal);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_missing_segment_is_a_gap_not_silent_loss() {
    let dir = test_dir("gap");
    let (wal, _) = Wal::open(&dir, opts(256)).unwrap();
    for i in 0u32..24 {
        wal.append(format!("gap-record-{i:04}-padding!!").as_bytes()).unwrap();
        wal.sync().unwrap();
    }
    drop(wal);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 3, "need ≥3 segments, got {}", segs.len());
    std::fs::remove_file(&segs[1]).unwrap();
    match Wal::open(&dir, opts(256)) {
        Err(WalError::Gap { after, next }) => assert!(next > after + 1),
        other => panic!("expected Gap, got {other:?}"),
    }
    let report = audit(&dir).unwrap();
    assert_eq!(report.gaps.len(), 1);
    let fixed = repair(&dir).unwrap();
    assert!(fixed.changed());
    let (wal, rec) = Wal::open(&dir, opts(256)).unwrap();
    assert_eq!(rec.last_lsn, fixed.last_lsn);
    assert!(rec.last_lsn > 0);
    drop(wal);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_policies_acknowledge_and_sync_as_documented() {
    for policy in [FsyncPolicy::Always, FsyncPolicy::EveryMillis(5), FsyncPolicy::Never] {
        let dir = test_dir(match policy {
            FsyncPolicy::Always => "pol_always",
            FsyncPolicy::EveryMillis(_) => "pol_timed",
            FsyncPolicy::Never => "pol_never",
        });
        let (wal, _) =
            Wal::open(&dir, WalOptions { fsync: policy, segment_bytes: 8 << 20 }).unwrap();
        for i in 0u32..50 {
            let lsn = wal.append(&i.to_le_bytes()).unwrap();
            wal.wait_durable(lsn).unwrap();
            if matches!(policy, FsyncPolicy::Always) {
                assert!(wal.durable_lsn() >= lsn);
            }
        }
        // Explicit sync is honored under every policy.
        let synced = wal.sync().unwrap();
        assert_eq!(synced, 50);
        assert_eq!(wal.durable_lsn(), 50);
        if matches!(policy, FsyncPolicy::Always) {
            assert!(wal.metrics().fsyncs.get() > 0);
            assert!(wal.metrics().group_size.count() > 0);
        }
        drop(wal);
        let (wal, rec) =
            Wal::open(&dir, WalOptions { fsync: policy, segment_bytes: 8 << 20 }).unwrap();
        assert_eq!(rec.records, 50);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn group_commit_batches_concurrent_committers() {
    let dir = test_dir("group");
    let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
    let wal = std::sync::Arc::new(wal);
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let wal = std::sync::Arc::clone(&wal);
            std::thread::spawn(move || {
                for i in 0u32..25 {
                    wal.append_durable(format!("t{t}-{i}").as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(wal.last_lsn(), 200);
    assert_eq!(wal.durable_lsn(), 200);
    // With 8 committers the flusher must have amortized: strictly fewer
    // fsyncs than records.
    let fsyncs = wal.metrics().fsyncs.get();
    assert!(fsyncs < 200, "no grouping happened: {fsyncs} fsyncs for 200 records");
    std::fs::remove_dir_all(wal.dir()).unwrap();
}

/// The committed golden segment: byte-pinned so any accidental format
/// change fails loudly. Regenerate (after an *intentional* format bump)
/// with `cargo test -p lll-wal --test wal regenerate_golden_segment -- --ignored`.
fn golden_bytes() -> Vec<u8> {
    let mut bytes = lll_wal::segment::header_bytes(1).to_vec();
    for (lsn, payload) in [(1u64, &b"alpha"[..]), (2, b"beta"), (3, b"gamma-gamma")] {
        lll_wal::record::encode_frame_into(&mut bytes, lsn, payload).unwrap();
    }
    bytes
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wal-00000000000000000001.seg")
}

#[test]
fn golden_segment_fixture_is_byte_stable() {
    let committed =
        std::fs::read(golden_path()).expect("fixture missing — run the regenerate test");
    assert_eq!(
        committed,
        golden_bytes(),
        "WAL segment encoding changed; if intentional, bump WAL_VERSION and regenerate the fixture"
    );
    let scan = lll_wal::segment::scan_segment(&golden_path()).unwrap();
    assert!(scan.clean());
    assert_eq!(scan.records, 3);
    assert_eq!(scan.last_lsn, Some(3));
}

#[test]
#[ignore = "writes the committed fixture; run only on intentional format changes"]
fn regenerate_golden_segment() {
    std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
    std::fs::write(golden_path(), golden_bytes()).unwrap();
}
