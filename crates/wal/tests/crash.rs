//! Crash-recovery differential: a child process runs a multi-threaded
//! durable write workload and `abort()`s itself at a randomized point;
//! the parent recovers the directory and checks the durability contract:
//!
//! * **No acked write is lost** — every op the child acknowledged (after
//!   `wait_durable` returned) is present in the recovered state.
//! * **Nothing fabricated** — the recovered state is explainable as some
//!   per-thread prefix of the issued ops: at least the acked prefix, at
//!   most the intended prefix (ops staged but unacked are "in doubt" and
//!   may legitimately land or not).
//! * **Recovery never panics** — torn tails are healed, and a second
//!   open sees a healthy chain.
//!
//! The child is this same test binary re-executed with
//! `LLL_WAL_CRASH_CHILD` set (the `crash_child` "test" below is a no-op
//! in a normal run). Intents (`I t i`) and acks (`A t i`) stream over
//! stdout, flushed line-by-line so `abort()` cannot swallow them.

use lll_sharded::ShardedBuilder;
use lll_wal::{audit, DurableMap, DurableOptions, FsyncPolicy, WalOptions};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 40;

fn open_map(dir: &Path) -> DurableMap<String, String> {
    let opts = DurableOptions {
        wal: WalOptions { fsync: FsyncPolicy::Always, segment_bytes: 2 << 10 },
        keep_checkpoints: 2,
    };
    DurableMap::open(dir, opts, &ShardedBuilder::new()).unwrap().0
}

/// One logged mutation of the child workload, in the exact order thread
/// `t` issues them. Iteration `i` is an insert of `t:i`, and every 7th
/// iteration follows it with a remove of `t:(i-3)` — two *separate* WAL
/// records, so a crash can land between them; the model therefore works
/// at record granularity, not iteration granularity.
#[derive(Clone)]
enum Atom {
    Insert(u64),
    Remove(u64),
}

fn atoms_for(iterations: u64) -> Vec<Atom> {
    let mut out = Vec::new();
    for i in 0..iterations {
        out.push(Atom::Insert(i));
        if i % 7 == 6 {
            out.push(Atom::Remove(i - 3));
        }
    }
    out
}

/// The state of thread `t`'s key space after its first `prefix` atoms.
fn apply_atoms(t: u64, atoms: &[Atom], prefix: usize) -> BTreeMap<String, String> {
    let mut state = BTreeMap::new();
    for atom in &atoms[..prefix] {
        match atom {
            Atom::Insert(i) => {
                state.insert(format!("{t}:{i}"), format!("v{t}:{i}"));
            }
            Atom::Remove(i) => {
                state.remove(&format!("{t}:{i}"));
            }
        }
    }
    state
}

/// The child workload. Runs only when re-executed by the harness.
#[test]
fn crash_child() {
    let Ok(spec) = std::env::var("LLL_WAL_CRASH_CHILD") else { return };
    let mut parts = spec.split(',');
    let dir = parts.next().unwrap().to_string();
    let abort_after: u64 = parts.next().unwrap().parse().unwrap();
    let map = Arc::new(open_map(Path::new(&dir)));
    let acked = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = Arc::clone(&map);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    {
                        let mut out = std::io::stdout().lock();
                        let _ = writeln!(out, "I {t} {i}");
                        let _ = out.flush();
                    }
                    map.insert(format!("{t}:{i}"), format!("v{t}:{i}")).unwrap();
                    if i % 7 == 6 {
                        map.remove(&format!("{t}:{}", i - 3)).unwrap();
                    }
                    {
                        let mut out = std::io::stdout().lock();
                        let _ = writeln!(out, "A {t} {i}");
                        let _ = out.flush();
                    }
                    if acked.fetch_add(1, Ordering::SeqCst) + 1 >= abort_after {
                        std::process::abort();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    // If the quota was never reached, die anyway: the parent always
    // expects a crash exit.
    std::process::abort();
}

#[test]
fn hundred_randomized_kill_points_lose_no_acked_write() {
    if std::env::var("LLL_WAL_CRASH_CHILD").is_ok() {
        return; // we ARE a child; only crash_child may run
    }
    let exe = std::env::current_exe().unwrap();
    let base = std::env::temp_dir().join(format!("lll_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let total = THREADS * OPS_PER_THREAD;
    for iter in 0u64..100 {
        let dir = base.join(format!("iter-{iter}"));
        // Kill points sweep the whole workload: early (mid group-commit
        // warmup), middle, and past-the-end (clean-ish exit still aborted).
        let abort_after = 1 + (iter * 7919) % total;
        let output = Command::new(&exe)
            .arg("crash_child")
            .arg("--exact")
            .arg("--nocapture")
            .arg("--test-threads=1")
            .env("LLL_WAL_CRASH_CHILD", format!("{},{abort_after}", dir.display()))
            .output()
            .unwrap();
        assert!(
            !output.status.success(),
            "iter {iter}: child was supposed to abort but exited cleanly"
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        // The stderr of an abort is a SIGABRT note, not a panic backtrace.
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(!stderr.contains("panicked"), "iter {iter}: child panicked:\n{stderr}");

        // Parse intents and acks per thread; tolerate a final torn line.
        let mut intents = [0u64; THREADS as usize];
        let mut acks = [0u64; THREADS as usize];
        for line in stdout.lines() {
            // The libtest harness writes "test crash_child ... " with no
            // newline, so the first record can share its line — scan for
            // the tag anywhere in the token stream.
            let tokens: Vec<&str> = line.split_whitespace().collect();
            for j in 0..tokens.len() {
                let (tag, rest) = (tokens[j], tokens.get(j + 1).zip(tokens.get(j + 2)));
                let Some((t, i)) = rest else { continue };
                let (Ok(t), Ok(i)) = (t.parse::<u64>(), i.parse::<u64>()) else { continue };
                if t >= THREADS {
                    continue;
                }
                match tag {
                    "I" => intents[t as usize] = intents[t as usize].max(i + 1),
                    "A" => acks[t as usize] = acks[t as usize].max(i + 1),
                    _ => {}
                }
            }
        }

        // Recover. Must not panic; must not error.
        let map = open_map(&dir);
        let recovered: BTreeMap<String, String> = map.map().to_vec().into_iter().collect();
        drop(map);
        assert!(audit(&dir).unwrap().healthy(), "iter {iter}: chain unhealthy after recovery");

        // Per thread, the recovered state must equal applying some atom
        // prefix p with atoms(acked) ≤ p ≤ atoms(intended): every acked
        // iteration's records are fully in (durability), and nothing past
        // what was issued can appear (no fabrication). Threads have
        // disjoint key spaces, so each is checked in isolation.
        for t in 0..THREADS {
            let (a, i) = (acks[t as usize], intents[t as usize]);
            assert!(a <= i, "iter {iter}: thread {t} acked {a} > intended {i}");
            let tprefix = format!("{t}:");
            let observed: BTreeMap<&String, &String> =
                recovered.iter().filter(|(k, _)| k.starts_with(&tprefix)).collect();
            let atoms = atoms_for(i);
            let lo = atoms_for(a).len();
            let matched = (lo..=atoms.len()).any(|p| {
                let state = apply_atoms(t, &atoms, p);
                state.len() == observed.len()
                    && state.iter().all(|(k, v)| observed.get(k) == Some(&v))
            });
            assert!(
                matched,
                "iter {iter}: thread {t} recovered state matches no atom prefix in \
                 [{lo}, {}]; observed {} keys",
                atoms.len(),
                observed.len()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}
