//! DurableMap integration tests: recovery across reopen, checkpoint
//! truncation and bounded disk under churn, checkpoint fallback, and a
//! randomized differential against `BTreeMap`.

use lll_sharded::ShardedBuilder;
use lll_wal::durable::checkpoint_file_name;
use lll_wal::{DurableMap, DurableOptions, FsyncPolicy, WalError, WalOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lll_durable_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(fsync: FsyncPolicy, segment_bytes: u64) -> DurableOptions {
    DurableOptions { wal: WalOptions { fsync, segment_bytes }, keep_checkpoints: 2 }
}

fn builder() -> ShardedBuilder {
    let mut b = ShardedBuilder::new();
    b = b.max_shard_len(64).seed(7);
    b
}

type Map = DurableMap<u64, String>;

fn open(dir: &PathBuf, fsync: FsyncPolicy, seg: u64) -> (Map, lll_wal::DurableRecovery) {
    DurableMap::open(dir, opts(fsync, seg), &builder()).unwrap()
}

#[test]
fn acked_writes_survive_reopen() {
    let dir = test_dir("reopen");
    {
        let (map, rec) = open(&dir, FsyncPolicy::Always, 8 << 20);
        assert_eq!(rec.entries, 0);
        for i in 0u64..500 {
            map.insert(i, format!("value-{i}")).unwrap();
        }
        for i in (0u64..500).step_by(3) {
            map.remove(&i).unwrap();
        }
        map.batch_insert((1000..1100).map(|i| (i, format!("batch-{i}"))).collect()).unwrap();
    }
    let (map, rec) = open(&dir, FsyncPolicy::Always, 8 << 20);
    assert_eq!(rec.checkpoint_lsn, 0);
    assert_eq!(rec.replayed, 500 + 167 + 1);
    let m = map.map();
    assert_eq!(m.len(), 500 - 167 + 100);
    assert_eq!(m.get(&1), Some("value-1".to_string()));
    assert_eq!(m.get(&3), None);
    assert_eq!(m.get(&1050), Some("batch-1050".to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_insert_is_one_log_record() {
    let dir = test_dir("batch");
    let (map, _) = open(&dir, FsyncPolicy::Never, 8 << 20);
    map.batch_insert((0..1000).map(|i| (i, format!("v{i}"))).collect()).unwrap();
    assert_eq!(map.wal().last_lsn(), 1);
    assert_eq!(map.batch_insert(Vec::new()).unwrap(), 0);
    assert_eq!(map.wal().last_lsn(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_log_and_bounds_disk_under_churn() {
    let dir = test_dir("churn");
    let (map, _) = open(&dir, FsyncPolicy::Never, 4 << 10);
    let mut max_disk = 0u64;
    let mut checkpoints = 0;
    for round in 0u64..40 {
        for i in 0..200 {
            // Overwrite a bounded key space: live data stays small while
            // the log alone would grow without bound.
            map.insert(i % 97, format!("round-{round}-value-{i:06}")).unwrap();
        }
        if round % 5 == 4 {
            let report = map.checkpoint().unwrap();
            checkpoints += 1;
            assert_eq!(report.lsn, (round + 1) * 200);
            assert!(report.truncated_segments > 0, "round {round}: nothing truncated");
        }
        max_disk = max_disk.max(map.wal().disk_bytes());
    }
    assert!(checkpoints >= 8);
    // Live state is ~97 short entries; segments are 4 KiB. Without
    // truncation the log would be ~40·200·45 B ≈ 360 KiB; with periodic
    // checkpoints the log's share stays within a few segment sizes of the
    // churn between checkpoints (5 rounds ≈ 45 KiB) at all times.
    assert!(max_disk < 160 << 10, "disk usage unbounded under churn: peaked at {max_disk} bytes");
    assert!(map.wal().metrics().truncated_segments.get() > 0);

    // Reopen lands on the newest checkpoint + suffix, not a full replay.
    drop(map);
    let (map, rec) = open(&dir, FsyncPolicy::Never, 4 << 10);
    assert!(rec.checkpoint_lsn > 0);
    assert_eq!(map.map().len(), 97);
    assert_eq!(map.checkpoint_lsn(), rec.checkpoint_lsn);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unreadable_newest_checkpoint_falls_back_or_reports_gap() {
    // Case 1: the log still holds everything since the older checkpoint
    // (huge segment, never truncated under it) → fallback succeeds.
    let dir = test_dir("fallback");
    {
        let (map, _) = open(&dir, FsyncPolicy::Never, 64 << 20);
        for i in 0u64..50 {
            map.insert(i, format!("a{i}")).unwrap();
        }
        let first = map.checkpoint().unwrap();
        assert_eq!(first.truncated_segments, 0); // single active segment
        for i in 50u64..80 {
            map.insert(i, format!("b{i}")).unwrap();
        }
        let second = map.checkpoint().unwrap();
        // Corrupt the newest checkpoint file.
        std::fs::write(dir.join(checkpoint_file_name(second.lsn)), b"garbage").unwrap();
    }
    let (map, rec) = open(&dir, FsyncPolicy::Never, 64 << 20);
    assert_eq!(rec.checkpoints_skipped, 1);
    assert_eq!(rec.checkpoint_lsn, 50);
    assert_eq!(map.map().len(), 80);
    assert_eq!(map.map().get(&79), Some("b79".to_string()));
    drop(map);
    std::fs::remove_dir_all(&dir).unwrap();

    // Case 2: the log behind the newest checkpoint was truncated, so the
    // older checkpoint cannot be caught up → a typed Gap, not silent loss.
    let dir = test_dir("gap");
    let second_lsn;
    {
        let (map, _) = open(&dir, FsyncPolicy::Never, 1 << 10);
        for i in 0u64..200 {
            map.insert(i, format!("a-{i:04}")).unwrap();
        }
        map.checkpoint().unwrap();
        for i in 200u64..400 {
            map.insert(i, format!("b-{i:04}")).unwrap();
        }
        let second = map.checkpoint().unwrap();
        assert!(second.truncated_segments > 0);
        second_lsn = second.lsn;
        std::fs::write(dir.join(checkpoint_file_name(second_lsn)), b"garbage").unwrap();
    }
    match DurableMap::<u64, String>::open(&dir, opts(FsyncPolicy::Never, 1 << 10), &builder()) {
        Err(WalError::Gap { after, next }) => assert!(next > after + 1),
        other => panic!("expected Gap, got {:?}", other.map(|(_, r)| r)),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn differential_against_btreemap_across_reopens_and_checkpoints() {
    let dir = test_dir("diff");
    let mut model: BTreeMap<u64, String> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut reopens = 0;
    {
        let mut map = Some(open(&dir, FsyncPolicy::Never, 8 << 10).0);
        for step in 0..4000 {
            let m = map.as_ref().unwrap();
            let key = rng.gen_range(0u64..500);
            match rng.gen_range(0u32..10) {
                0..=5 => {
                    let v = format!("s{step}");
                    assert_eq!(m.insert(key, v.clone()).unwrap(), model.insert(key, v));
                }
                6..=7 => {
                    assert_eq!(m.remove(&key).unwrap(), model.remove(&key));
                }
                8 => {
                    let batch: Vec<(u64, String)> = (0..rng.gen_range(1usize..20))
                        .map(|j| {
                            let k = rng.gen_range(500u64..600);
                            (k, format!("b{step}-{j}"))
                        })
                        .collect();
                    m.batch_insert(batch.clone()).unwrap();
                    for (k, v) in batch {
                        model.insert(k, v);
                    }
                }
                _ => {
                    if rng.gen_bool(0.3) {
                        m.checkpoint().unwrap();
                    }
                    if rng.gen_bool(0.2) {
                        drop(map.take()); // clean shutdown
                        let (m2, _) = open(&dir, FsyncPolicy::Never, 8 << 10);
                        map = Some(m2);
                        reopens += 1;
                    }
                }
            }
            if step % 500 == 0 {
                let m = map.as_ref().unwrap();
                assert_eq!(m.map().to_vec(), model.clone().into_iter().collect::<Vec<_>>());
            }
        }
        assert!(reopens > 0, "differential never exercised reopen");
        let m = map.as_ref().unwrap();
        assert_eq!(m.map().to_vec(), model.clone().into_iter().collect::<Vec<_>>());
    }
    let (map, _) = open(&dir, FsyncPolicy::Never, 8 << 10);
    assert_eq!(map.map().to_vec(), model.into_iter().collect::<Vec<_>>());
    map.map().check_invariants();
    std::fs::remove_dir_all(&dir).unwrap();
}
