//! Segment files: naming, the per-segment header, and the tolerant scan
//! that recovery, replay, and audit all share.
//!
//! A WAL directory holds a chain of segment files:
//!
//! ```text
//! wal-00000000000000000001.seg      base LSN 1
//! wal-00000000000000004097.seg      base LSN 4097
//! …
//! ```
//!
//! Each starts with a 20-byte header — magic, format version, base LSN —
//! followed by [`record`] frames whose LSNs run
//! contiguously from the base. A segment's name and its header agree on
//! the base (checked on every scan), records never straddle segments
//! (the flusher rotates only at record boundaries), and the chain's
//! LSNs are contiguous across files — which is what makes truncation at
//! checkpoint a plain `remove_file` of fully-covered segments.

use crate::record::{self, ReadFrame, TornReason};
use crate::WalError;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// The 8-byte magic prefix of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"LLLWAL\0\0";

/// The segment format version this build writes and the only one it
/// reads — version negotiation is fail-fast, as in snapshots.
pub const WAL_VERSION: u32 = 1;

/// Bytes of segment header (magic + version + base LSN) before the first
/// record frame.
pub const SEGMENT_HEADER_LEN: u64 = 20;

/// The file name of the segment whose first record carries `base_lsn`.
/// Zero-padded to 20 digits so lexicographic directory order is LSN
/// order.
pub fn segment_file_name(base_lsn: u64) -> String {
    format!("wal-{base_lsn:020}.seg")
}

/// Parse a segment file name back to its base LSN; `None` for anything
/// that is not a `wal-<20 digits>.seg` name (checkpoints, temp files,
/// strangers).
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every segment in `dir`, sorted by base LSN. Non-segment files are
/// ignored (the directory also holds checkpoints).
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(WalError::Io)? {
        let entry = entry.map_err(WalError::Io)?;
        if let Some(base) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((base, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(base, _)| base);
    Ok(out)
}

/// Serialize a segment header into `buf`.
pub fn header_bytes(base_lsn: u64) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut out = [0u8; SEGMENT_HEADER_LEN as usize];
    out[..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&base_lsn.to_le_bytes());
    out
}

/// What one pass over a segment found. `valid_len` is the byte offset of
/// the first damage (or the file length if none) — exactly where repair
/// truncates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentScan {
    /// The base LSN the header records (0 when the header itself is torn).
    pub base_lsn: u64,
    /// Whole, checksum-verified records read.
    pub records: u64,
    /// LSN of the last valid record, if any.
    pub last_lsn: Option<u64>,
    /// Bytes up to (not including) the first damage; the file length when
    /// the segment is clean.
    pub valid_len: u64,
    /// The file's physical length.
    pub file_len: u64,
    /// The first unusable frame, if the scan stopped early.
    pub torn: Option<TornReason>,
}

impl SegmentScan {
    /// Is every physical byte accounted for by valid header + records?
    pub fn clean(&self) -> bool {
        self.torn.is_none() && self.valid_len == self.file_len
    }
}

/// Scan a segment, feeding every valid record to `sink` as
/// `(lsn, payload)`. Stops at the first damage, which is *returned*, not
/// an error: `Err` means I/O failure, a foreign file ([`WalError::
/// BadMagic`]), or a future format ([`WalError::UnsupportedVersion`]) —
/// things truncation must not "repair". A header cut short by a crash
/// mid-creation *is* damage: reported with `valid_len == 0`.
pub fn scan_segment_with(
    path: &Path,
    mut sink: impl FnMut(u64, Vec<u8>) -> Result<(), WalError>,
) -> Result<SegmentScan, WalError> {
    let file = File::open(path).map_err(WalError::Io)?;
    let file_len = file.metadata().map_err(WalError::Io)?.len();
    let mut r = BufReader::new(file);
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    let got = record::fill(&mut r, &mut header)?;
    if got < header.len() {
        return Ok(SegmentScan {
            base_lsn: 0,
            records: 0,
            last_lsn: None,
            valid_len: 0,
            file_len,
            torn: Some(TornReason::TruncatedFrame { have: got as u64, need: SEGMENT_HEADER_LEN }),
        });
    }
    if header[..8] != SEGMENT_MAGIC {
        return Err(WalError::BadMagic { segment: path.to_path_buf() });
    }
    let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion { segment: path.to_path_buf(), found: version });
    }
    let base_lsn = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    let mut scan = SegmentScan {
        base_lsn,
        records: 0,
        last_lsn: None,
        valid_len: SEGMENT_HEADER_LEN,
        file_len,
        torn: None,
    };
    loop {
        match record::read_frame(&mut r)? {
            ReadFrame::End => break,
            ReadFrame::Torn(reason) => {
                scan.torn = Some(reason);
                break;
            }
            ReadFrame::Record { lsn, payload } => {
                let expected = base_lsn + scan.records;
                if lsn != expected {
                    scan.torn = Some(TornReason::NonMonotoneLsn { expected, found: lsn });
                    break;
                }
                scan.valid_len += record::frame_len(payload.len());
                scan.records += 1;
                scan.last_lsn = Some(lsn);
                sink(lsn, payload)?;
            }
        }
    }
    Ok(scan)
}

/// [`scan_segment_with`] discarding the payloads — the shape audit and
/// recovery's structural pass use.
pub fn scan_segment(path: &Path) -> Result<SegmentScan, WalError> {
    scan_segment_with(path, |_, _| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_frame_into;
    use std::io::Write as _;

    fn write_segment(path: &Path, base: u64, payloads: &[&[u8]]) {
        let mut bytes = header_bytes(base).to_vec();
        for (i, p) in payloads.iter().enumerate() {
            encode_frame_into(&mut bytes, base + i as u64, p).unwrap();
        }
        let mut f = File::create(path).unwrap();
        f.write_all(&bytes).unwrap();
    }

    #[test]
    fn names_roundtrip_and_sort() {
        assert_eq!(segment_file_name(42), "wal-00000000000000000042.seg");
        assert_eq!(parse_segment_name("wal-00000000000000000042.seg"), Some(42));
        assert_eq!(parse_segment_name("wal-42.seg"), None);
        assert_eq!(parse_segment_name("checkpoint-00000000000000000042.snap"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
        assert!(segment_file_name(99) < segment_file_name(100));
    }

    #[test]
    fn scan_reads_records_and_stops_at_damage() {
        let dir = std::env::temp_dir().join(format!("lll_wal_seg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_file_name(5));
        write_segment(&path, 5, &[b"a", b"bb", b"ccc"]);

        let mut seen = Vec::new();
        let scan = scan_segment_with(&path, |lsn, p| {
            seen.push((lsn, p));
            Ok(())
        })
        .unwrap();
        assert!(scan.clean());
        assert_eq!(scan.records, 3);
        assert_eq!(scan.last_lsn, Some(7));
        assert_eq!(seen, vec![(5, b"a".to_vec()), (6, b"bb".to_vec()), (7, b"ccc".to_vec())]);

        // Tear the tail: chop the last two bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, 2);
        assert!(matches!(scan.torn, Some(TornReason::TruncatedFrame { .. })));
        assert_eq!(
            scan.valid_len,
            bytes[..bytes.len() - 2].len() as u64 - (record::frame_len(3) - 2)
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_and_future_files_are_hard_errors() {
        let dir = std::env::temp_dir().join(format!("lll_wal_seg2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_file_name(1));

        std::fs::write(&path, b"NOTAWAL\0rest of the file").unwrap();
        assert!(matches!(scan_segment(&path), Err(WalError::BadMagic { .. })));

        let mut future = header_bytes(1).to_vec();
        future[8] = 9; // version low byte
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(scan_segment(&path), Err(WalError::UnsupportedVersion { found: 9, .. })));

        // A header cut short by a crash is damage, not an error.
        std::fs::write(&path, &header_bytes(1)[..13]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.is_some());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
