//! `lll-wal` — a group-committed write-ahead delta log with incremental
//! checkpoints and point-in-time crash recovery for the sharded map.
//!
//! The crate has two layers:
//!
//! * [`Wal`] — the log itself: length-framed, per-record-checksummed
//!   frames ([`record`]) in rotating segment files ([`segment`]), with
//!   monotone LSNs, group commit (one flusher amortizes `fdatasync`
//!   across concurrent committers — [`wal`]), torn-tail-tolerant
//!   recovery, and an offline [`audit`](fn@audit)/repair surface.
//! * [`DurableMap`] — log-then-apply over the lock-free-reader
//!   `ShardedMap` ([`durable`]): every mutation is appended (and, under
//!   [`FsyncPolicy::Always`], fsynced) before it is applied and acked;
//!   [`DurableMap::checkpoint`] writes a snapshot on the `persist`
//!   format and truncates the log behind it; reopening recovers the
//!   newest valid checkpoint plus the logged suffix.
//!
//! Everything is dependency-free: the CRC, the framing, and the snapshot
//! codec are the workspace's own (`lll_api::codec`, `lll_api::persist`).
//! See `docs/wal.md` for the format tables, the recovery algorithm, and
//! the repair runbook.

#![forbid(unsafe_code)]

pub mod audit;
pub mod durable;
pub mod record;
pub mod segment;
pub mod wal;

pub use audit::{audit, repair, AuditReport, RepairReport, SegmentAudit};
pub use durable::{CheckpointReport, DurableMap, DurableOptions, DurableRecovery};
pub use record::{ReadFrame, TornReason, WalOp, MAX_RECORD_LEN};
pub use segment::{SegmentScan, SEGMENT_MAGIC, WAL_VERSION};
pub use wal::{FsyncPolicy, Wal, WalMetrics, WalOptions};

use lll_api::persist::SnapshotError;
use std::path::PathBuf;

/// Every way the log can fail. Damage discovered *inside* frames (torn
/// tails, bad checksums) is not an error during scans — it is data the
/// recovery policy acts on (see [`TornReason`]); `WalError` is for
/// failures the caller must handle: I/O, structural corruption that a
/// crash cannot explain, format mismatches, and use-after-failure.
#[derive(Debug)]
pub enum WalError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// Input ended before a complete value (from the shared codec).
    Truncated,
    /// A file in the WAL directory matched the segment naming scheme but
    /// does not start with [`SEGMENT_MAGIC`].
    BadMagic {
        /// The offending file.
        segment: PathBuf,
    },
    /// A segment written by a future (or foreign) format version.
    UnsupportedVersion {
        /// The offending file.
        segment: PathBuf,
        /// The version its header declares.
        found: u32,
    },
    /// Structural damage a crash cannot produce — e.g. a torn frame with
    /// intact segments after it. The message says what and where; the
    /// [`audit`](fn@crate::audit)/[`repair`] pair is the way forward.
    Corrupt(String),
    /// The LSN chain is missing records: the segment chain jumps from
    /// `after` to `next` (> `after + 1`). Replaying across the hole would
    /// silently lose writes, so recovery refuses.
    Gap {
        /// The last LSN before the hole.
        after: u64,
        /// The first LSN after it.
        next: u64,
    },
    /// An append larger than [`MAX_RECORD_LEN`] was refused (before
    /// staging anything, so the log is unchanged).
    RecordTooLarge {
        /// The payload length that was offered.
        declared: u64,
    },
    /// The log previously hit an unrecoverable flusher failure (the
    /// message) and now fails every operation fast rather than ack
    /// writes it cannot make durable.
    Closed(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Truncated => write!(f, "wal input truncated"),
            Self::BadMagic { segment } => {
                write!(f, "{} is not a WAL segment (bad magic)", segment.display())
            }
            Self::UnsupportedVersion { segment, found } => write!(
                f,
                "{} has unsupported WAL version {found} (this build reads {})",
                segment.display(),
                WAL_VERSION
            ),
            Self::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
            Self::Gap { after, next } => {
                write!(f, "wal LSN chain has a gap: records end at {after} and resume at {next}")
            }
            Self::RecordTooLarge { declared } => {
                write!(f, "wal record of {declared} bytes exceeds the {MAX_RECORD_LEN}-byte limit")
            }
            Self::Closed(msg) => write!(f, "wal closed after failure: {msg}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e)
        }
    }
}

impl From<SnapshotError> for WalError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(e) => Self::from(e),
            SnapshotError::Truncated => Self::Truncated,
            other => Self::Corrupt(other.to_string()),
        }
    }
}

/// What [`Wal::open`] found and did on disk. Returned rather than logged
/// so callers (the server's durable mode, the recovery example, tests)
/// can report it in their own voice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Live segments after recovery.
    pub segments: usize,
    /// Valid records across them.
    pub records: u64,
    /// The last valid LSN on disk (0 when the log is empty).
    pub last_lsn: u64,
    /// The first LSN on disk, if any records survive. A
    /// [`DurableMap`] cross-checks this against its checkpoint LSN to
    /// detect replaying from the wrong snapshot.
    pub first_lsn: Option<u64>,
    /// Torn-tail bytes truncated away from the final segment.
    pub truncated_bytes: u64,
    /// Segments deleted outright (a final segment with no whole header).
    pub removed_segments: usize,
}
