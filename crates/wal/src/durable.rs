//! [`DurableMap`]: log-then-apply over the sharded map.
//!
//! # Commit protocol
//!
//! Every mutation takes the **commit lock**, appends its [`WalOp`] to the
//! log, applies it to the in-memory [`ShardedMap`], and releases the
//! lock — so the log's LSN order *is* the apply order, and replay
//! reconstructs exactly the state that was live. Only then, outside the
//! lock, does the committer block on [`Wal::wait_durable`]: the lock is
//! free while the fsync is in flight, which is what lets the flusher
//! group many committers' records under one `fdatasync` (the whole point
//! of group commit). Reads never touch the commit lock — they go straight
//! to the sharded map's lock-free read path.
//!
//! # Checkpoints and recovery
//!
//! [`checkpoint`](DurableMap::checkpoint) quiesces writers (the same
//! commit lock), snapshots the map to `checkpoint-<lsn>.snap` on the
//! `persist` format (temp file → fsync → rename → directory fsync), then
//! truncates every log segment the snapshot covers — which is what keeps
//! disk usage bounded under sustained churn. [`open`](DurableMap::open)
//! walks checkpoints newest-first, restores the first one that parses,
//! replays the log suffix with LSN beyond it, and refuses (typed
//! [`WalError::Gap`]) if the log starts later than the checkpoint can
//! explain — a missing-history hole must never become silent data loss.

use crate::record::WalOp;
use crate::wal::{Wal, WalOptions};
use crate::{WalError, WalRecovery};
use lll_api::persist::Codec;
use lll_obs::TraceKind;
use lll_sharded::{ShardedBuilder, ShardedMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration for [`DurableMap::open`].
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// The log's own knobs (fsync policy, segment size).
    pub wal: WalOptions,
    /// How many checkpoint snapshots to keep on disk (default 2: the
    /// newest plus one fallback in case the newest is unreadable).
    pub keep_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self { wal: WalOptions::default(), keep_checkpoints: 2 }
    }
}

/// What [`DurableMap::open`] recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableRecovery {
    /// LSN of the checkpoint restored (0 when starting empty).
    pub checkpoint_lsn: u64,
    /// Checkpoint files that failed to parse and were skipped in favor
    /// of an older one.
    pub checkpoints_skipped: usize,
    /// Log records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Entries live after recovery.
    pub entries: usize,
    /// What the log layer itself found (torn-tail truncation etc.).
    pub wal: WalRecovery,
}

/// What one [`DurableMap::checkpoint`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The LSN the checkpoint covers (every record ≤ it is in the file).
    pub lsn: u64,
    /// Entries written.
    pub entries: usize,
    /// The snapshot file.
    pub path: PathBuf,
    /// Log segments truncated away behind it.
    pub truncated_segments: u64,
    /// Older checkpoint files garbage-collected.
    pub removed_checkpoints: usize,
}

/// The file name of the checkpoint covering `lsn`. Zero-padded like
/// segment names so lexicographic order is LSN order.
pub fn checkpoint_file_name(lsn: u64) -> String {
    format!("checkpoint-{lsn:020}.snap")
}

/// Parse a checkpoint file name back to its LSN.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".snap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(WalError::Io)? {
        let entry = entry.map_err(WalError::Io)?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Best-effort fsync of the directory itself, so renames and unlinks
/// inside it survive a crash. Ignored on platforms where opening a
/// directory for sync is not supported.
fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// A durably-logged [`ShardedMap`]: every mutation is written (and,
/// under [`FsyncPolicy::Always`](crate::FsyncPolicy::Always), fsynced)
/// to the WAL before it is applied and acknowledged. See the module docs
/// for the commit protocol and recovery story.
pub struct DurableMap<K: Ord + Clone, V> {
    map: Arc<ShardedMap<K, V>>,
    wal: Wal,
    /// Serializes append+apply so replay order equals apply order.
    commit: Mutex<()>,
    dir: PathBuf,
    checkpoint_lsn: AtomicU64,
    keep_checkpoints: usize,
}

impl<K, V> DurableMap<K, V>
where
    K: Ord + Clone + Codec,
    V: Codec,
{
    /// Open (or create) a durable map in `dir`: restore the newest
    /// checkpoint that parses, replay the logged suffix, and return the
    /// recovered map plus a [`DurableRecovery`] describing what was
    /// found. `builder` shapes the map only when no checkpoint exists —
    /// a restored snapshot carries its own policy.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        builder: &ShardedBuilder,
    ) -> Result<(Self, DurableRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(WalError::Io)?;
        let mut recovery = DurableRecovery::default();

        // Sweep any temp file a crash mid-checkpoint left behind; the
        // rename never happened, so it was never the checkpoint of record.
        for entry in std::fs::read_dir(&dir).map_err(WalError::Io)? {
            let entry = entry.map_err(WalError::Io)?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
                let _ = std::fs::remove_file(entry.path());
            }
        }

        // Newest checkpoint that parses wins; unreadable ones are skipped,
        // not fatal — the log behind the older fallback still replays us
        // to the present (or `Gap` reports honestly that it cannot).
        let mut restored: Option<(u64, ShardedMap<K, V>)> = None;
        for (lsn, path) in list_checkpoints(&dir)?.into_iter().rev() {
            let file = std::fs::File::open(&path).map_err(WalError::Io)?;
            let mut r = std::io::BufReader::new(file);
            match ShardedMap::read_snapshot(&mut r) {
                Ok(map) => {
                    restored = Some((lsn, map));
                    break;
                }
                Err(_) => recovery.checkpoints_skipped += 1,
            }
        }
        let (checkpoint_lsn, map) = match restored {
            Some((lsn, map)) => (lsn, map),
            None => (0, builder.build()),
        };
        recovery.checkpoint_lsn = checkpoint_lsn;

        let (wal, wal_recovery) = Wal::open_at(&dir, opts.wal, checkpoint_lsn + 1)?;
        if let Some(first) = wal_recovery.first_lsn {
            if first > checkpoint_lsn + 1 {
                // The log's history starts after the checkpoint ends:
                // records in between are gone (e.g. the newest checkpoint
                // was unreadable and the log behind it already truncated).
                return Err(WalError::Gap { after: checkpoint_lsn, next: first });
            }
        }
        recovery.wal = wal_recovery;
        recovery.replayed = wal.replay(checkpoint_lsn, |_, payload| {
            let op = WalOp::<K, V>::decode_from(&mut payload.as_slice())?;
            match op {
                WalOp::Insert { key, value } => {
                    map.insert(key, value);
                }
                WalOp::Remove { key } => {
                    map.remove(&key);
                }
                WalOp::Batch { entries } => {
                    map.extend_from_unsorted(entries);
                }
            }
            Ok(())
        })?;
        recovery.entries = map.len();

        Ok((
            Self {
                map: Arc::new(map),
                wal,
                commit: Mutex::new(()),
                dir,
                checkpoint_lsn: AtomicU64::new(checkpoint_lsn),
                keep_checkpoints: opts.keep_checkpoints.max(1),
            },
            recovery,
        ))
    }

    /// Insert, durably: logged (and fsync-acknowledged under `Always`)
    /// before this returns. Returns the previous value, like
    /// [`ShardedMap::insert`].
    pub fn insert(&self, key: K, value: V) -> Result<Option<V>, WalError> {
        let op = WalOp::Insert { key, value };
        let mut buf = Vec::new();
        op.encode_to(&mut buf)?;
        let guard = self.commit.lock().unwrap_or_else(|e| e.into_inner());
        let lsn = self.wal.append(&buf)?;
        let WalOp::Insert { key, value } = op else { unreachable!() };
        let prev = self.map.insert(key, value);
        drop(guard);
        self.wal.wait_durable(lsn)?;
        Ok(prev)
    }

    /// Remove, durably. Returns the removed value, like
    /// [`ShardedMap::remove`].
    pub fn remove(&self, key: &K) -> Result<Option<V>, WalError> {
        let op = WalOp::<K, V>::Remove { key: key.clone() };
        let mut buf = Vec::new();
        op.encode_to(&mut buf)?;
        let guard = self.commit.lock().unwrap_or_else(|e| e.into_inner());
        let lsn = self.wal.append(&buf)?;
        let prev = self.map.remove(key);
        drop(guard);
        self.wal.wait_durable(lsn)?;
        Ok(prev)
    }

    /// Insert a batch as **one** log record, durably. Returns the number
    /// of keys that were new, like [`ShardedMap::extend_from_unsorted`].
    pub fn batch_insert(&self, entries: Vec<(K, V)>) -> Result<usize, WalError> {
        if entries.is_empty() {
            return Ok(0);
        }
        let op = WalOp::Batch { entries };
        let mut buf = Vec::new();
        op.encode_to(&mut buf)?;
        let guard = self.commit.lock().unwrap_or_else(|e| e.into_inner());
        let lsn = self.wal.append(&buf)?;
        let WalOp::Batch { entries } = op else { unreachable!() };
        let added = self.map.extend_from_unsorted(entries);
        drop(guard);
        self.wal.wait_durable(lsn)?;
        Ok(added)
    }

    /// Snapshot the map and truncate the log behind it. Writers are
    /// quiesced for the duration (reads are unaffected); the snapshot is
    /// crash-safe — temp file, fsync, rename, directory fsync — and the
    /// log is only truncated once the rename has landed. Records a
    /// [`TraceKind::Checkpoint`] event in the map's op-trace ring.
    pub fn checkpoint(&self) -> Result<CheckpointReport, WalError> {
        let guard = self.commit.lock().unwrap_or_else(|e| e.into_inner());
        self.wal.sync()?;
        let lsn = self.wal.last_lsn();
        let entries = self.map.len();
        let tmp = self.dir.join(format!("checkpoint-{lsn:020}.tmp"));
        let path = self.dir.join(checkpoint_file_name(lsn));
        {
            let file = std::fs::File::create(&tmp).map_err(WalError::Io)?;
            let mut w = std::io::BufWriter::new(file);
            self.map.write_snapshot(&mut w)?;
            w.flush().map_err(WalError::Io)?;
            w.get_ref().sync_all().map_err(WalError::Io)?;
        }
        std::fs::rename(&tmp, &path).map_err(WalError::Io)?;
        sync_dir(&self.dir);
        self.checkpoint_lsn.store(lsn, Ordering::Release);
        drop(guard);

        // Behind the durable checkpoint: drop covered segments and old
        // snapshots. Neither needs the commit lock.
        let truncated_segments = self.wal.truncate_through(lsn)?;
        let mut removed_checkpoints = 0;
        let checkpoints = list_checkpoints(&self.dir)?;
        let keep_from = checkpoints.len().saturating_sub(self.keep_checkpoints);
        for (_, old) in &checkpoints[..keep_from] {
            std::fs::remove_file(old).map_err(WalError::Io)?;
            removed_checkpoints += 1;
        }
        if truncated_segments > 0 || removed_checkpoints > 0 {
            sync_dir(&self.dir);
        }
        self.map.trace().record(TraceKind::Checkpoint, lsn, entries as u64, truncated_segments);
        Ok(CheckpointReport { lsn, entries, path, truncated_segments, removed_checkpoints })
    }

    /// The in-memory map, for the read path (and for snapshot-serving:
    /// reads need no log). Mutating it directly bypasses the log — use
    /// the durable mutators.
    pub fn map(&self) -> &Arc<ShardedMap<K, V>> {
        &self.map
    }

    /// The log underneath, for metrics, audit, and tests.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The LSN of the newest checkpoint taken or restored (0 if none).
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn.load(Ordering::Acquire)
    }

    /// The directory holding segments and checkpoints.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl<K: Ord + Clone, V> std::fmt::Debug for DurableMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableMap")
            .field("dir", &self.dir)
            .field("len", &self.map.len())
            .field("checkpoint_lsn", &self.checkpoint_lsn.load(Ordering::Acquire))
            .field("wal", &self.wal)
            .finish_non_exhaustive()
    }
}
