//! Offline audit and repair of a WAL directory.
//!
//! [`Wal::open`](crate::Wal::open) auto-heals only the one kind of damage
//! a crash produces — a torn tail on the *last* segment. Anything else
//! (a torn frame mid-chain, a foreign file wearing a segment name, a
//! missing segment) means bytes were lost or mangled *after* they were
//! durable, and silently truncating there would turn a detectable fault
//! into invisible data loss. So `open` refuses, and this module is the
//! explicit path:
//!
//! * [`audit`] walks the chain read-only and reports every segment's
//!   health, the first point of damage, and any LSN gaps.
//! * [`repair`] truncates the chain at the first damage — cutting the
//!   damaged segment back to its last valid record and deleting every
//!   segment after it — accepting the loss the report quantifies.
//!
//! The repair runbook in `docs/wal.md` walks through reading a report.

use crate::segment::{list_segments, scan_segment, SEGMENT_HEADER_LEN};
use crate::WalError;
use std::path::{Path, PathBuf};

/// One segment's health, as [`audit`] saw it.
#[derive(Clone, Debug)]
pub struct SegmentAudit {
    /// The segment file.
    pub path: PathBuf,
    /// Base LSN from the file name.
    pub base_lsn: u64,
    /// Whole, checksum-verified records.
    pub records: u64,
    /// LSN of the last valid record, if any.
    pub last_lsn: Option<u64>,
    /// Bytes up to the first damage (file length when clean).
    pub valid_len: u64,
    /// Physical file length.
    pub file_len: u64,
    /// What is wrong with this segment, if anything — a human-readable
    /// rendering of the torn reason, magic/version mismatch, or
    /// name/header disagreement.
    pub problem: Option<String>,
}

/// What [`audit`] found across the whole chain.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every segment, in base-LSN order.
    pub segments: Vec<SegmentAudit>,
    /// Valid records across the chain, up to the first damage.
    pub records: u64,
    /// The last valid LSN before any damage (0 when none are valid).
    pub last_lsn: u64,
    /// Index into `segments` of the first damaged segment, if any.
    pub first_damage: Option<usize>,
    /// LSN gaps between consecutive healthy segments, as
    /// `(last LSN before the hole, first LSN after it)`.
    pub gaps: Vec<(u64, u64)>,
}

impl AuditReport {
    /// No damage, no gaps: [`Wal::open`](crate::Wal::open) will succeed
    /// with at most a crash-normal torn-tail truncation (which `audit`
    /// also reports as damage — on the *last* segment — so a healthy
    /// report means a byte-perfect chain).
    pub fn healthy(&self) -> bool {
        self.first_damage.is_none() && self.gaps.is_empty()
    }
}

/// What [`repair`] did.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// The segment truncated back to its last valid record, if any.
    pub truncated: Option<PathBuf>,
    /// Bytes cut from it.
    pub truncated_bytes: u64,
    /// Segments deleted outright (damaged beyond their header, or
    /// stranded past the first damage / gap).
    pub removed: Vec<PathBuf>,
    /// The last LSN that survives.
    pub last_lsn: u64,
}

impl RepairReport {
    /// Did repair change anything on disk?
    pub fn changed(&self) -> bool {
        self.truncated.is_some() || !self.removed.is_empty()
    }
}

fn audit_one(base_from_name: u64, path: &Path) -> Result<SegmentAudit, WalError> {
    let mut out = SegmentAudit {
        path: path.to_path_buf(),
        base_lsn: base_from_name,
        records: 0,
        last_lsn: None,
        valid_len: 0,
        file_len: std::fs::metadata(path).map_err(WalError::Io)?.len(),
        problem: None,
    };
    match scan_segment(path) {
        Ok(scan) => {
            out.records = scan.records;
            out.last_lsn = scan.last_lsn;
            out.valid_len = scan.valid_len;
            out.file_len = scan.file_len;
            if scan.valid_len > 0 && scan.base_lsn != base_from_name {
                out.problem = Some(format!(
                    "file name says base {base_from_name} but header says {}",
                    scan.base_lsn
                ));
                out.valid_len = 0;
                out.records = 0;
                out.last_lsn = None;
            } else if let Some(reason) = scan.torn {
                out.problem = Some(reason.to_string());
            }
        }
        // Foreign or future files are damage to report, not I/O failure.
        Err(e @ (WalError::BadMagic { .. } | WalError::UnsupportedVersion { .. })) => {
            out.problem = Some(e.to_string());
        }
        Err(e) => return Err(e),
    }
    Ok(out)
}

/// Walk every segment in `dir` read-only and report the chain's health.
/// `Err` means the walk itself failed (I/O); damage is *in* the report.
pub fn audit(dir: impl AsRef<Path>) -> Result<AuditReport, WalError> {
    let mut report = AuditReport::default();
    let mut next_expected: Option<u64> = None;
    for (base, path) in list_segments(dir.as_ref())? {
        let seg = audit_one(base, &path)?;
        let idx = report.segments.len();
        let damaged = seg.problem.is_some();
        if report.first_damage.is_none() {
            if let Some(expected) = next_expected {
                if seg.base_lsn > expected {
                    report.gaps.push((expected - 1, seg.base_lsn));
                }
            }
            report.records += seg.records;
            if let Some(l) = seg.last_lsn {
                report.last_lsn = l;
            }
            if damaged {
                report.first_damage = Some(idx);
            }
            next_expected = Some(seg.base_lsn + seg.records);
        }
        report.segments.push(seg);
    }
    Ok(report)
}

/// Truncate the chain at its first damage or gap, accepting the loss:
/// the damaged segment is cut back to its last valid record (deleted
/// outright if nothing valid survives its header), and every segment
/// after the cut — including those stranded past a gap — is deleted.
/// After repair, [`Wal::open`](crate::Wal::open) succeeds and
/// [`audit`] reports healthy.
pub fn repair(dir: impl AsRef<Path>) -> Result<RepairReport, WalError> {
    let report = audit(&dir)?;
    let mut out = RepairReport { last_lsn: report.last_lsn, ..Default::default() };

    // The cut point: the first damaged segment, or the first segment past
    // a gap, whichever comes first in the chain.
    let first_past_gap = report.gaps.first().map(|&(_, next)| {
        report.segments.iter().position(|s| s.base_lsn == next).unwrap_or(report.segments.len())
    });
    let cut = match (report.first_damage, first_past_gap) {
        (Some(d), Some(g)) => d.min(g),
        (Some(d), None) => d,
        (None, Some(g)) => g,
        (None, None) => return Ok(out),
    };

    // What survives: the cut segment's valid prefix (if it has one and is
    // the damaged segment — a healthy segment stranded past a gap is
    // removed whole), plus everything before the cut.
    out.last_lsn = report.segments.iter().take(cut).rev().find_map(|s| s.last_lsn).unwrap_or(0);

    for (idx, seg) in report.segments.iter().enumerate() {
        if idx < cut {
            continue;
        }
        let keeps_records =
            idx == cut && seg.problem.is_some() && seg.valid_len > SEGMENT_HEADER_LEN;
        if keeps_records {
            let f =
                std::fs::OpenOptions::new().write(true).open(&seg.path).map_err(WalError::Io)?;
            f.set_len(seg.valid_len).map_err(WalError::Io)?;
            f.sync_data().map_err(WalError::Io)?;
            out.truncated = Some(seg.path.clone());
            out.truncated_bytes += seg.file_len - seg.valid_len;
            if let Some(l) = seg.last_lsn {
                out.last_lsn = l;
            }
        } else {
            std::fs::remove_file(&seg.path).map_err(WalError::Io)?;
            out.removed.push(seg.path.clone());
        }
    }
    Ok(out)
}
