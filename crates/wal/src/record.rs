//! WAL record frames: the length-framed, CRC-checksummed envelope every
//! log record travels in, plus the typed [`WalOp`] payload the
//! [`DurableMap`](crate::DurableMap) writes.
//!
//! # Frame layout
//!
//! ```text
//! len     u32   body bytes that follow (LSN + payload)
//! crc     u32   CRC32 (IEEE) of the body
//! lsn     u64   ┐
//! payload […]   ┘ the body
//! ```
//!
//! All integers little-endian. `len` covers the body only (so an empty
//! payload encodes as `len = 8`), and is bounded by [`MAX_RECORD_LEN`]
//! before any allocation — the same distrust of declared lengths as
//! snapshots and wire frames, via the shared
//! [`lll_api::codec`] discipline.
//!
//! # Error discipline
//!
//! [`read_frame`] **never panics** on hostile bytes and never errors on
//! the damage a crash legitimately leaves behind: a frame cut short, a
//! length field of garbage, a checksum mismatch are all *data*, returned
//! as [`ReadFrame::Torn`] so the caller (segment scan, recovery, audit)
//! can stop at the damage and truncate. Only real I/O failures (and the
//! clean end of a segment, [`ReadFrame::End`]) are something else.

// lll-check: enforce(panic-free-decode)
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::WalError;
use lll_api::codec::{Crc32, PREALLOC_CAP};
use lll_api::persist::{Codec, SnapshotError};
use std::io::{ErrorKind, Read, Write};

/// Hard ceiling on one record's body (LSN + payload). Matches the wire
/// protocol's frame cap: big enough for a 100k-entry batch, small enough
/// that a corrupt length cannot balloon recovery's memory.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// Bytes of frame header (`len` + `crc`) in front of every body.
pub const FRAME_HEADER_LEN: u64 = 8;

/// Why a segment scan stopped before the end of the file: the shape of
/// the first unusable frame. Recovery and [`repair`](crate::audit::repair)
/// truncate at the byte offset where this was found;
/// [`audit`](crate::audit::audit) reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornReason {
    /// The file ended inside a frame — the classic torn tail of a crash
    /// mid-write.
    TruncatedFrame {
        /// Bytes of the frame actually present.
        have: u64,
        /// Bytes the frame's header promised.
        need: u64,
    },
    /// The length field is impossible: under the 8-byte LSN minimum or
    /// over [`MAX_RECORD_LEN`]. Nothing after it can be trusted.
    BadLength {
        /// The declared body length.
        declared: u64,
    },
    /// The body's CRC32 does not match the header's — bit rot or a torn
    /// interior write.
    ChecksumMismatch {
        /// The checksum the frame header carries.
        expected: u32,
        /// The checksum the body actually hashes to.
        found: u32,
    },
    /// The record decoded cleanly but carries the wrong LSN: segment LSNs
    /// are assigned contiguously, so a skip means lost or reordered
    /// writes from this point on.
    NonMonotoneLsn {
        /// The LSN the scan expected next.
        expected: u64,
        /// The LSN the record carries.
        found: u64,
    },
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornReason::TruncatedFrame { have, need } => {
                write!(f, "frame cut short ({have} of {need} bytes)")
            }
            TornReason::BadLength { declared } => {
                write!(f, "impossible frame length {declared} (valid: 8..={MAX_RECORD_LEN})")
            }
            TornReason::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch (header {expected:#010x}, body {found:#010x})")
            }
            TornReason::NonMonotoneLsn { expected, found } => {
                write!(f, "LSN discontinuity (expected {expected}, found {found})")
            }
        }
    }
}

/// One step of a segment scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadFrame {
    /// A whole, checksum-verified record.
    Record {
        /// The record's log sequence number.
        lsn: u64,
        /// The record's payload (everything after the LSN).
        payload: Vec<u8>,
    },
    /// Clean end of the stream, exactly at a frame boundary.
    End,
    /// An unusable frame: scanning must stop here and treat everything
    /// from this offset on as lost.
    Torn(TornReason),
}

/// Fill `buf` as far as the stream allows, retrying `Interrupted`;
/// returns the bytes read (less than `buf.len()` only at end of stream).
pub(crate) fn fill<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<usize, WalError> {
    let mut filled = 0;
    while filled < buf.len() {
        // lll-check: allow(panic-free-decode, filled < buf.len() is the loop guard one line up)
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WalError::Io(e)),
        }
    }
    Ok(filled)
}

/// Append one framed record to `buf` — the staging half of group commit.
/// Refuses bodies over [`MAX_RECORD_LEN`] ([`WalError::RecordTooLarge`])
/// before touching the buffer, so a failed append never leaves a partial
/// frame staged. Writes into the caller's reused buffer; allocation-free
/// once the buffer has warmed to the workload's record size.
// lll-check: no-alloc
pub fn encode_frame_into(buf: &mut Vec<u8>, lsn: u64, payload: &[u8]) -> Result<(), WalError> {
    let body_len = payload.len() as u64 + 8;
    let len = match u32::try_from(body_len) {
        Ok(l) if l <= MAX_RECORD_LEN => l,
        _ => return Err(WalError::RecordTooLarge { declared: body_len }),
    };
    let lsn_bytes = lsn.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&lsn_bytes);
    crc.update(payload);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc.finish().to_le_bytes());
    buf.extend_from_slice(&lsn_bytes);
    buf.extend_from_slice(payload);
    Ok(())
}

/// Read one frame. Damage is data ([`ReadFrame::Torn`]), the clean end of
/// the segment is [`ReadFrame::End`]; only real I/O failures are `Err`.
/// The payload reservation is capped at [`PREALLOC_CAP`] and the read is
/// bounded, so a lying length can cost at most one capped buffer before
/// the shortfall surfaces as a torn frame.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<ReadFrame, WalError> {
    let mut header = [0u8; 8];
    match fill(r, &mut header)? {
        0 => return Ok(ReadFrame::End),
        n if n < 8 => {
            return Ok(ReadFrame::Torn(TornReason::TruncatedFrame { have: n as u64, need: 8 }))
        }
        _ => {}
    }
    let [l0, l1, l2, l3, c0, c1, c2, c3] = header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    let expected_crc = u32::from_le_bytes([c0, c1, c2, c3]);
    if !(8..=MAX_RECORD_LEN).contains(&len) {
        return Ok(ReadFrame::Torn(TornReason::BadLength { declared: len as u64 }));
    }
    let mut lsn_bytes = [0u8; 8];
    let got = fill(r, &mut lsn_bytes)?;
    if got < 8 {
        return Ok(ReadFrame::Torn(TornReason::TruncatedFrame {
            have: got as u64,
            need: len as u64,
        }));
    }
    let payload_len = (len - 8) as u64;
    // Capped reservation + bounded read: the shared length-guard idiom.
    // lll-check: allow(panic-free-decode, len <= MAX_RECORD_LEN (64 MiB) fits usize on every supported target)
    let mut payload = Vec::with_capacity((payload_len as usize).min(PREALLOC_CAP));
    let got = r.take(payload_len).read_to_end(&mut payload)?;
    if (got as u64) < payload_len {
        return Ok(ReadFrame::Torn(TornReason::TruncatedFrame {
            have: 8 + got as u64,
            need: len as u64,
        }));
    }
    let mut crc = Crc32::new();
    crc.update(&lsn_bytes);
    crc.update(&payload);
    let found = crc.finish();
    if found != expected_crc {
        return Ok(ReadFrame::Torn(TornReason::ChecksumMismatch { expected: expected_crc, found }));
    }
    Ok(ReadFrame::Record { lsn: u64::from_le_bytes(lsn_bytes), payload })
}

/// On-disk size of a record whose payload is `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> u64 {
    FRAME_HEADER_LEN + 8 + payload_len as u64
}

/// One logged mutation — the payload vocabulary
/// [`DurableMap`](crate::DurableMap) records and replays. Encoded as a tag byte
/// followed by the [`Codec`] encodings of the fields, so key/value bytes
/// in the log are byte-identical to their snapshot and wire encodings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp<K, V> {
    /// `insert(key, value)` — tag 1.
    Insert {
        /// The inserted key.
        key: K,
        /// The inserted value.
        value: V,
    },
    /// `remove(key)` — tag 2. Logged even when the key turns out absent;
    /// replaying a no-op remove is harmless.
    Remove {
        /// The removed key.
        key: K,
    },
    /// One batch insert — tag 3. A single record, so the batch replays
    /// with the same all-at-once landing it committed with.
    Batch {
        /// The batch's `(key, value)` pairs, in arrival order.
        entries: Vec<(K, V)>,
    },
}

impl<K: Codec, V: Codec> WalOp<K, V> {
    /// Append the op's encoding to `w`.
    pub fn encode_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        match self {
            WalOp::Insert { key, value } => {
                1u8.encode(w)?;
                key.encode(w)?;
                value.encode(w)
            }
            WalOp::Remove { key } => {
                2u8.encode(w)?;
                key.encode(w)
            }
            WalOp::Batch { entries } => {
                3u8.encode(w)?;
                entries.encode(w)
            }
        }
    }

    /// Decode one op. An unknown tag is [`SnapshotError::Corrupt`] — the
    /// CRC already vouched for the bytes, so this means a version skew or
    /// a logic error, not line noise.
    pub fn decode_from<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        match u8::decode(r)? {
            1 => Ok(WalOp::Insert { key: K::decode(r)?, value: V::decode(r)? }),
            2 => Ok(WalOp::Remove { key: K::decode(r)? }),
            3 => Ok(WalOp::Batch { entries: Vec::decode(r)? }),
            tag => Err(SnapshotError::Corrupt(format!("unknown WAL op tag {tag:#x}"))),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, lsn, payload).unwrap();
        buf
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = frame(7, b"hello");
        encode_frame_into(&mut buf, 8, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            ReadFrame::Record { lsn: 7, payload: b"hello".to_vec() }
        );
        assert_eq!(read_frame(&mut r).unwrap(), ReadFrame::Record { lsn: 8, payload: Vec::new() });
        assert_eq!(read_frame(&mut r).unwrap(), ReadFrame::End);
        assert_eq!(buf.len() as u64, frame_len(5) + frame_len(0));
    }

    #[test]
    fn every_prefix_is_torn_never_a_panic() {
        let buf = frame(42, b"payload bytes");
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]).unwrap() {
                ReadFrame::End if cut == 0 => {}
                ReadFrame::Torn(TornReason::TruncatedFrame { have, need }) => {
                    assert!(have < need, "prefix {cut}: have {have} >= need {need}");
                }
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let buf = frame(3, b"abcdef");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                match read_frame(&mut bad.as_slice()).unwrap() {
                    ReadFrame::Torn(_) => {}
                    // A flip in the length field can also make the frame
                    // claim *fewer* bytes than present — the CRC still
                    // catches it (the body hash changes), so a clean
                    // Record must never appear.
                    other => panic!("flip byte {byte} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_and_undersized_lengths_are_torn() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut buf.as_slice()).unwrap(),
            ReadFrame::Torn(TornReason::BadLength { .. })
        ));
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&7u32.to_le_bytes()); // < 8: no room for the LSN
        tiny.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            read_frame(&mut tiny.as_slice()).unwrap(),
            ReadFrame::Torn(TornReason::BadLength { declared: 7 })
        ));
    }

    #[test]
    fn record_too_large_is_refused_before_staging() {
        let huge = vec![0u8; MAX_RECORD_LEN as usize];
        let mut buf = Vec::new();
        assert!(matches!(
            encode_frame_into(&mut buf, 1, &huge),
            Err(WalError::RecordTooLarge { .. })
        ));
        assert!(buf.is_empty(), "failed append must not leave partial bytes staged");
    }

    #[test]
    fn ops_roundtrip_and_reject_unknown_tags() {
        let ops: Vec<WalOp<u64, String>> = vec![
            WalOp::Insert { key: 1, value: "one".into() },
            WalOp::Remove { key: 2 },
            WalOp::Batch { entries: vec![(3, "three".into()), (4, "four".into())] },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            op.encode_to(&mut buf).unwrap();
            let mut r = buf.as_slice();
            assert_eq!(&WalOp::<u64, String>::decode_from(&mut r).unwrap(), op);
            assert!(r.is_empty());
        }
        assert!(matches!(
            WalOp::<u64, String>::decode_from(&mut [9u8].as_slice()),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
