//! The group-committed log: writers stage frames into a shared buffer,
//! one flusher thread writes and fsyncs them in batches.
//!
//! # Group commit
//!
//! An [`append`](Wal::append) takes the state mutex just long enough to
//! claim the next LSN and stage its frame, then wakes the flusher. The
//! flusher swaps the whole staged buffer out (writers immediately stage
//! into a fresh one), writes it with one `write_all`, and — under
//! [`FsyncPolicy::Always`] — issues **one** `fdatasync` covering every
//! record in the batch. Writers that need durability park on a condvar
//! until the synced LSN passes theirs ([`wait_durable`](Wal::wait_durable)),
//! so while one fsync is in flight the next batch is already forming:
//! N concurrent committers pay ~1/N of an fsync each instead of one
//! apiece. On this class of hardware an fsync is ~100µs and a buffered
//! write <1µs, which is where the group-commit throughput multiple in
//! `BENCH_wal.json` comes from.
//!
//! # Policies
//!
//! * [`Always`](FsyncPolicy::Always) — `append_durable`/`wait_durable`
//!   block until the record is fsync-durable. No acked write is ever
//!   lost to a crash.
//! * [`EveryMillis(n)`](FsyncPolicy::EveryMillis) — appends return after
//!   staging; the flusher fsyncs at least every `n` ms. A crash loses at
//!   most the tail since the last sync.
//! * [`Never`](FsyncPolicy::Never) — appends return after staging; data
//!   reaches the OS promptly but sync is left to the kernel. A crash
//!   loses whatever the kernel had not written back.
//!
//! Every policy keeps the *order* of records: LSNs are assigned under
//! the state mutex and batches are written in LSN order, so the on-disk
//! prefix is always an exact prefix of the append history.

use crate::record::encode_frame_into;
use crate::segment::{header_bytes, segment_file_name, SEGMENT_HEADER_LEN};
use crate::{WalError, WalRecovery};
use lll_obs::{Counter, Histogram};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When the flusher calls `fdatasync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync every batch; committers block until their LSN is durable.
    Always,
    /// Fsync at least every this-many milliseconds; appends don't block.
    EveryMillis(u64),
    /// Never fsync (except on clean shutdown and explicit [`Wal::sync`]).
    Never,
}

/// Configuration for [`Wal::open`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// The fsync policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment file once the current one reaches this
    /// size (default 8 MiB). Rotation happens at record boundaries
    /// (batches are cut into segment-sized chunks as they are written),
    /// so a segment can overshoot by at most one record.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self { fsync: FsyncPolicy::Always, segment_bytes: 8 << 20 }
    }
}

/// The log's shared instruments. Counters and histograms are
/// `Arc`-shared so a server (or any registry owner) can adopt the *same*
/// cells into its Prometheus exposition — the pattern
/// `ShardedMap::read_path_metrics` set.
#[derive(Clone)]
pub struct WalMetrics {
    /// Records appended (staged), across all policies.
    pub appends: Arc<Counter>,
    /// `fdatasync` calls issued by the flusher.
    pub fsyncs: Arc<Counter>,
    /// Segment rotations.
    pub rotations: Arc<Counter>,
    /// Segments deleted by checkpoint truncation.
    pub truncated_segments: Arc<Counter>,
    /// Records made durable per fsync — the group-commit batch size.
    /// `p50()` near 1 means no concurrency to amortize; higher means the
    /// flusher is batching.
    pub group_size: Arc<Histogram>,
    /// `fdatasync` latency, nanoseconds.
    pub fsync_latency_ns: Arc<Histogram>,
}

impl WalMetrics {
    fn new() -> Self {
        Self {
            appends: Arc::new(Counter::new()),
            fsyncs: Arc::new(Counter::new()),
            rotations: Arc::new(Counter::new()),
            truncated_segments: Arc::new(Counter::new()),
            group_size: Arc::new(Histogram::new(1, 1 << 20)),
            fsync_latency_ns: Arc::new(Histogram::latency_ns()),
        }
    }
}

/// Mutable log state, under the one mutex. Appends touch only the
/// staging fields; the flusher owns file writes (it clones the
/// `Arc<File>` and writes outside the lock).
struct State {
    /// Encoded frames staged since the flusher's last swap.
    staged: Vec<u8>,
    /// LSN of the first staged record (meaningful when `staged_count > 0`).
    staged_first: u64,
    /// Records currently staged.
    staged_count: u64,
    /// The next LSN to assign.
    next_lsn: u64,
    /// The active segment file, if one exists yet (created lazily on the
    /// first batch so an untouched log leaves no files behind).
    current: Option<Arc<File>>,
    /// Bytes in the active segment (header included).
    current_len: u64,
    /// Seal the active segment and start a new one before the next batch.
    needs_rotation: bool,
    /// Every live segment, sorted by base LSN (the active one last).
    segments: Vec<(u64, PathBuf)>,
    /// A sticky flusher failure: all later appends/waits fail fast with
    /// it, so the log never silently drops a record it acked.
    failed: Option<String>,
    /// An explicit [`Wal::sync`] wants an fsync regardless of policy.
    force_sync: bool,
}

struct Inner {
    dir: PathBuf,
    opts: WalOptions,
    state: Mutex<State>,
    /// Wakes the flusher (staged data, sync request, shutdown).
    work: Condvar,
    /// Wakes committers waiting on `synced_lsn`.
    durable: Condvar,
    /// Highest LSN the flusher has handed to the OS.
    written_lsn: AtomicU64,
    /// Highest LSN known fsync-durable.
    synced_lsn: AtomicU64,
    shutdown: AtomicBool,
    metrics: WalMetrics,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail(&self, st: &mut State, what: &str, e: &std::io::Error) {
        if st.failed.is_none() {
            st.failed = Some(format!("{what}: {e}"));
        }
        // Every waiter must see the failure, not sleep forever.
        self.durable.notify_all();
    }

    /// Publish a new durable LSN. Taking the state lock around the store
    /// and notify closes the lost-wakeup window against
    /// `block_until_synced`, whose predicate check runs under the same
    /// lock.
    fn publish_synced(&self, lsn: u64) {
        let _guard = self.lock();
        self.synced_lsn.store(lsn, Ordering::Release);
        self.durable.notify_all();
    }
}

/// The group-committed, segment-rotating write-ahead log. See the module
/// docs for the commit protocol; see [`crate::audit`](mod@crate::audit) for the offline
/// audit/repair surface over the same files.
pub struct Wal {
    inner: Arc<Inner>,
    flusher: Option<JoinHandle<()>>,
}

impl Wal {
    /// Open (or create) the log in `dir` with LSNs starting at 1. See
    /// [`open_at`](Self::open_at).
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> Result<(Self, WalRecovery), WalError> {
        Self::open_at(dir, opts, 1)
    }

    /// Open (or create) the log in `dir`, recovering whatever valid
    /// prefix is on disk. `start_lsn` seats the LSN clock when the log is
    /// empty (a [`DurableMap`](crate::DurableMap) restored from a
    /// checkpoint at LSN `c` passes `c + 1` so LSNs continue across the
    /// truncation).
    ///
    /// Recovery is torn-tail-tolerant: a frame cut short, checksum-failed,
    /// or otherwise unusable **in the last segment** is the normal residue
    /// of a crash and is truncated away here (a final segment without a
    /// whole header is deleted). Damage anywhere *earlier* in the chain —
    /// a torn frame with valid segments after it, or a missing segment
    /// ([`WalError::Gap`]) — is not something a crash can cause and is
    /// refused; run [`audit`](crate::audit::audit) /
    /// [`repair`](crate::audit::repair) to inspect and explicitly accept
    /// the loss.
    pub fn open_at(
        dir: impl AsRef<Path>,
        opts: WalOptions,
        start_lsn: u64,
    ) -> Result<(Self, WalRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(WalError::Io)?;
        let segs = crate::segment::list_segments(&dir)?;
        let mut recovery = WalRecovery::default();
        let mut chain: Vec<(u64, PathBuf)> = Vec::new();
        let mut next_expected: Option<u64> = None;
        let mut last_lsn: Option<u64> = None;
        for (i, (name_base, path)) in segs.iter().enumerate() {
            let is_last = i == segs.len() - 1;
            let scan = crate::segment::scan_segment(path)?;
            if scan.valid_len > 0 && scan.base_lsn != *name_base {
                return Err(WalError::Corrupt(format!(
                    "segment {path:?} is named for base {name_base} but its header says {}",
                    scan.base_lsn
                )));
            }
            if let Some(reason) = &scan.torn {
                if !is_last {
                    return Err(WalError::Corrupt(format!(
                        "segment {path:?} is damaged ({reason}) but later segments exist; \
                         run repair to truncate the chain there"
                    )));
                }
                // The crash-normal case: truncate the torn tail (or drop
                // a segment that never got a whole header).
                recovery.truncated_bytes += scan.file_len - scan.valid_len;
                if scan.valid_len == 0 {
                    std::fs::remove_file(path).map_err(WalError::Io)?;
                    recovery.removed_segments += 1;
                    continue;
                }
                let f = OpenOptions::new().write(true).open(path).map_err(WalError::Io)?;
                f.set_len(scan.valid_len).map_err(WalError::Io)?;
                f.sync_data().map_err(WalError::Io)?;
            }
            if let Some(expected) = next_expected {
                if scan.base_lsn != expected {
                    return Err(WalError::Gap { after: expected - 1, next: scan.base_lsn });
                }
            }
            if recovery.first_lsn.is_none() && scan.records > 0 {
                recovery.first_lsn = Some(scan.base_lsn);
            }
            next_expected = Some(scan.base_lsn + scan.records);
            if scan.records > 0 {
                last_lsn = scan.last_lsn;
            }
            recovery.records += scan.records;
            chain.push((scan.base_lsn, path.clone()));
        }
        recovery.segments = chain.len();
        recovery.last_lsn = last_lsn.unwrap_or(0);

        let next_lsn = next_expected.unwrap_or(0).max(start_lsn).max(1);
        let (current, current_len) = match chain.last() {
            Some((_, path)) => {
                let f = OpenOptions::new().append(true).open(path).map_err(WalError::Io)?;
                let len = f.metadata().map_err(WalError::Io)?.len();
                (Some(Arc::new(f)), len)
            }
            None => (None, 0),
        };
        let needs_rotation = current.is_some() && current_len >= opts.segment_bytes;
        let inner = Arc::new(Inner {
            dir,
            opts,
            state: Mutex::new(State {
                staged: Vec::new(),
                staged_first: 0,
                staged_count: 0,
                next_lsn,
                current,
                current_len,
                needs_rotation,
                segments: chain,
                failed: None,
                force_sync: false,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            written_lsn: AtomicU64::new(next_lsn - 1),
            synced_lsn: AtomicU64::new(next_lsn - 1),
            shutdown: AtomicBool::new(false),
            metrics: WalMetrics::new(),
        });
        let flusher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("lll-wal-flusher".into())
                .spawn(move || flusher_loop(&inner))
                .map_err(WalError::Io)?
        };
        Ok((Self { inner, flusher: Some(flusher) }, recovery))
    }

    /// Stage one record and wake the flusher; returns the record's LSN
    /// immediately. Under [`FsyncPolicy::Always`] the record is **not yet
    /// durable** — follow with [`wait_durable`](Self::wait_durable) (or
    /// use [`append_durable`](Self::append_durable)) before acking
    /// anything to a client. The split exists so a caller holding its own
    /// ordering lock (see `DurableMap`) can release it before blocking,
    /// which is what lets one fsync cover many committers.
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut st = self.inner.lock();
        if let Some(msg) = &st.failed {
            return Err(WalError::Closed(msg.clone()));
        }
        let lsn = st.next_lsn;
        encode_frame_into(&mut st.staged, lsn, payload)?;
        st.next_lsn += 1;
        if st.staged_count == 0 {
            st.staged_first = lsn;
        }
        st.staged_count += 1;
        self.inner.metrics.appends.inc();
        drop(st);
        self.inner.work.notify_one();
        Ok(lsn)
    }

    /// Block until `lsn` is fsync-durable — a no-op under
    /// [`FsyncPolicy::EveryMillis`] and [`FsyncPolicy::Never`], whose
    /// contract is bounded loss, not per-op durability.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), WalError> {
        if !matches!(self.inner.opts.fsync, FsyncPolicy::Always) {
            return Ok(());
        }
        self.block_until_synced(lsn)
    }

    /// [`append`](Self::append) + [`wait_durable`](Self::wait_durable).
    pub fn append_durable(&self, payload: &[u8]) -> Result<u64, WalError> {
        let lsn = self.append(payload)?;
        self.wait_durable(lsn)?;
        Ok(lsn)
    }

    /// Force everything appended so far onto stable storage, regardless
    /// of policy. Returns the LSN made durable.
    pub fn sync(&self) -> Result<u64, WalError> {
        let target = {
            let mut st = self.inner.lock();
            if let Some(msg) = &st.failed {
                return Err(WalError::Closed(msg.clone()));
            }
            st.force_sync = true;
            st.next_lsn - 1
        };
        self.inner.work.notify_one();
        self.block_until_synced(target)?;
        Ok(target)
    }

    fn block_until_synced(&self, lsn: u64) -> Result<(), WalError> {
        let mut st = self.inner.lock();
        loop {
            if self.inner.synced_lsn.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(WalError::Closed(msg.clone()));
            }
            st = self.inner.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The most recently assigned LSN (`start_lsn - 1` before the first
    /// append).
    pub fn last_lsn(&self) -> u64 {
        self.inner.lock().next_lsn - 1
    }

    /// The highest LSN known fsync-durable.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.synced_lsn.load(Ordering::Acquire)
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The log's shared instruments.
    pub fn metrics(&self) -> &WalMetrics {
        &self.inner.metrics
    }

    /// Replay every on-disk record with LSN > `after`, in LSN order.
    /// Intended for recovery, **before** concurrent appends begin — the
    /// scan reads the segment files directly.
    pub fn replay(
        &self,
        after: u64,
        mut f: impl FnMut(u64, Vec<u8>) -> Result<(), WalError>,
    ) -> Result<u64, WalError> {
        let segments = self.inner.lock().segments.clone();
        let last_on_disk = self.inner.written_lsn.load(Ordering::Acquire);
        let mut replayed = 0u64;
        for (i, (_, path)) in segments.iter().enumerate() {
            // Skip segments whose every record has LSN ≤ `after`: covered
            // by the next segment's base, or — for the active segment —
            // by the last written LSN.
            let covered = match segments.get(i + 1) {
                Some((next_base, _)) => *next_base <= after + 1,
                None => last_on_disk <= after,
            };
            if covered {
                continue;
            }
            crate::segment::scan_segment_with(path, |lsn, payload| {
                if lsn > after {
                    replayed += 1;
                    f(lsn, payload)
                } else {
                    Ok(())
                }
            })?;
        }
        Ok(replayed)
    }

    /// Delete every segment fully covered by a checkpoint at `lsn` (all
    /// its records have LSN ≤ `lsn` *and* a later segment exists — the
    /// active segment is never deleted). Returns segments removed.
    pub fn truncate_through(&self, lsn: u64) -> Result<u64, WalError> {
        let mut st = self.inner.lock();
        let mut removed = 0u64;
        while st.segments.len() >= 2 {
            let covered = match st.segments.get(1) {
                Some((next_base, _)) => *next_base <= lsn + 1,
                None => false,
            };
            if !covered {
                break;
            }
            let (_, path) = st.segments.remove(0);
            std::fs::remove_file(&path).map_err(WalError::Io)?;
            removed += 1;
        }
        self.inner.metrics.truncated_segments.add(removed);
        Ok(removed)
    }

    /// Total bytes currently occupied by the log: segment files plus the
    /// staged-but-unwritten tail.
    pub fn disk_bytes(&self) -> u64 {
        let st = self.inner.lock();
        st.segments
            .iter()
            .filter_map(|(_, p)| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum::<u64>()
            + st.staged.len() as u64
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.inner.dir)
            .field("last_lsn", &self.last_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .finish_non_exhaustive()
    }
}

impl Drop for Wal {
    /// Clean shutdown: drain everything staged, write it, fsync it
    /// (whatever the policy — a graceful exit should not lose the tail),
    /// and join the flusher.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

/// How long the flusher sleeps waiting for work before re-checking timed
/// syncs and shutdown.
const FLUSHER_TICK: Duration = Duration::from_millis(20);

fn flusher_loop(inner: &Inner) {
    let mut spare: Vec<u8> = Vec::new();
    let mut last_sync = Instant::now();
    let mut unsynced_records = 0u64;
    loop {
        let mut st = inner.lock();
        let timed_sync_due = |unsynced: u64, last: Instant| match inner.opts.fsync {
            FsyncPolicy::EveryMillis(ms) => {
                unsynced > 0 && last.elapsed() >= Duration::from_millis(ms)
            }
            _ => false,
        };
        if !inner.shutdown.load(Ordering::SeqCst)
            && st.staged_count == 0
            && !st.force_sync
            && !timed_sync_due(unsynced_records, last_sync)
        {
            // Idle: sleep until woken or the next timed-sync deadline.
            let tick = match inner.opts.fsync {
                FsyncPolicy::EveryMillis(ms) if unsynced_records > 0 => {
                    Duration::from_millis(ms).saturating_sub(last_sync.elapsed())
                }
                _ => FLUSHER_TICK,
            };
            let (guard, _) = inner
                .work
                .wait_timeout(st, tick.clamp(Duration::from_millis(1), FLUSHER_TICK.max(tick)))
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        let final_pass = inner.shutdown.load(Ordering::SeqCst);
        if st.failed.is_some() {
            if final_pass {
                return;
            }
            drop(st);
            std::thread::sleep(FLUSHER_TICK);
            continue;
        }

        // Swap the staged buffer out and write it outside the lock, in
        // segment-bounded chunks cut at frame boundaries: records never
        // straddle files, and one huge batch (fast writers, lazy
        // policies) cannot blow a segment past the rotation threshold by
        // more than a single record.
        let batch = std::mem::replace(&mut st.staged, std::mem::take(&mut spare));
        let batch_records = st.staged_count;
        let batch_first = st.staged_first;
        st.staged_count = 0;
        let force = std::mem::take(&mut st.force_sync);
        drop(st);

        let mut wrote = false;
        let mut io_failed = false;
        let mut off = 0usize;
        let mut consumed = 0u64;
        while consumed < batch_records {
            // Open or rotate under the lock; each chunk's base LSN is the
            // first record it carries. Sealing the previous segment
            // fsyncs it, so a later sync of `current` alone suffices.
            let (file, room) = {
                let mut st = inner.lock();
                if st.current.is_none() || st.needs_rotation {
                    let base = batch_first + consumed;
                    let sealed = st.current.take();
                    if let Err(e) = open_segment(inner, &mut st, base, sealed) {
                        inner.fail(&mut st, "segment rotation", &e);
                        io_failed = true;
                        break;
                    }
                }
                // `current` is Some here: just opened or still live.
                (st.current.clone(), inner.opts.segment_bytes.saturating_sub(st.current_len))
            };
            let Some(file) = file else { break };
            let (end, chunk_records) = chunk_end(&batch, off, room);
            let chunk = &batch[off..end];
            let mut writer: &File = &file;
            if let Err(e) = writer.write_all(chunk) {
                let mut st = inner.lock();
                inner.fail(&mut st, "segment write", &e);
                io_failed = true;
                break;
            }
            wrote = true;
            consumed += chunk_records;
            unsynced_records += chunk_records;
            inner.written_lsn.store(batch_first + consumed - 1, Ordering::Release);
            off = end;
            let mut st = inner.lock();
            st.current_len += chunk.len() as u64;
            if st.current_len >= inner.opts.segment_bytes {
                st.needs_rotation = true;
            }
        }
        if io_failed {
            continue;
        }
        let file = inner.lock().current.clone();

        let written = inner.written_lsn.load(Ordering::Acquire);
        let want_sync = force
            || final_pass
            || match inner.opts.fsync {
                FsyncPolicy::Always => wrote,
                _ => timed_sync_due(unsynced_records, last_sync),
            };
        if want_sync && inner.synced_lsn.load(Ordering::Acquire) < written {
            if let Some(f) = &file {
                let t = Instant::now();
                if let Err(e) = f.sync_data() {
                    let mut st = inner.lock();
                    inner.fail(&mut st, "fsync", &e);
                    continue;
                }
                inner.metrics.fsync_latency_ns.record(t.elapsed().as_nanos() as u64);
                inner.metrics.fsyncs.inc();
                if unsynced_records > 0 {
                    inner.metrics.group_size.record(unsynced_records);
                }
                unsynced_records = 0;
                last_sync = Instant::now();
            }
            inner.publish_synced(written);
        } else if want_sync {
            // A sync was requested but nothing is behind: publish so
            // waiters re-check and return.
            inner.publish_synced(written);
        }

        // Shutdown check and buffer reuse (segment growth and rotation
        // were accounted per chunk above).
        {
            let st = inner.lock();
            if final_pass && st.staged_count == 0 {
                // Shutdown with nothing staged since the swap: done.
                inner.durable.notify_all();
                return;
            }
        }
        spare = batch;
        spare.clear();
    }
}

/// Cut point for the next write chunk: as many whole frames as fit in
/// `room` bytes — but always at least one, so a record larger than a
/// segment still lands (that segment just overshoots, as the
/// [`WalOptions::segment_bytes`] docs allow). Frames were encoded by
/// [`Wal::append`], so the length prefixes are trusted here.
fn chunk_end(batch: &[u8], off: usize, room: u64) -> (usize, u64) {
    let mut end = off;
    let mut records = 0u64;
    while end < batch.len() {
        let body = u32::from_le_bytes([batch[end], batch[end + 1], batch[end + 2], batch[end + 3]]);
        let frame = 8 + body as usize;
        if records > 0 && (end - off + frame) as u64 > room {
            break;
        }
        end += frame;
        records += 1;
    }
    (end, records)
}

/// Seal `sealed` (fsync its final contents) and create the next segment
/// with `base` as its base LSN. Called with the state lock held; the
/// file operations are cheap relative to rotation frequency.
fn open_segment(
    inner: &Inner,
    st: &mut State,
    base: u64,
    sealed: Option<Arc<File>>,
) -> std::io::Result<()> {
    if let Some(old) = sealed {
        old.sync_data()?;
        inner.metrics.rotations.inc();
    }
    let path = inner.dir.join(segment_file_name(base));
    let mut f = OpenOptions::new().create_new(true).append(true).open(&path)?;
    f.write_all(&header_bytes(base))?;
    st.segments.push((base, path));
    st.current = Some(Arc::new(f));
    st.current_len = SEGMENT_HEADER_LEN;
    st.needs_rotation = false;
    Ok(())
}
