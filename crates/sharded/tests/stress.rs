//! Concurrency coverage for `ShardedMap`.
//!
//! * `stress_*`: an N-writer differential stress test per backend — four
//!   writer threads churn disjoint key stripes while tracking a private
//!   `BTreeMap` model each; every return value is compared op-by-op (the
//!   stripes are disjoint, so each thread's view of its own keys is
//!   sequentially consistent even under concurrent foreign writes), and the
//!   final map must equal the union of the models. The policy band is tight
//!   enough that the run exercises both splits and merges.
//! * `scans_stay_sorted_under_concurrent_writers`: readers stitch range
//!   scans while writers churn; every stitched scan must be sorted and
//!   duplicate-free even though it is not an atomic snapshot.
//! * `range_stitching_matches_reference`: a single-threaded property test —
//!   cross-shard `range`/`to_vec` stitching equals a `BTreeMap` reference
//!   under churn that forces splits and merges.

use lll_api::Backend;
use lll_sharded::ShardedBuilder;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

const THREADS: u64 = 4;

/// Dumps the map's structural-event trace if the surrounding test panics —
/// the split/merge history is exactly the context a shard-count or
/// divergence failure needs.
struct TraceDump(std::sync::Arc<lll_obs::TraceRing>);

impl Drop for TraceDump {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        eprintln!("--- structural trace ({} events recorded) ---", self.0.recorded());
        for e in self.0.snapshot() {
            eprintln!("  #{} {} a={} b={} c={}", e.seq, e.kind.name(), e.a, e.b, e.c);
        }
    }
}

fn differential_stress(backend: Backend) {
    let ops_per_thread: u64 = match backend {
        // The layered compositions carry real constant factors in debug
        // builds; fewer ops still cross the split and merge thresholds.
        Backend::Corollary11 | Backend::Corollary12 => 1200,
        _ => 2500,
    };
    let keyspace: u64 = ops_per_thread / 6;
    let map = Arc::new(
        ShardedBuilder::new()
            .backend(backend)
            .seed(0xFEED)
            .max_shard_len(64)
            .min_shard_len(16)
            .build::<u64, u64>(),
    );
    let _trace_guard = TraceDump(map.trace());
    let parts: Vec<BTreeMap<u64, u64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut model = BTreeMap::new();
                    let mut rng = StdRng::seed_from_u64(tid * 977 + 1);
                    for i in 0..ops_per_thread {
                        // Striped keys: thread `tid` owns k ≡ tid (mod THREADS).
                        let k = rng.gen_range(0..keyspace) * THREADS + tid;
                        let draining = i > ops_per_thread * 3 / 4;
                        if !draining && rng.gen_bool(0.65) {
                            assert_eq!(
                                map.insert(k, i),
                                model.insert(k, i),
                                "insert({k}) diverged on {}",
                                backend.name()
                            );
                        } else {
                            assert_eq!(
                                map.remove(&k),
                                model.remove(&k),
                                "remove({k}) diverged on {}",
                                backend.name()
                            );
                        }
                        if i % 32 == 0 {
                            assert_eq!(map.get(&k), model.get(&k).copied());
                            assert_eq!(map.contains_key(&k), model.contains_key(&k));
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer thread panicked")).collect()
    });
    map.check_invariants();
    let mut expected = BTreeMap::new();
    for part in parts {
        expected.extend(part);
    }
    assert_eq!(map.len(), expected.len(), "{} length diverged", backend.name());
    assert_eq!(
        map.to_vec(),
        expected.into_iter().collect::<Vec<_>>(),
        "{} contents diverged",
        backend.name()
    );
    let stats = map.stats();
    assert!(stats.splits > 0, "{} run never split a shard", backend.name());
    assert!(stats.merges > 0, "{} run never merged a shard", backend.name());
    // Maintenance keeps shards inside the policy band, so the skew between
    // the fullest and emptiest shard is bounded: no shard may exceed the
    // split threshold (feasible here — the run stays far below max_shards)
    // and, with more than one shard, none may sit below a merge-proof
    // remainder. The mean sits between the extremes by construction.
    assert!(
        stats.max_shard_len() <= 64,
        "{}: shard of {} exceeds the split threshold",
        backend.name(),
        stats.max_shard_len()
    );
    if stats.shards > 1 {
        assert!(
            stats.min_shard_len() >= 1,
            "{}: maintenance left an empty shard standing",
            backend.name()
        );
    }
    assert!(stats.min_shard_len() as f64 <= stats.mean_shard_len());
    assert!(stats.mean_shard_len() <= stats.max_shard_len() as f64);
    // Every striped writer touched every shard's key range: per-shard
    // write counts must account for all 4 × ops_per_thread mutations.
    assert_eq!(
        stats.shard_writes.iter().sum::<u64>(),
        THREADS * ops_per_thread,
        "{}: write counts lost under concurrency",
        backend.name()
    );
}

#[test]
fn stress_classic() {
    differential_stress(Backend::Classic);
}

#[test]
fn stress_deamortized() {
    differential_stress(Backend::Deamortized);
}

#[test]
fn stress_randomized() {
    differential_stress(Backend::Randomized);
}

#[test]
fn stress_adaptive() {
    differential_stress(Backend::Adaptive);
}

#[test]
fn stress_corollary11() {
    differential_stress(Backend::Corollary11);
}

#[test]
fn stress_corollary12() {
    differential_stress(Backend::Corollary12);
}

#[test]
fn scans_stay_sorted_under_concurrent_writers() {
    let map = Arc::new(
        ShardedBuilder::new().seed(9).max_shard_len(48).min_shard_len(12).build::<u64, u64>(),
    );
    thread::scope(|s| {
        for tid in 0..2u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid + 50);
                for i in 0..3000u64 {
                    let k = rng.gen_range(0..800u64) * 2 + tid;
                    if rng.gen_bool(0.6) {
                        map.insert(k, i);
                    } else {
                        map.remove(&k);
                    }
                }
            });
        }
        for tid in 0..2u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid + 90);
                for _ in 0..300 {
                    let a = rng.gen_range(0..1600u64);
                    let b = rng.gen_range(0..1600u64);
                    let (lo, hi) = (a.min(b), a.max(b));
                    let scan = map.range(lo..=hi);
                    assert!(
                        scan.windows(2).all(|w| w[0].0 < w[1].0),
                        "stitched scan unsorted or duplicated"
                    );
                    assert!(scan.iter().all(|&(k, _)| (lo..=hi).contains(&k)));
                    map.for_each(|_, _| {});
                }
            });
        }
    });
    map.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn range_stitching_matches_reference(
        ops in vec((0u32..600, 0u32..4), 500),
        queries in vec((0u32..650, 0u32..650), 24),
    ) {
        let map = ShardedBuilder::new()
            .seed(3)
            .backend(Backend::Classic)
            .max_shard_len(24)
            .min_shard_len(6)
            .build::<u32, u32>();
        let mut model = BTreeMap::new();
        // Random churn, then a drain wave: together they force shard
        // splits and merges around the stitched queries below.
        for (i, &(k, action)) in ops.iter().enumerate() {
            if action == 0 {
                prop_assert_eq!(map.remove(&k), model.remove(&k));
            } else {
                prop_assert_eq!(map.insert(k, i as u32), model.insert(k, i as u32));
            }
        }
        for &(k, _) in ops.iter().skip(ops.len() / 2) {
            prop_assert_eq!(map.remove(&k), model.remove(&k));
        }
        map.check_invariants();
        prop_assert_eq!(
            map.to_vec(),
            model.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
        for &(a, b) in &queries {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert_eq!(
                map.range(lo..hi),
                model.range(lo..hi).map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                map.range((std::ops::Bound::Excluded(lo), std::ops::Bound::Included(hi))),
                model
                    .range((std::ops::Bound::Excluded(lo), std::ops::Bound::Included(hi)))
                    .map(|(k, v)| (*k, *v))
                    .collect::<Vec<_>>()
            );
        }
    }
}
