//! Concurrency coverage for `ShardedMap`.
//!
//! * `stress_*`: an N-writer differential stress test per backend — four
//!   writer threads churn disjoint key stripes while tracking a private
//!   `BTreeMap` model each; every return value is compared op-by-op (the
//!   stripes are disjoint, so each thread's view of its own keys is
//!   sequentially consistent even under concurrent foreign writes), and the
//!   final map must equal the union of the models. The policy band is tight
//!   enough that the run exercises both splits and merges.
//! * `scans_stay_sorted_under_concurrent_writers`: readers stitch range
//!   scans while writers churn; every stitched scan must be sorted and
//!   duplicate-free even though it is not an atomic snapshot.
//! * `readers_stay_lock_free_under_churning_writer`: the optimistic read
//!   path's acceptance test — reader threads validate stable keys
//!   exactly and churned keys for torn values while one writer forces
//!   splits, merges, and directory growth; afterwards the optimistic hit
//!   ratio must clear 90% and no reader may have touched the maintenance
//!   lock (checked through the always-on per-thread acquisition counter).
//! * `range_stitching_matches_reference`: a single-threaded property test —
//!   cross-shard `range`/`to_vec` stitching equals a `BTreeMap` reference
//!   under churn that forces splits and merges.

use lll_api::Backend;
use lll_sharded::ShardedBuilder;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

const THREADS: u64 = 4;

/// Dumps the map's structural-event trace if the surrounding test panics —
/// the split/merge history is exactly the context a shard-count or
/// divergence failure needs.
struct TraceDump(std::sync::Arc<lll_obs::TraceRing>);

impl Drop for TraceDump {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        eprintln!("--- structural trace ({} events recorded) ---", self.0.recorded());
        for e in self.0.snapshot() {
            eprintln!("  #{} {} a={} b={} c={}", e.seq, e.kind.name(), e.a, e.b, e.c);
        }
    }
}

fn differential_stress(backend: Backend) {
    let ops_per_thread: u64 = match backend {
        // The layered compositions carry real constant factors in debug
        // builds; fewer ops still cross the split and merge thresholds.
        Backend::Corollary11 | Backend::Corollary12 => 1200,
        _ => 2500,
    };
    let keyspace: u64 = ops_per_thread / 6;
    let map = Arc::new(
        ShardedBuilder::new()
            .backend(backend)
            .seed(0xFEED)
            .max_shard_len(64)
            .min_shard_len(16)
            .build::<u64, u64>(),
    );
    let _trace_guard = TraceDump(map.trace());
    let parts: Vec<BTreeMap<u64, u64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut model = BTreeMap::new();
                    let mut rng = StdRng::seed_from_u64(tid * 977 + 1);
                    for i in 0..ops_per_thread {
                        // Striped keys: thread `tid` owns k ≡ tid (mod THREADS).
                        let k = rng.gen_range(0..keyspace) * THREADS + tid;
                        let draining = i > ops_per_thread * 3 / 4;
                        if !draining && rng.gen_bool(0.65) {
                            assert_eq!(
                                map.insert(k, i),
                                model.insert(k, i),
                                "insert({k}) diverged on {}",
                                backend.name()
                            );
                        } else {
                            assert_eq!(
                                map.remove(&k),
                                model.remove(&k),
                                "remove({k}) diverged on {}",
                                backend.name()
                            );
                        }
                        if i % 32 == 0 {
                            assert_eq!(map.get(&k), model.get(&k).copied());
                            assert_eq!(map.contains_key(&k), model.contains_key(&k));
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer thread panicked")).collect()
    });
    map.check_invariants();
    let mut expected = BTreeMap::new();
    for part in parts {
        expected.extend(part);
    }
    assert_eq!(map.len(), expected.len(), "{} length diverged", backend.name());
    assert_eq!(
        map.to_vec(),
        expected.into_iter().collect::<Vec<_>>(),
        "{} contents diverged",
        backend.name()
    );
    let stats = map.stats();
    assert!(stats.splits > 0, "{} run never split a shard", backend.name());
    assert!(stats.merges > 0, "{} run never merged a shard", backend.name());
    // Maintenance keeps shards inside the policy band, so the skew between
    // the fullest and emptiest shard is bounded: no shard may exceed the
    // split threshold (feasible here — the run stays far below max_shards)
    // and, with more than one shard, none may sit below a merge-proof
    // remainder. The mean sits between the extremes by construction.
    assert!(
        stats.max_shard_len() <= 64,
        "{}: shard of {} exceeds the split threshold",
        backend.name(),
        stats.max_shard_len()
    );
    if stats.shards > 1 {
        assert!(
            stats.min_shard_len() >= 1,
            "{}: maintenance left an empty shard standing",
            backend.name()
        );
    }
    assert!(stats.min_shard_len() as f64 <= stats.mean_shard_len());
    assert!(stats.mean_shard_len() <= stats.max_shard_len() as f64);
    // Every striped writer touched every shard's key range: per-shard
    // write counts must account for all 4 × ops_per_thread mutations.
    assert_eq!(
        stats.shard_writes.iter().sum::<u64>(),
        THREADS * ops_per_thread,
        "{}: write counts lost under concurrency",
        backend.name()
    );
}

#[test]
fn stress_classic() {
    differential_stress(Backend::Classic);
}

#[test]
fn stress_deamortized() {
    differential_stress(Backend::Deamortized);
}

#[test]
fn stress_randomized() {
    differential_stress(Backend::Randomized);
}

#[test]
fn stress_adaptive() {
    differential_stress(Backend::Adaptive);
}

#[test]
fn stress_corollary11() {
    differential_stress(Backend::Corollary11);
}

#[test]
fn stress_corollary12() {
    differential_stress(Backend::Corollary12);
}

/// Value a stable key carries for its whole life: a fixed transform of
/// the key, so any torn read (a value from a different key, a partial
/// word, stale garbage) is detectable by recomputation.
fn stable_value(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_A5A5_A5A5_A5A5
}

/// Every value a churned key may legally carry (the writer always writes
/// `churn_value(k)`), so a concurrent read must see exactly this or
/// absence — anything else is a torn read.
fn churn_value(k: u64) -> u64 {
    k.rotate_left(17) ^ 0x5A5A_5A5A_5A5A_5A5A
}

/// The optimistic-read-path acceptance test. Keyspace split: even keys
/// are *stable* (inserted once, never touched again — readers assert
/// their exact values), odd keys are *churned* by a single writer whose
/// insert/remove waves force shard splits, merges, and directory growth
/// under the readers' feet. Readers run pure point reads and assert:
///
/// * stable keys always present with the exact expected value,
/// * churned keys either absent or carrying exactly `churn_value(k)` —
///   the torn-read detector,
/// * the reader thread never acquired the maintenance (directory) lock:
///   [`maintenance_acquisitions`] is per-thread and always-on, so a
///   zero delta proves the hot read path stayed off the directory lock
///   even while the writer was growing the directory,
///
/// and the run as a whole must answer > 90% of reads on the optimistic
/// path (hits / (hits + fallbacks)) — the perf claim, enforced.
///
/// Debug builds scale the op counts down (the layered write path carries
/// real debug-mode constants); release runs the full volume.
#[test]
fn readers_stay_lock_free_under_churning_writer() {
    let readers: u64 = 4;
    let (reads_per_thread, writer_waves): (u64, u64) =
        if cfg!(debug_assertions) { (30_000, 6) } else { (150_000, 20) };
    let stable_keys: u64 = 600;
    // Churned odd keys reach ~3x past the stable range, so a drain wave
    // empties the high shards outright and forces merges, not just len
    // shrinkage inside the policy band.
    let churn_keys: u64 = 1800;
    let map = Arc::new(
        ShardedBuilder::new()
            .backend(Backend::Corollary11)
            .seed(0xC0FFEE)
            .max_shard_len(96)
            .min_shard_len(24)
            .build::<u64, u64>(),
    );
    let _trace_guard = TraceDump(map.trace());
    for k in (0..stable_keys * 2).step_by(2) {
        map.insert(k, stable_value(k));
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    thread::scope(|s| {
        let writer = {
            let map = Arc::clone(&map);
            let stop = &stop;
            s.spawn(move || {
                // Insert waves double the live set (splits + directory
                // growth); drain waves pull it back through the merge
                // threshold. Loop until every reader is done so churn
                // covers the whole read phase.
                let mut wave = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || wave < writer_waves {
                    for k in 0..churn_keys {
                        map.insert(k * 2 + 1, churn_value(k * 2 + 1));
                    }
                    for k in 0..churn_keys {
                        map.remove(&(k * 2 + 1));
                    }
                    wave += 1;
                }
            })
        };
        let handles: Vec<_> = (0..readers)
            .map(|tid| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let maint_before = lll_sharded::maintenance_acquisitions();
                    let mut rng = StdRng::seed_from_u64(tid + 7000);
                    let mut stable_hits = 0u64;
                    for _ in 0..reads_per_thread {
                        if rng.gen_bool(0.5) {
                            let k = rng.gen_range(0..stable_keys) * 2;
                            assert_eq!(
                                map.get(&k),
                                Some(stable_value(k)),
                                "stable key {k} torn or lost under churn"
                            );
                            stable_hits += 1;
                        } else {
                            let k = rng.gen_range(0..churn_keys) * 2 + 1;
                            if let Some(v) = map.get(&k) {
                                assert_eq!(
                                    v,
                                    churn_value(k),
                                    "churned key {k} returned torn value"
                                );
                            }
                            // contains_key must agree with get's modality
                            // class (absent or present are both legal
                            // mid-churn; a panic or torn value is not).
                            let _ = map.contains_key(&k);
                        }
                    }
                    assert_eq!(
                        lll_sharded::maintenance_acquisitions(),
                        maint_before,
                        "reader thread {tid} acquired the maintenance lock on the read path"
                    );
                    stable_hits
                })
            })
            .collect();
        let total_stable: u64 =
            handles.into_iter().map(|h| h.join().expect("reader thread panicked")).sum();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().expect("writer thread panicked");
        assert!(total_stable > 0);
    });
    map.check_invariants();
    let stats = map.stats();
    assert!(stats.splits > 0, "writer churn never split a shard");
    assert!(stats.merges > 0, "writer churn never merged a shard");
    let attempts = stats.read_optimistic_hits + stats.read_lock_fallbacks;
    let hit_ratio = stats.read_optimistic_hits as f64 / attempts.max(1) as f64;
    assert!(
        hit_ratio > 0.9,
        "optimistic path answered only {:.1}% of reads ({} hits, {} fallbacks, {} retries)",
        hit_ratio * 100.0,
        stats.read_optimistic_hits,
        stats.read_lock_fallbacks,
        stats.read_retries
    );
}

#[test]
fn scans_stay_sorted_under_concurrent_writers() {
    let map = Arc::new(
        ShardedBuilder::new().seed(9).max_shard_len(48).min_shard_len(12).build::<u64, u64>(),
    );
    thread::scope(|s| {
        for tid in 0..2u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid + 50);
                for i in 0..3000u64 {
                    let k = rng.gen_range(0..800u64) * 2 + tid;
                    if rng.gen_bool(0.6) {
                        map.insert(k, i);
                    } else {
                        map.remove(&k);
                    }
                }
            });
        }
        for tid in 0..2u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid + 90);
                for _ in 0..300 {
                    let a = rng.gen_range(0..1600u64);
                    let b = rng.gen_range(0..1600u64);
                    let (lo, hi) = (a.min(b), a.max(b));
                    let scan = map.range(lo..=hi);
                    assert!(
                        scan.windows(2).all(|w| w[0].0 < w[1].0),
                        "stitched scan unsorted or duplicated"
                    );
                    assert!(scan.iter().all(|&(k, _)| (lo..=hi).contains(&k)));
                    map.for_each(|_, _| {});
                }
            });
        }
    });
    map.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn range_stitching_matches_reference(
        ops in vec((0u32..600, 0u32..4), 500),
        queries in vec((0u32..650, 0u32..650), 24),
    ) {
        let map = ShardedBuilder::new()
            .seed(3)
            .backend(Backend::Classic)
            .max_shard_len(24)
            .min_shard_len(6)
            .build::<u32, u32>();
        let mut model = BTreeMap::new();
        // Random churn, then a drain wave: together they force shard
        // splits and merges around the stitched queries below.
        for (i, &(k, action)) in ops.iter().enumerate() {
            if action == 0 {
                prop_assert_eq!(map.remove(&k), model.remove(&k));
            } else {
                prop_assert_eq!(map.insert(k, i as u32), model.insert(k, i as u32));
            }
        }
        for &(k, _) in ops.iter().skip(ops.len() / 2) {
            prop_assert_eq!(map.remove(&k), model.remove(&k));
        }
        map.check_invariants();
        prop_assert_eq!(
            map.to_vec(),
            model.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
        for &(a, b) in &queries {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert_eq!(
                map.range(lo..hi),
                model.range(lo..hi).map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                map.range((std::ops::Bound::Excluded(lo), std::ops::Bound::Included(hi))),
                model
                    .range((std::ops::Bound::Excluded(lo), std::ops::Bound::Included(hi)))
                    .map(|(k, v)| (*k, *v))
                    .collect::<Vec<_>>()
            );
        }
    }
}
