//! The crate's **only** `unsafe` module: an RCU cell publishing the shard
//! directory.
//!
//! [`RcuCell<T>`] holds an `Arc<T>` behind an `AtomicPtr` and hands out
//! borrow-counted read guards without ever taking a lock:
//!
//! * **Readers** ([`load`](RcuCell::load)) bump one of [`SLOTS`] striped,
//!   cache-line-padded borrow counters (each thread hashes to a fixed
//!   slot), then load the pointer. The guard derefs to `&T` and decrements
//!   its slot on drop. Two atomic ops per load, no lock, no allocation —
//!   this is the hot half of the optimistic read path.
//! * **Writers** ([`replace`](RcuCell::replace)) swap the pointer to a new
//!   `Arc<T>`, then wait out the *grace period*: each slot must be
//!   observed at zero at least once after the swap. Both the reader's
//!   increment→pointer-load and the writer's swap→counter-read are
//!   `SeqCst`, so they form the classic Dekker store-buffering pair: a
//!   borrow that could still dereference the old value is always visible
//!   to the writer's wait loop, and a borrow that starts after the wait
//!   loop passes its slot can only see the new pointer. Once every slot
//!   has been seen at zero the old `Arc` strong count is released.
//!
//! The cell never blocks readers; writers pay the grace wait, which is
//! bounded because every guard in the crate is scoped to a single map
//! operation. The locking protocol serializes `replace` calls under the
//! maintenance mutex (see `lock_order`), though the cell itself is also
//! safe under concurrent `replace` (each swap hands its caller a distinct
//! old pointer to retire).
//!
//! Everything `unsafe` in the crate lives in this file, each block behind
//! a `// SAFETY:` argument; `lll-check`'s `unsafe-discipline` rule
//! whitelists exactly this path.
#![allow(unsafe_code)]

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Striped borrow-counter slots. More slots mean less reader-reader
/// contention on the counters; the grace wait scans all of them either
/// way.
const SLOTS: usize = 8;

/// One cache-line-padded borrow counter, so readers hashed to different
/// slots never false-share.
#[repr(align(128))]
#[derive(Default)]
struct Slot(AtomicUsize);

/// Which slot this thread's borrows count against: threads are dealt
/// round-robin across the stripe at first use.
fn reader_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SLOTS;
    }
    SLOT.with(|s| *s)
}

/// An atomically published `Arc<T>` with lock-free borrowing: readers
/// [`load`](Self::load) a guard, writers [`replace`](Self::replace) the
/// value and reclaim the old one after a grace period. See the module
/// docs for the protocol.
pub(crate) struct RcuCell<T> {
    /// Always a pointer produced by `Arc::into_raw`, owning one strong
    /// count on behalf of the cell.
    ptr: AtomicPtr<T>,
    slots: [Slot; SLOTS],
}

impl<T> RcuCell<T> {
    /// A cell initially publishing `value`.
    pub(crate) fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            slots: std::array::from_fn(|_| Slot::default()),
        }
    }

    /// Borrow the currently published value. Lock-free and allocation-free:
    /// one counter increment, one pointer load.
    // lll-check: no-alloc
    pub(crate) fn load(&self) -> RcuGuard<'_, T> {
        let slot = &self.slots[reader_slot()].0;
        // The increment must be visible to a replacer's grace wait *before*
        // the pointer is read — SeqCst on both sides makes this the
        // store-buffering pair the module docs argue through.
        slot.fetch_add(1, Ordering::SeqCst);
        let ptr = self.ptr.load(Ordering::SeqCst);
        RcuGuard { slot, ptr }
    }

    /// Clone out the currently published `Arc` — for holders that need the
    /// value beyond a guard's scope (maintenance walks, snapshots).
    pub(crate) fn snapshot(&self) -> Arc<T> {
        let guard = self.load();
        // SAFETY: `guard` pins `guard.ptr`'s grace period, so the cell's
        // strong count on it is still live; the pointer came from
        // `Arc::into_raw` (cell invariant). The increment balances the
        // count `from_raw` takes ownership of, leaving the cell's own
        // count intact after the guard drops.
        unsafe {
            Arc::increment_strong_count(guard.ptr);
            Arc::from_raw(guard.ptr)
        }
    }

    /// Publish `new` and retire the previously published value after its
    /// grace period. Callers serialize publication (here: the maintenance
    /// mutex); the wait below is bounded because guards are op-scoped.
    pub(crate) fn replace(&self, new: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(new).cast_mut(), Ordering::SeqCst);
        for slot in &self.slots {
            let mut spins = 0u32;
            // Observing zero once suffices: any borrow counted before the
            // swap has been dropped, and any later borrow re-incrementing
            // this slot already loaded the new pointer (SeqCst total
            // order), so it cannot reference `old`.
            while slot.0.load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` (cell invariant) and the
        // grace wait above proved no guard can still dereference it; this
        // releases the strong count the cell held for it.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no guard borrows the cell (guards
        // carry the cell's lifetime), so the published pointer — always
        // from `Arc::into_raw` — is exclusively ours to release.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

// SAFETY: the cell owns its `Arc<T>` (moved in, released on drop) and
// shares only `&T` through guards, so sending or sharing the cell is
// exactly sending/sharing `Arc<T>`: sound when `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: see the `Send` argument; all interior mutation is atomic.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

/// A borrow of an [`RcuCell`]'s published value. Holding one pins the
/// value's grace period; drop it before any structural wait (the
/// protocol's tracker enforces this in debug builds).
pub(crate) struct RcuGuard<'a, T> {
    slot: &'a AtomicUsize,
    ptr: *const T,
}

impl<T> Deref for RcuGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the slot increment in `load` happened before the pointer
        // read (SeqCst), so any replacer's grace wait cannot have released
        // `ptr` while this guard is live (it observes the slot nonzero
        // until our drop decrements it).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for RcuGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_sees_latest_published_value() {
        let cell = RcuCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.replace(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // A snapshot taken before a replace keeps its value (a *guard*
        // held across a same-thread replace would deadlock the grace
        // wait — which is why the lock_order wrappers forbid it).
        let pinned = cell.snapshot();
        cell.replace(Arc::new(3));
        assert_eq!(*pinned, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn snapshot_outlives_replacement() {
        let cell = RcuCell::new(Arc::new(vec![1, 2, 3]));
        let snap = cell.snapshot();
        cell.replace(Arc::new(vec![9]));
        assert_eq!(*snap, vec![1, 2, 3], "snapshot pins the old value");
        assert_eq!(*cell.snapshot(), vec![9]);
        drop(cell);
        assert_eq!(*snap, vec![1, 2, 3], "snapshot outlives the cell itself");
    }

    #[test]
    fn concurrent_loads_never_tear_across_replaces() {
        // Invariant: the published pair is always (a, a + 1). A reader
        // observing a torn or freed value would fail the equation (or
        // crash under a sanitizer / strict allocator).
        let cell = Arc::new(RcuCell::new(Arc::new((0u64, 1u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = cell.load();
                        assert_eq!(g.1, g.0 + 1, "torn RCU read");
                    }
                });
            }
            for a in 1..2000u64 {
                cell.replace(Arc::new((a, a + 1)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let last = cell.load();
        assert_eq!(*last, (1999, 2000));
    }
}
