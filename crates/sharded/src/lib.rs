//! # lll-sharded — a concurrent sharded map over per-shard rebalance domains
//!
//! [`LabelMap`](lll_api::LabelMap) is single-writer: every insert may
//! rebalance the one slot array all keys share. The layered structures keep
//! that rebalance cost low *per structure*, so the natural way to scale
//! writers is to partition the key space into **independent rebalance
//! domains**: [`ShardedMap`] splits the keys across many `LabelMap` shards
//! (each its own `Growable` doubling domain), with an RCU-published
//! directory of split keys deciding which shard owns which key.
//!
//! * **Reads are lock-free against the directory and optimistic against
//!   shards**: `get` / `contains_key` / `range` pin the current directory
//!   snapshot with two atomic ops (no lock, no allocation), then validate
//!   the owning shard's epoch and `try_read` it — falling back to a
//!   blocking shard lock only after a bounded retry budget. A writer on
//!   one shard never stalls readers of any other shard, and steady-state
//!   readers of *its* shard retry briefly instead of queueing.
//! * **Point writes** (`insert` / `get_mut_with` / `remove`) take exactly
//!   **one** shard lock — writers on different shards never contend — and
//!   stamp the shard's epoch (odd = write in progress) around the
//!   critical section.
//! * **Splits and merges** run under the maintenance mutex: they
//!   restructure into *fresh* shards, publish a successor directory via
//!   RCU, and retire the replaced shards (epoch = `u64::MAX`), bouncing
//!   in-flight readers of the old snapshot to a reload. Both are bulk
//!   moves over the `splice` path added in PR 2, so re-sharding costs
//!   O(shard), not O(n · polylog n).
//! * **Snapshots** ([`ShardedMap::write_snapshot`] /
//!   [`ShardedMap::read_snapshot`]) persist the split-key directory and
//!   each shard's sorted run under the maintenance mutex with every shard
//!   read-locked at once — an atomic picture that blocks writers but not
//!   readers — and restore pre-sharded via O(shard) bulk sweeps. See
//!   `docs/persistence.md`.
//!
//! ```
//! use lll_sharded::ShardedBuilder;
//! use std::sync::Arc;
//! use std::thread;
//!
//! let map = Arc::new(ShardedBuilder::new().max_shard_len(256).build::<u64, u64>());
//! thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let map = Arc::clone(&map);
//!         s.spawn(move || {
//!             for i in 0..500u64 {
//!                 map.insert(i * 4 + t, i); // disjoint stripes, 4 writers
//!             }
//!         });
//!     }
//! });
//! assert_eq!(map.len(), 2000);
//! assert!(map.stats().shards > 1, "growth should have split the key space");
//! assert!(map.stats().read_optimistic_hits > 0, "len() rode the optimistic path");
//! ```
//!
//! Lock order is strict — maintenance mutex before shard locks, at most
//! one shard lock outside maintenance — and directory publication happens
//! only under the maintenance mutex with no shard lock held. The
//! `lock_order` module enforces the order at runtime in debug builds;
//! lll-check's `lock-order` rule enforces it statically. See
//! `docs/sharding.md` in the repository root for the full runbook (policy
//! knobs, concurrency model, split/merge invariants).
//!
//! The only `unsafe` in the crate is the RCU cell in `rcu.rs` (whitelisted
//! by lll-check's `unsafe-discipline` rule, every block carrying a
//! `// SAFETY:` argument); everything else is `#![deny(unsafe_code)]`.

#![deny(unsafe_code)]

mod builder;
mod lock_order;
mod map;
mod rcu;

pub use builder::ShardedBuilder;
pub use lock_order::maintenance_acquisitions;
pub use map::{ReadPathMetrics, ShardPolicy, ShardedMap, ShardedStats};

// Compile-time thread-safety audit, mirroring `lll-api`'s: the whole point
// of this crate is to be shared across threads.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedMap<u64, String>>();
    assert_send_sync::<ShardedMap<String, Vec<u8>>>();
    assert_send_sync::<ShardedStats>();
    assert_send_sync::<ShardedBuilder>();
    assert_send_sync::<ReadPathMetrics>();
}
