//! # lll-sharded — a concurrent sharded map over per-shard rebalance domains
//!
//! [`LabelMap`](lll_api::LabelMap) is single-writer: every insert may
//! rebalance the one slot array all keys share. The layered structures keep
//! that rebalance cost low *per structure*, so the natural way to scale
//! writers is to partition the key space into **independent rebalance
//! domains**: [`ShardedMap`] splits the keys across many `LabelMap` shards
//! (each its own `Growable` doubling domain) behind per-shard `RwLock`s,
//! with a directory of split keys deciding which shard owns which key.
//!
//! * **Point operations** (`insert` / `get` / `get_mut_with` / `remove` /
//!   `contains_key`) take the directory lock shared plus exactly **one**
//!   shard lock — writers on different shards never contend.
//! * **Range scans** and full iteration stitch per-shard sweeps in key
//!   order, locking one shard at a time.
//! * **Splits and merges** keep shards inside a size band: both are bulk
//!   moves over the `splice` path added in PR 2
//!   ([`LabelMap::split_off_at_rank`](lll_api::LabelMap::split_off_at_rank)
//!   exports the upper half sorted, `extend_sorted` lands it in one O(shard)
//!   sweep), so re-sharding costs O(shard), not O(n · polylog n).
//! * **Snapshots** ([`ShardedMap::write_snapshot`] /
//!   [`ShardedMap::read_snapshot`]) persist the split-key directory and
//!   each shard's sorted run under the exclusive directory lock (the
//!   maintenance barrier), and restore pre-sharded — each shard lands via
//!   its own O(shard) bulk sweep, no split cascade, no per-op replay. See
//!   `docs/persistence.md`.
//!
//! ```
//! use lll_sharded::ShardedBuilder;
//! use std::sync::Arc;
//! use std::thread;
//!
//! let map = Arc::new(ShardedBuilder::new().max_shard_len(256).build::<u64, u64>());
//! thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let map = Arc::clone(&map);
//!         s.spawn(move || {
//!             for i in 0..500u64 {
//!                 map.insert(i * 4 + t, i); // disjoint stripes, 4 writers
//!             }
//!         });
//!     }
//! });
//! assert_eq!(map.len(), 2000);
//! assert!(map.stats().shards > 1, "growth should have split the key space");
//! ```
//!
//! Lock order is strict — directory before shard, one shard at a time —
//! and structural changes (split/merge) take the directory lock
//! exclusively, which by construction waits out every in-flight point
//! operation. See `docs/sharding.md` in the repository root for the full
//! runbook (policy knobs, lock order, split/merge invariants).

#![forbid(unsafe_code)]

mod builder;
mod lock_order;
mod map;

pub use builder::ShardedBuilder;
pub use map::{ShardPolicy, ShardedMap, ShardedStats};

// Compile-time thread-safety audit, mirroring `lll-api`'s: the whole point
// of this crate is to be shared across threads.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedMap<u64, String>>();
    assert_send_sync::<ShardedMap<String, Vec<u8>>>();
    assert_send_sync::<ShardedStats>();
    assert_send_sync::<ShardedBuilder>();
}
