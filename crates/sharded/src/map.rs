//! [`ShardedMap`]: the concurrent façade over per-shard list-labeling
//! domains.
//!
//! # Locking protocol
//!
//! The read path is lock-free against the directory and optimistic against
//! shards; writers serialize structure under one mutex. Three levels:
//!
//! * The **directory** is an immutable [`Directory`] snapshot published
//!   through an [`RcuCell`]: readers pin it with [`rcu_load`] (two atomic
//!   ops, no lock, no allocation) and never block. Structural maintenance
//!   clones the directory, swaps in the successor with [`rcu_publish`],
//!   and retires the old snapshot after its grace period.
//! * The **maintenance mutex** (`ShardedMap::maint`) is the outermost
//!   lock level: splits, merges, batches, and snapshots serialize under
//!   it, so at most one thread restructures (and publishes) at a time.
//! * Each **shard** ([`Shard`]) pairs a `RwLock<LabelMap>` with an atomic
//!   **epoch**: even = quiescent, odd = write in progress, `u64::MAX` =
//!   retired (the shard was replaced by a published successor). Writers
//!   stamp the write bit under the exclusive lock and advance the epoch by
//!   two per write (plus two per backend growth rebuild, tying the stamp
//!   to `Growable::epoch`). Readers attempt an **optimistic read**: check
//!   the epoch, `try_read` the lock, revalidate under the guard — and only
//!   after a bounded retry budget fall back to a blocking shard lock.
//!
//! Point operations hold at most one shard lock; only a maintenance
//! holder stacks several (merges lock a neighboring pair, snapshots
//! read-lock every shard for one atomic picture). Publication happens
//! with **no** shard lock held, after the retiring shard's epoch is
//! stamped `RETIRED` — a reader of the old snapshot therefore either sees
//! the shard's pre-retirement content (consistent) or the `RETIRED` stamp,
//! which sends it back to reload the directory. The `lock_order` module
//! enforces the order dynamically in debug builds; lll-check's
//! `lock-order` rule enforces it statically.

use crate::lock_order::{
    mlock, rcu_load, rcu_publish, rcu_snapshot, rlock, try_rlock, wlock, Level, Tracked,
};
use crate::rcu::RcuCell;
use lll_api::persist::{Codec, ContainerKind, Header, SnapshotError};
use lll_api::{LabelMap, ListBuilder, RawList};
use lll_core::rng::derive_seed;
use lll_obs::{Counter, Histogram, TraceKind, TraceRing};
use std::borrow::Borrow;
use std::fmt;
use std::io::{Read, Write};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::time::Instant;

/// Events the per-map [`TraceRing`] holds before the oldest is overwritten.
const TRACE_CAPACITY: usize = 256;

/// Epoch stamp of a shard that a split or merge has replaced: readers that
/// see it throw away their directory snapshot and reload — the published
/// successor routes them to the shard that owns their keys now.
const RETIRED: u64 = u64::MAX;

/// Low epoch bit: set while a writer holds the shard's exclusive lock, so
/// optimistic readers spin on the (cheap) atomic instead of hammering the
/// lock word.
const WRITE_BIT: u64 = 1;

/// Optimistic attempts per shard before a read falls back to the blocking
/// shard lock. Large enough to ride out a point write, small enough that a
/// long rebuild doesn't starve readers into a spin.
const READ_RETRY_BUDGET: u32 = 32;

/// A timestamp for shard-lock wait/hold accounting, taken only in debug
/// builds: `Instant::now` is a syscall on some platforms, too expensive to
/// pay twice per point op in release, where the counters simply read zero.
#[inline]
fn lock_clock() -> Option<Instant> {
    cfg!(debug_assertions).then(Instant::now)
}

/// Per-shard operation counters. The counters are atomic, so concurrent
/// readers and writers bump them without coordination; merges fold the
/// retired shard's counts into the survivor so totals stay monotone.
#[derive(Default)]
struct ShardObs {
    /// Point reads served (`get_with` / `contains_key`).
    reads: Counter,
    /// Point writes served (`insert` / `remove` / `get_mut_with`).
    writes: Counter,
    /// Nanoseconds spent waiting to acquire the shard lock (debug builds
    /// only — see [`lock_clock`]).
    lock_wait_nanos: Counter,
    /// Nanoseconds the shard lock was held by point ops (debug builds
    /// only).
    lock_hold_nanos: Counter,
}

impl ShardObs {
    /// Fold `other`'s counts into `self` — run when a merge retires the
    /// right shard, so per-shard counts stay monotone across resharding.
    fn absorb(&self, other: &ShardObs) {
        self.reads.add(other.reads.get());
        self.writes.add(other.writes.get());
        self.lock_wait_nanos.add(other.lock_wait_nanos.get());
        self.lock_hold_nanos.add(other.lock_hold_nanos.get());
    }

    /// Charge a point op's lock timing: `t0` = before acquire, `t1` =
    /// after acquire (both `None` in release builds), `hold` = how long
    /// the guard was held.
    fn note_lock_spans(&self, t0: Option<Instant>, t1: Option<Instant>) -> Option<Instant> {
        if let (Some(t0), Some(t1)) = (t0, t1) {
            self.lock_wait_nanos.add(t1.duration_since(t0).as_nanos() as u64);
        }
        t1
    }

    fn note_hold_since(&self, t1: Option<Instant>) {
        if let Some(t1) = t1 {
            self.lock_hold_nanos.add(t1.elapsed().as_nanos() as u64);
        }
    }
}

/// Counters and the retry histogram of the optimistic read path, shared by
/// every shard of one map. The `Arc`s let a server adopt the same
/// instruments into its metrics [`Registry`](lll_obs::Registry), so the
/// wire exposition and [`ShardedStats`] always agree.
#[derive(Clone)]
pub struct ReadPathMetrics {
    /// Reads served by the optimistic path: epoch precheck + `try_read` +
    /// revalidation, no blocking. Multi-shard scans count one hit per
    /// shard acquired optimistically.
    pub optimistic_hits: Arc<Counter>,
    /// Total optimistic attempts that found the shard busy (write bit set
    /// or `try_read` lost) and spun — the numerator of retry pressure.
    pub retries: Arc<Counter>,
    /// Reads that exhausted the retry budget (`READ_RETRY_BUDGET`, 32
    /// attempts) and fell back to the blocking shard lock.
    pub lock_fallbacks: Arc<Counter>,
    /// Distribution of retry counts per contended read (log2 buckets over
    /// `1..64`): `p99()` of this is the tail a reader spins under churn.
    pub retry_histogram: Arc<Histogram>,
}

impl ReadPathMetrics {
    fn new() -> Self {
        Self {
            optimistic_hits: Arc::new(Counter::default()),
            retries: Arc::new(Counter::default()),
            lock_fallbacks: Arc::new(Counter::default()),
            retry_histogram: Arc::new(Histogram::new(1, 64)),
        }
    }
}

/// One rebalance domain: a `LabelMap` behind its lock, the atomic epoch
/// that optimistic readers validate against, and the shard's op counters.
/// Shards are shared (`Arc`) between successive directory snapshots — a
/// split or merge replaces only the entries it restructures.
struct Shard<K: Ord, V> {
    /// Even = quiescent, [`WRITE_BIT`] set = writer active, [`RETIRED`] =
    /// permanently replaced. Advances by 2 per write plus 2 per backend
    /// rebuild epoch (so a growth rebuild is visible as churn).
    epoch: AtomicU64,
    obs: ShardObs,
    // lock-order: shard
    map: RwLock<LabelMap<K, V>>,
}

/// A read's outcome against one shard.
enum ReadAttempt<R> {
    /// The shard was live; `f` ran exactly once under a read guard.
    Hit(R),
    /// The shard is [`RETIRED`]: reload the directory and re-route.
    Retired,
}

impl<K: Ord, V> Shard<K, V> {
    fn new(map: LabelMap<K, V>) -> Self {
        // Seed the epoch from the backend's rebuild epoch (shifted past
        // the write bit) so the stamp is tied to `Growable::epoch` from
        // birth, not just from the first write.
        let epoch = AtomicU64::new(map.rebuild_epoch() << 1);
        Self { epoch, obs: ShardObs::default(), map: RwLock::new(map) }
    }

    /// Acquire the shard for writing, stamping the write bit. `None` if
    /// the shard is retired — the caller must reload the directory.
    fn write(&self) -> Option<ShardWriteGuard<'_, K, V>> {
        let t0 = lock_clock();
        let guard = wlock(&self.map, Level::Shard);
        let hold_from = self.obs.note_lock_spans(t0, lock_clock());
        let start = self.epoch.load(Ordering::Acquire);
        if start == RETIRED {
            return None;
        }
        debug_assert_eq!(start & WRITE_BIT, 0, "write bit set without the exclusive lock");
        self.epoch.store(start | WRITE_BIT, Ordering::Release);
        let rebuild0 = guard.rebuild_epoch();
        Some(ShardWriteGuard { start, rebuild0, retired: false, hold_from, shard: self, guard })
    }

    /// Read the shard through `f` (run at most once, under a read guard).
    ///
    /// The optimistic path: load the epoch; if quiescent, `try_read` the
    /// lock and revalidate under the guard — the guard excludes writers,
    /// so the only transition that can have raced in is retirement, which
    /// the revalidation catches. After [`READ_RETRY_BUDGET`] busy
    /// attempts, fall back to one blocking `rlock`.
    fn read<R>(
        &self,
        robs: &ReadPathMetrics,
        mut f: impl FnMut(&LabelMap<K, V>) -> R,
    ) -> ReadAttempt<R> {
        let book_retries = |attempts: u32| {
            if attempts > 0 {
                robs.retries.add(attempts as u64);
                robs.retry_histogram.record(attempts as u64);
            }
        };
        let mut attempts: u32 = 0;
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before == RETIRED {
                book_retries(attempts);
                return ReadAttempt::Retired;
            }
            if before & WRITE_BIT == 0 {
                if let Some(guard) = try_rlock(&self.map, Level::Shard) {
                    // Revalidate while the guard excludes writers: a whole
                    // write (or retirement) may have landed between the
                    // precheck and the lock, but a *torn* state cannot —
                    // this lock upgrade is what keeps the fast path safe
                    // Rust rather than a racy seqlock.
                    let now = self.epoch.load(Ordering::Acquire);
                    // RETIRED has the write bit set, so rule it out before
                    // asserting quiescence — a split/merge retiring the
                    // shard between the precheck and the lock is the legal
                    // race this branch exists for.
                    if now == RETIRED {
                        book_retries(attempts);
                        return ReadAttempt::Retired;
                    }
                    debug_assert_eq!(now & WRITE_BIT, 0, "write bit set under a read guard");
                    let out = f(&guard);
                    robs.optimistic_hits.inc();
                    book_retries(attempts);
                    return ReadAttempt::Hit(out);
                }
            }
            attempts += 1;
            if attempts >= READ_RETRY_BUDGET {
                break;
            }
            if attempts.is_multiple_of(8) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Budget exhausted: one blocking acquisition, with the wait/hold
        // accounting the write path pays.
        robs.retries.add(attempts as u64);
        robs.retry_histogram.record(attempts as u64);
        robs.lock_fallbacks.inc();
        let t0 = lock_clock();
        let guard = rlock(&self.map, Level::Shard);
        let t1 = self.obs.note_lock_spans(t0, lock_clock());
        let now = self.epoch.load(Ordering::Acquire);
        let out = if now == RETIRED { ReadAttempt::Retired } else { ReadAttempt::Hit(f(&guard)) };
        self.obs.note_hold_since(t1);
        out
    }
}

/// An exclusive shard guard that owns the epoch protocol: the write bit is
/// set for its lifetime, and dropping it stamps the successor epoch
/// (advanced by the write plus any backend rebuilds observed under the
/// guard) *before* the lock is released, so a reader acquiring the lock
/// next always sees the settled stamp.
struct ShardWriteGuard<'a, K: Ord, V> {
    /// The (even) epoch when the guard was taken.
    start: u64,
    /// The backend's rebuild epoch at acquisition — the delta to its value
    /// at drop folds growth rebuilds into the shard epoch.
    rebuild0: u64,
    /// Set by [`retire`](Self::retire): stamp [`RETIRED`] instead of the
    /// next epoch.
    retired: bool,
    hold_from: Option<Instant>,
    shard: &'a Shard<K, V>,
    // Declared last: `Drop::drop` stamps the epoch, then this field's own
    // drop releases the lock.
    guard: Tracked<RwLockWriteGuard<'a, LabelMap<K, V>>>,
}

impl<K: Ord, V> ShardWriteGuard<'_, K, V> {
    /// Mark the shard permanently replaced: the drop stamps [`RETIRED`],
    /// bouncing every reader of an old directory snapshot back to a
    /// reload. Call only after the published successor covers the keys.
    fn retire(mut self) {
        self.retired = true;
    }
}

impl<K: Ord, V> Deref for ShardWriteGuard<'_, K, V> {
    type Target = LabelMap<K, V>;

    fn deref(&self) -> &LabelMap<K, V> {
        &self.guard
    }
}

impl<K: Ord, V> DerefMut for ShardWriteGuard<'_, K, V> {
    fn deref_mut(&mut self) -> &mut LabelMap<K, V> {
        &mut self.guard
    }
}

impl<K: Ord, V> Drop for ShardWriteGuard<'_, K, V> {
    fn drop(&mut self) {
        let next = if self.retired {
            RETIRED
        } else {
            let rebuilds = self.guard.rebuild_epoch().wrapping_sub(self.rebuild0);
            self.start.wrapping_add(2).wrapping_add(rebuilds.wrapping_mul(2))
        };
        self.shard.epoch.store(next, Ordering::Release);
        self.shard.obs.note_hold_since(self.hold_from);
    }
}

/// The size band shards are kept inside, plus the shard-count ceiling.
///
/// Invariants enforced by [`ShardedBuilder`](crate::ShardedBuilder):
/// `min_shard_len <= max_shard_len / 4`, so a freshly split half
/// (`> max/2`) is never immediately merge-eligible and a freshly merged
/// shard (`<= max`) is never immediately split-eligible — maintenance
/// always terminates.
#[derive(Clone, Copy, Debug)]
pub struct ShardPolicy {
    /// Split a shard once it exceeds this many entries (and the shard
    /// count is still below [`max_shards`](Self::max_shards)).
    pub max_shard_len: usize,
    /// Merge a shard into a neighbor once it falls below this many entries
    /// (if the combined shard stays within
    /// [`max_shard_len`](Self::max_shard_len)).
    pub min_shard_len: usize,
    /// Hard ceiling on the number of shards.
    pub max_shards: usize,
}

/// The split-key table: `shards[i]` owns keys `k` with
/// `bounds[i-1] <= k < bounds[i]` (shard 0 unbounded below, the last shard
/// unbounded above). Always `shards.len() == bounds.len() + 1`.
///
/// A directory is **immutable once published**: maintenance clones the
/// vectors (cheap — `Arc`s and split keys, not entries), edits the clone,
/// and publishes it as the successor snapshot.
struct Directory<K: Ord, V> {
    bounds: Vec<K>,
    shards: Vec<Arc<Shard<K, V>>>,
}

impl<K: Ord, V> Directory<K, V> {
    /// The index of the shard owning `key` — a binary search of the split
    /// keys, no shard locks taken.
    fn locate<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.bounds.partition_point(|b| b.borrow() <= key)
    }
}

/// A thread-safe sorted map that partitions its key space across
/// independent [`LabelMap`] shards — each one its own rebalance domain —
/// behind an RCU-published directory and per-shard `RwLock`s with an
/// optimistic, epoch-validated read path.
///
/// Construct one with [`ShardedBuilder`](crate::ShardedBuilder). All
/// methods take `&self`; share the map across threads with `Arc` (or
/// scoped threads). See the [crate docs](crate) for the locking protocol
/// and `docs/sharding.md` for the operational runbook.
pub struct ShardedMap<K: Ord + Clone, V> {
    // lock-order: rcu
    dir: RcuCell<Directory<K, V>>,
    /// Serializes splits, merges, batches, snapshots — and thereby every
    /// directory publication. Point operations never touch it.
    // lock-order: maintenance
    maint: Mutex<()>,
    builder: ListBuilder,
    seed: u64,
    policy: ShardPolicy,
    /// Monotone per-map shard counter: each shard's backend gets an
    /// independent random tape derived from (seed, sequence number).
    shard_seq: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    batches: AtomicU64,
    batched_entries: AtomicU64,
    /// Element moves accumulated by shard backends that splits/merges have
    /// since retired — folded into [`stats`](Self::stats) so the cost
    /// accounting (the paper's move model) never loses history.
    retired_moves: AtomicU64,
    /// Recent structural events (splits, merges, snapshots) — shared so a
    /// server can drain the ring without holding a reference to the map.
    trace: Arc<TraceRing>,
    /// Optimistic-read instrumentation, shared across all shards (see
    /// [`read_path_metrics`](Self::read_path_metrics)).
    read_obs: ReadPathMetrics,
}

/// A point-in-time aggregate snapshot of a [`ShardedMap`] (see
/// [`ShardedMap::stats`]).
#[derive(Clone, Debug)]
pub struct ShardedStats {
    /// Number of shards.
    pub shards: usize,
    /// Total entries across shards.
    pub len: usize,
    /// Total element moves across all shard backends, including the moves
    /// accumulated by backends that splits/merges have since retired (the
    /// paper's cost model, summed over rebalance domains — monotone over
    /// the map's lifetime).
    pub total_moves: u64,
    /// Shard splits performed since construction.
    pub splits: u64,
    /// Shard merges performed since construction.
    pub merges: u64,
    /// Bulk batches landed via [`ShardedMap::extend_sorted`] /
    /// [`ShardedMap::extend_from_unsorted`] since construction.
    pub batches: u64,
    /// Total entries landed through those batches (after dedup).
    pub batched_entries: u64,
    /// Per-shard entry counts, in key order.
    pub shard_lens: Vec<usize>,
    /// Per-shard backend capacities, in key order (`shard_lens[i] /
    /// shard_capacities[i]` is shard `i`'s occupancy).
    pub shard_capacities: Vec<usize>,
    /// Per-shard point reads served (`get_with` / `contains_key`), in key
    /// order. Merges fold the retired shard's count into the survivor, so
    /// the total is monotone across resharding.
    pub shard_reads: Vec<u64>,
    /// Per-shard point writes served (`insert` / `remove` /
    /// `get_mut_with`), in key order; monotone like
    /// [`shard_reads`](Self::shard_reads).
    pub shard_writes: Vec<u64>,
    /// Total nanoseconds point ops spent waiting to acquire shard locks.
    /// Timed in debug builds only (zero in release — the clock reads
    /// would dominate the ops being measured).
    pub lock_wait_nanos: u64,
    /// Total nanoseconds point ops held shard locks (debug builds only).
    pub lock_hold_nanos: u64,
    /// Shard acquisitions served by the optimistic (epoch-validated,
    /// non-blocking) read path.
    pub read_optimistic_hits: u64,
    /// Optimistic attempts that found the shard busy and spun before
    /// succeeding or falling back.
    pub read_retries: u64,
    /// Reads that exhausted the retry budget and took a blocking shard
    /// lock.
    pub read_lock_fallbacks: u64,
    /// 99th-percentile retry count among contended reads (0 when no read
    /// has retried yet).
    pub read_retry_p99: u64,
}

impl ShardedStats {
    /// The smallest shard's entry count.
    pub fn min_shard_len(&self) -> usize {
        self.shard_lens.iter().copied().min().unwrap_or(0)
    }

    /// The largest shard's entry count.
    pub fn max_shard_len(&self) -> usize {
        self.shard_lens.iter().copied().max().unwrap_or(0)
    }

    /// Mean entries per shard.
    pub fn mean_shard_len(&self) -> f64 {
        if self.shards == 0 {
            return 0.0;
        }
        self.len as f64 / self.shards as f64
    }
}

impl fmt::Display for ShardedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries in {} shards (splits {}, merges {}, {} total moves)",
            self.len, self.shards, self.splits, self.merges, self.total_moves
        )
    }
}

impl<K: Ord + Clone, V> ShardedMap<K, V> {
    /// A shell with no shards at all — only valid as an intermediate while
    /// a constructor installs the real directory.
    fn shell(builder: ListBuilder, seed: u64, policy: ShardPolicy) -> Self {
        Self {
            dir: RcuCell::new(Arc::new(Directory { bounds: Vec::new(), shards: Vec::new() })),
            maint: Mutex::new(()),
            builder,
            seed,
            policy,
            shard_seq: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_entries: AtomicU64::new(0),
            retired_moves: AtomicU64::new(0),
            trace: Arc::new(TraceRing::new(TRACE_CAPACITY)),
            read_obs: ReadPathMetrics::new(),
        }
    }

    /// Publish `dir` as the map's directory, through the same
    /// maintenance-serialized path structural changes use.
    fn install(&self, dir: Directory<K, V>) {
        let _m = mlock(&self.maint);
        rcu_publish(&self.dir, Arc::new(dir));
    }

    /// Build an empty map: one shard, no split keys. Splitting is
    /// data-driven from there. Called by
    /// [`ShardedBuilder`](crate::ShardedBuilder).
    pub(crate) fn new(builder: ListBuilder, seed: u64, policy: ShardPolicy) -> Self {
        let map = Self::shell(builder, seed, policy);
        let first = Arc::new(Shard::new(map.fresh_shard()));
        map.install(Directory { bounds: Vec::new(), shards: vec![first] });
        map
    }

    /// Build a map pre-sharded from entries sorted ascending by key: the
    /// run is cut into half-full chunks, each bulk-loaded into its own
    /// fresh shard in one O(chunk) sweep — a true O(n) import, no split
    /// cascade. Panics if the keys are not ascending (equal adjacent keys
    /// collapse, last write wins, as in [`LabelMap::from_sorted_iter`]).
    pub(crate) fn from_sorted(
        builder: ListBuilder,
        seed: u64,
        policy: ShardPolicy,
        mut entries: Vec<(K, V)>,
    ) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0.cmp(&w[1].0).is_le()),
            "from_sorted requires keys in ascending order"
        );
        // Dedup before chunking so equal keys never straddle a split key.
        entries.dedup_by(|next, kept| {
            if next.0.cmp(&kept.0).is_eq() {
                std::mem::swap(next, kept);
                true
            } else {
                false
            }
        });
        let map = Self::shell(builder, seed, policy);
        // Half-full shards: room to grow before splitting, full enough not
        // to merge. Respect the shard-count ceiling by growing the chunk
        // size if the run is enormous.
        let per_shard =
            (policy.max_shard_len / 2).max(entries.len().div_ceil(policy.max_shards)).max(1);
        let mut chunks = Vec::with_capacity(entries.len() / per_shard + 1);
        while entries.len() > per_shard {
            let rest = entries.split_off(per_shard);
            chunks.push(std::mem::replace(&mut entries, rest));
        }
        chunks.push(entries);
        let mut bounds = Vec::with_capacity(chunks.len().saturating_sub(1));
        let mut shards = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.into_iter().enumerate() {
            if i > 0 {
                bounds.push(chunk[0].0.clone());
            }
            let mut shard = map.fresh_shard();
            shard.extend_sorted(chunk);
            shards.push(Arc::new(Shard::new(shard)));
        }
        map.install(Directory { bounds, shards });
        map
    }

    fn fresh_shard(&self) -> LabelMap<K, V> {
        let seq = self.shard_seq.fetch_add(1, Ordering::Relaxed);
        self.builder.clone().seed(derive_seed(self.seed, seq)).label_map()
    }

    /// The policy this map maintains its shards against.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Total entries — optimistic per-shard reads, O(#shards). The count
    /// is a consistent snapshot only if no writer is concurrent.
    pub fn len(&self) -> usize {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            let mut total = 0;
            for shard in &dir.shards {
                match shard.read(&self.read_obs, |m| m.len()) {
                    ReadAttempt::Hit(n) => total += n,
                    ReadAttempt::Retired => continue 'retry,
                }
            }
            return total;
        }
    }

    /// True if no entries are stored (same snapshot caveat as
    /// [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        rcu_load(&self.dir).shards.len()
    }

    /// Insert `key → value`, returning the previous value if the key was
    /// present. Locks the owning shard exclusively (the directory itself
    /// is only pinned, never locked); if the shard overflowed the policy
    /// band, splits it afterwards under the maintenance mutex.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let mut kv = Some((key, value));
        let (prev, overflow) = loop {
            let (key, value) = kv.take().expect("refilled on every retry");
            {
                let dir = rcu_load(&self.dir);
                let idx = dir.locate(&key);
                let shard = &dir.shards[idx];
                if let Some(mut g) = shard.write() {
                    shard.obs.writes.inc();
                    let prev = g.insert(key, value);
                    // Only trigger maintenance when a split is actually
                    // feasible: at the shard-count ceiling an oversized
                    // shard simply keeps growing (documented degradation),
                    // and a no-op maintenance pass would serialize every
                    // writer on the mutex.
                    let overflow = g.len() > self.policy.max_shard_len
                        && dir.shards.len() < self.policy.max_shards;
                    break (prev, overflow);
                }
                // The shard was retired under us: reload the directory.
                kv = Some((key, value));
            }
            std::thread::yield_now();
        };
        if overflow {
            self.maintain();
        }
        prev
    }

    /// Remove `key`, returning its value. Locks the owning shard
    /// exclusively; if the shard underflowed the policy band, merges it
    /// into a neighbor afterwards.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (prev, underflow) = loop {
            {
                let dir = rcu_load(&self.dir);
                let idx = dir.locate(key);
                let shard = &dir.shards[idx];
                if let Some(mut g) = shard.write() {
                    shard.obs.writes.inc();
                    let prev = g.remove(key);
                    // Trigger only on the exact threshold crossing: a
                    // shard stuck underfull because no neighbor merge fits
                    // must not pay a maintenance round trip on every
                    // subsequent remove. Once a neighbor later shrinks,
                    // *its* own crossing re-runs maintenance, which scans
                    // globally and finds the pair.
                    let crossed = prev.is_some() && g.len() + 1 == self.policy.min_shard_len;
                    break (prev, crossed && dir.shards.len() > 1);
                };
            }
            std::thread::yield_now();
        };
        if underflow {
            self.maintain();
        }
        prev
    }

    /// Read `key`'s value through a borrow: `map.get_with(&k, |v|
    /// v.summarize())`. Returns `None` if the key is absent. Rides the
    /// optimistic read path — no directory lock, and in the common case no
    /// blocking shard lock either.
    pub fn get_with<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        // `Shard::read` wants FnMut but runs it at most once per call;
        // the take() lets the FnOnce ride through retries untouched.
        let mut f = Some(f);
        loop {
            {
                let dir = rcu_load(&self.dir);
                let idx = dir.locate(key);
                let shard = &dir.shards[idx];
                let attempt = shard.read(&self.read_obs, |m| {
                    // Counted under the read guard: a merge can absorb this
                    // shard's ShardObs into the survivor the instant the
                    // guard drops, and an increment after that loses the
                    // read from the monotone-across-resharding totals.
                    shard.obs.reads.inc();
                    m.get(key).map(|v| (f.take().expect("read closure ran twice"))(v))
                });
                if let ReadAttempt::Hit(out) = attempt {
                    return out;
                }
            }
            std::thread::yield_now();
        }
    }

    /// The value of `key`, cloned out of the shard (the lock cannot outlive
    /// the call; use [`get_with`](Self::get_with) to read in place).
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Mutate `key`'s value in place under the owning shard's exclusive
    /// lock: `map.get_mut_with(&k, |v| *v += 1)`. Returns `None` (without
    /// running `f`) if the key is absent.
    pub fn get_mut_with<Q, R>(&self, key: &Q, f: impl FnOnce(&mut V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut f = Some(f);
        loop {
            {
                let dir = rcu_load(&self.dir);
                let idx = dir.locate(key);
                let shard = &dir.shards[idx];
                if let Some(mut g) = shard.write() {
                    shard.obs.writes.inc();
                    return g.get_mut(key).map(|v| (f.take().expect("mut closure ran twice"))(v));
                };
            }
            std::thread::yield_now();
        }
    }

    /// True if `key` is present. Optimistic like [`get_with`](Self::get_with).
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        loop {
            {
                let dir = rcu_load(&self.dir);
                let idx = dir.locate(key);
                let shard = &dir.shards[idx];
                let attempt = shard.read(&self.read_obs, |m| {
                    // Under the guard, as in `get_with`: survives a racing
                    // merge's ShardObs absorption.
                    shard.obs.reads.inc();
                    m.contains_key(key)
                });
                if let ReadAttempt::Hit(found) = attempt {
                    return found;
                }
            }
            std::thread::yield_now();
        }
    }

    /// The smallest entry, cloned.
    pub fn first_key_value(&self) -> Option<(K, V)>
    where
        V: Clone,
    {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            for shard in &dir.shards {
                let attempt = shard.read(&self.read_obs, |m| {
                    m.first_key_value().map(|(k, v)| (k.clone(), v.clone()))
                });
                match attempt {
                    ReadAttempt::Hit(Some(kv)) => return Some(kv),
                    ReadAttempt::Hit(None) => {}
                    ReadAttempt::Retired => continue 'retry,
                }
            }
            return None;
        }
    }

    /// The largest entry, cloned.
    pub fn last_key_value(&self) -> Option<(K, V)>
    where
        V: Clone,
    {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            for shard in dir.shards.iter().rev() {
                let attempt = shard.read(&self.read_obs, |m| {
                    m.last_key_value().map(|(k, v)| (k.clone(), v.clone()))
                });
                match attempt {
                    ReadAttempt::Hit(Some(kv)) => return Some(kv),
                    ReadAttempt::Hit(None) => {}
                    ReadAttempt::Retired => continue 'retry,
                }
            }
            return None;
        }
    }

    /// Collect the entries with keys in `range`, ascending — per-shard
    /// contiguous sweeps stitched in key order. Shards are read **one at
    /// a time** on the optimistic path (each shard's slice is internally
    /// consistent; the stitched whole is not a single atomic snapshot
    /// under concurrent writers). A mid-scan split or merge restarts the
    /// whole scan against the fresh directory.
    pub fn range<Q, R>(&self, range: R) -> Vec<(K, V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
        R: RangeBounds<Q>,
        V: Clone,
    {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            if dir.shards.is_empty() {
                return Vec::new();
            }
            let lo = match range.start_bound() {
                Bound::Included(k) | Bound::Excluded(k) => dir.locate(k),
                Bound::Unbounded => 0,
            };
            let hi = match range.end_bound() {
                Bound::Included(k) | Bound::Excluded(k) => dir.locate(k),
                Bound::Unbounded => dir.shards.len() - 1,
            };
            let mut out = Vec::new();
            for shard in &dir.shards[lo..=hi] {
                let attempt = shard.read(&self.read_obs, |m| {
                    out.extend(
                        m.range((range.start_bound(), range.end_bound()))
                            .map(|(k, v)| (k.clone(), v.clone())),
                    );
                });
                if let ReadAttempt::Retired = attempt {
                    continue 'retry;
                }
            }
            return out;
        }
    }

    /// All entries ascending by key — [`range`](Self::range) over
    /// everything (same shard-at-a-time consistency).
    pub fn to_vec(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        self.range::<K, _>(..)
    }

    /// Visit every entry ascending by key without cloning values. Runs
    /// under the maintenance mutex so the directory cannot reshard
    /// mid-walk (no entry visited twice or skipped); concurrent point ops
    /// proceed shard by shard.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let _m = mlock(&self.maint);
        let dir = rcu_snapshot(&self.dir);
        for shard in &dir.shards {
            let g = rlock(&shard.map, Level::Shard);
            for (k, v) in g.iter() {
                f(k, v);
            }
        }
    }

    /// Merge entries **sorted ascending by key** in bulk: the batch is cut
    /// at the split keys and each piece lands in its shard via the O(piece)
    /// [`LabelMap::extend_sorted`] sweep; overflowing shards are split
    /// afterwards. Panics if the batch is not ascending.
    pub fn extend_sorted(&self, mut batch: Vec<(K, V)>) {
        assert!(
            batch.windows(2).all(|w| w[0].0.cmp(&w[1].0).is_le()),
            "extend_sorted requires keys in ascending order"
        );
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_entries.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let m = mlock(&self.maint);
        let mut overflow = false;
        {
            let dir = rcu_snapshot(&self.dir);
            // Peel per-shard chunks off the tail: bounds walked in reverse
            // so each split_off detaches exactly the last shard's share.
            let mut chunks = Vec::with_capacity(dir.shards.len());
            for b in dir.bounds.iter().rev() {
                let cut = batch.partition_point(|(k, _)| k < b);
                chunks.push(batch.split_off(cut));
            }
            chunks.push(batch);
            chunks.reverse();
            for (i, chunk) in chunks.into_iter().enumerate() {
                if chunk.is_empty() {
                    continue;
                }
                let mut g =
                    dir.shards[i].write().expect("shards cannot retire under the maintenance lock");
                g.extend_sorted(chunk);
                overflow |= g.len() > self.policy.max_shard_len;
            }
        }
        if overflow {
            self.maintain_locked(&m);
        }
    }

    /// Merge an **arbitrary-order** batch in bulk: the batch is sorted
    /// (stable, so equal keys keep arrival order), deduplicated with
    /// last-write-wins, and routed through the split-key-cutting
    /// [`extend_sorted`](Self::extend_sorted) — callers can never silently
    /// hit the per-op slow path. Returns the number of unique entries
    /// landed.
    pub fn extend_from_unsorted(&self, mut batch: Vec<(K, V)>) -> usize {
        batch.sort_by(|a, b| a.0.cmp(&b.0));
        let mut deduped: Vec<(K, V)> = Vec::with_capacity(batch.len());
        for entry in batch {
            match deduped.last_mut() {
                // Stable sort kept arrival order within equal keys, so the
                // later arrival overwrites: last write wins.
                Some(last) if last.0 == entry.0 => *last = entry,
                _ => deduped.push(entry),
            }
        }
        let landed = deduped.len();
        self.extend_sorted(deduped);
        landed
    }

    /// [`range`](Self::range) capped at `limit` entries: stops reading and
    /// cloning as soon as the cap is reached. The second component is true
    /// if at least one more entry existed past the cap (the scan was
    /// truncated) — the pagination signal a server returns to clients.
    pub fn range_limited<Q, R>(&self, range: R, limit: usize) -> (Vec<(K, V)>, bool)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
        R: RangeBounds<Q>,
        V: Clone,
    {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            if dir.shards.is_empty() {
                return (Vec::new(), false);
            }
            let lo = match range.start_bound() {
                Bound::Included(k) | Bound::Excluded(k) => dir.locate(k),
                Bound::Unbounded => 0,
            };
            let hi = match range.end_bound() {
                Bound::Included(k) | Bound::Excluded(k) => dir.locate(k),
                Bound::Unbounded => dir.shards.len() - 1,
            };
            let mut out = Vec::new();
            for shard in &dir.shards[lo..=hi] {
                let attempt = shard.read(&self.read_obs, |m| {
                    for (k, v) in m.range((range.start_bound(), range.end_bound())) {
                        if out.len() == limit {
                            return true;
                        }
                        out.push((k.clone(), v.clone()));
                    }
                    false
                });
                match attempt {
                    ReadAttempt::Hit(true) => return (out, true),
                    ReadAttempt::Hit(false) => {}
                    ReadAttempt::Retired => continue 'retry,
                }
            }
            return (out, false);
        }
    }

    /// Aggregate statistics — one optimistic pass over the shards.
    pub fn stats(&self) -> ShardedStats {
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            let mut stats = ShardedStats {
                shards: dir.shards.len(),
                len: 0,
                total_moves: self.retired_moves.load(Ordering::Relaxed),
                splits: self.splits.load(Ordering::Relaxed),
                merges: self.merges.load(Ordering::Relaxed),
                batches: self.batches.load(Ordering::Relaxed),
                batched_entries: self.batched_entries.load(Ordering::Relaxed),
                shard_lens: Vec::with_capacity(dir.shards.len()),
                shard_capacities: Vec::with_capacity(dir.shards.len()),
                shard_reads: Vec::with_capacity(dir.shards.len()),
                shard_writes: Vec::with_capacity(dir.shards.len()),
                lock_wait_nanos: 0,
                lock_hold_nanos: 0,
                read_optimistic_hits: self.read_obs.optimistic_hits.get(),
                read_retries: self.read_obs.retries.get(),
                read_lock_fallbacks: self.read_obs.lock_fallbacks.get(),
                read_retry_p99: self.read_obs.retry_histogram.p99(),
            };
            for shard in &dir.shards {
                let attempt = shard
                    .read(&self.read_obs, |m| (m.len(), m.total_moves(), m.backend().capacity()));
                let (len, moves, capacity) = match attempt {
                    ReadAttempt::Hit(x) => x,
                    ReadAttempt::Retired => continue 'retry,
                };
                stats.len += len;
                stats.total_moves += moves;
                stats.shard_lens.push(len);
                stats.shard_capacities.push(capacity);
                stats.shard_reads.push(shard.obs.reads.get());
                stats.shard_writes.push(shard.obs.writes.get());
                stats.lock_wait_nanos += shard.obs.lock_wait_nanos.get();
                stats.lock_hold_nanos += shard.obs.lock_hold_nanos.get();
            }
            return stats;
        }
    }

    /// The optimistic read path's shared instruments — `Arc` handles a
    /// server adopts into its metrics registry so the Prometheus
    /// exposition and [`stats`](Self::stats) read the same counters.
    pub fn read_path_metrics(&self) -> ReadPathMetrics {
        self.read_obs.clone()
    }

    /// The map's structural-event trace ring (splits, merges, snapshots):
    /// a shared handle, so a server can drain events without borrowing
    /// the map. See [`TraceRing::snapshot`].
    pub fn trace(&self) -> Arc<TraceRing> {
        Arc::clone(&self.trace)
    }

    /// Rebalance the shard map until every shard is inside the policy
    /// band, under the maintenance mutex.
    fn maintain(&self) {
        let m = mlock(&self.maint);
        self.maintain_locked(&m);
    }

    /// The maintenance loop: split any shard above `max_shard_len` (while
    /// below `max_shards`), then merge any shard below `min_shard_len`
    /// whose combined size with a neighbor fits. Each pass probes shard
    /// lengths with brief read locks, restructures one shard pair at most,
    /// publishes the successor directory, and re-probes — point operations
    /// keep flowing between passes.
    ///
    /// Terminates: splits strictly shrink an oversized shard into halves
    /// too big to merge (`> max/2 >= 2·min`), merges strictly reduce the
    /// shard count and never create a splittable shard (combined `<= max`);
    /// a pass that finds nothing actionable (or loses its candidate to a
    /// concurrent writer) re-probes fresh lengths and exits once the map
    /// is inside the band.
    fn maintain_locked(&self, _m: &Tracked<MutexGuard<'_, ()>>) {
        loop {
            let dir = rcu_snapshot(&self.dir);
            let n = dir.shards.len();
            let lens: Vec<usize> =
                dir.shards.iter().map(|s| rlock(&s.map, Level::Shard).len()).collect();
            if n < self.policy.max_shards {
                if let Some(i) = (0..n).find(|&i| lens[i] > self.policy.max_shard_len) {
                    if self.split_shard(&dir, i) {
                        self.splits.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            }
            if n > 1 {
                // For an underfull shard, try either neighbor (right first)
                // and merge with whichever keeps the pair within the band;
                // yield the *left* index of the mergeable pair.
                let mergeable = (0..n).find_map(|i| {
                    let li = lens[i];
                    if li >= self.policy.min_shard_len {
                        return None;
                    }
                    if i + 1 < n && li + lens[i + 1] <= self.policy.max_shard_len {
                        return Some(i);
                    }
                    if i > 0 && li + lens[i - 1] <= self.policy.max_shard_len {
                        return Some(i - 1);
                    }
                    None
                });
                if let Some(left) = mergeable {
                    if self.merge_into_left(&dir, left) {
                        self.merges.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            }
            break;
        }
    }

    /// Split shard `i` at its median rank: drain it under its write lock
    /// (one snapshot sweep — a pure read, no backend deletes), bulk-load
    /// both halves into fresh shards, publish a successor directory that
    /// carries them, and retire the drained shard. Returns false if a
    /// concurrent writer shrank the shard back inside the band first.
    ///
    /// Ordering is load-bearing: the old shard's `RETIRED` stamp lands
    /// (and its lock releases) *before* the publication, so a reader of
    /// the old directory can never observe the drained shard as live.
    fn split_shard(&self, dir: &Directory<K, V>, i: usize) -> bool {
        let old = &dir.shards[i];
        let Some(mut g) = old.write() else { return false };
        if g.len() <= self.policy.max_shard_len {
            return false;
        }
        let old_map = std::mem::replace(&mut *g, self.fresh_shard());
        self.retired_moves.fetch_add(old_map.total_moves(), Ordering::Relaxed);
        let mut lower = old_map.into_sorted_vec();
        let entries = lower.len() as u64;
        let upper = lower.split_off(lower.len() / 2);
        debug_assert!(!upper.is_empty(), "split of a shard with < 2 entries");
        let split_key = upper[0].0.clone();
        let mut lo_map = self.fresh_shard();
        lo_map.extend_sorted(lower);
        let mut hi_map = self.fresh_shard();
        hi_map.extend_sorted(upper);
        let lo_shard = Arc::new(Shard::new(lo_map));
        // The lower half inherits the old shard's counters (the survivor
        // of a key span keeps its history, as merges do).
        lo_shard.obs.absorb(&old.obs);
        let mut bounds = dir.bounds.clone();
        let mut shards = dir.shards.clone();
        bounds.insert(i, split_key);
        shards[i] = lo_shard;
        shards.insert(i + 1, Arc::new(Shard::new(hi_map)));
        let shard_count = shards.len() as u64;
        let next = Arc::new(Directory { bounds, shards });
        g.retire();
        rcu_publish(&self.dir, next);
        self.trace.record(TraceKind::Split, i as u64, shard_count, entries);
        true
    }

    /// Merge shard `left + 1` into shard `left`: the right shard is
    /// drained sorted and appended to the left **in place** (the left
    /// shard object survives into the successor directory), the right is
    /// retired, and the successor without its split key is published.
    /// Returns false if the pair no longer fits inside the band.
    ///
    /// A reader of the old directory that targets the left shard sees
    /// either the pre-merge or post-merge content — both consistent for
    /// its span. One that targets the right shard finds it `RETIRED` (the
    /// stamp lands before either lock releases) and reloads; scans restart
    /// wholesale on `RETIRED`, so no entry is seen twice.
    fn merge_into_left(&self, dir: &Directory<K, V>, left: usize) -> bool {
        let l = &dir.shards[left];
        let r = &dir.shards[left + 1];
        let Some(mut lg) = l.write() else { return false };
        let Some(mut rg) = r.write() else { return false };
        if lg.len() + rg.len() > self.policy.max_shard_len {
            return false;
        }
        let right_map = std::mem::replace(&mut *rg, self.fresh_shard());
        self.retired_moves.fetch_add(right_map.total_moves(), Ordering::Relaxed);
        l.obs.absorb(&r.obs);
        let run = right_map.into_sorted_vec();
        let merged = run.len() as u64;
        lg.extend_sorted(run);
        let mut bounds = dir.bounds.clone();
        let mut shards = dir.shards.clone();
        bounds.remove(left);
        shards.remove(left + 1);
        let shard_count = shards.len() as u64;
        let next = Arc::new(Directory { bounds, shards });
        rg.retire();
        drop(lg);
        rcu_publish(&self.dir, next);
        self.trace.record(TraceKind::Merge, left as u64, shard_count, merged);
        true
    }

    /// Write a durable snapshot of the map: the versioned header (backend,
    /// seed, η, total entry count), the shard policy, the split-key
    /// directory, and each shard's sorted run in key order. Runs under the
    /// maintenance mutex with **every shard read-locked at once** — one
    /// atomic, internally consistent picture; concurrent readers keep
    /// flowing, writers block for the duration of the write.
    ///
    /// Writing to a `File`? Wrap it in a [`std::io::BufWriter`] — the
    /// encoder issues one small write per field.
    pub fn write_snapshot<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError>
    where
        K: Codec,
        V: Codec,
    {
        let _m = mlock(&self.maint);
        let dir = rcu_snapshot(&self.dir);
        // Stacking every shard's read lock is legal under the maintenance
        // mutex (the tracker's rule 2) and deadlock-free: maintenance is
        // the only path that takes more than one shard lock, and we are it.
        let guards: Vec<_> = dir.shards.iter().map(|s| rlock(&s.map, Level::Shard)).collect();
        let total: usize = guards.iter().map(|g| g.len()).sum();
        self.trace.record(TraceKind::Snapshot, total as u64, dir.shards.len() as u64, 0);
        let mut cfg = self.builder.config();
        cfg.seed = self.seed;
        Header::new(ContainerKind::ShardedMap, cfg, total as u64).write_to(w)?;
        (self.policy.max_shard_len as u64).encode(w)?;
        (self.policy.min_shard_len as u64).encode(w)?;
        (self.policy.max_shards as u64).encode(w)?;
        (dir.shards.len() as u64).encode(w)?;
        for b in &dir.bounds {
            b.encode(w)?;
        }
        for g in &guards {
            (g.len() as u64).encode(w)?;
            for (k, v) in g.iter() {
                k.encode(w)?;
                v.encode(w)?;
            }
        }
        Ok(())
    }

    /// Restore a map from a snapshot written by
    /// [`write_snapshot`](Self::write_snapshot): rebuild the recorded
    /// backend configuration and policy, re-install the persisted
    /// split-key directory, and land each shard's run through its own
    /// O(shard) bulk-load sweep — the
    /// [`build_from_sorted`](crate::ShardedBuilder::build_from_sorted)-style
    /// pre-sharded restore, skipping both per-op replay and any split
    /// cascade.
    ///
    /// Never panics on bad input: truncated, corrupted, version- or
    /// container-mismatched streams return the matching [`SnapshotError`]
    /// variant (a directory whose shard runs violate their spans is
    /// [`SnapshotError::Corrupt`]). Reading from a `File`? Wrap it in a
    /// [`std::io::BufReader`].
    pub fn read_snapshot<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError>
    where
        K: Codec,
        V: Codec,
    {
        let header = Header::read_expecting(r, ContainerKind::ShardedMap)?;
        let max_shard_len = usize::decode(r)?.max(2);
        let min_shard_len = usize::decode(r)?;
        let max_shards = usize::decode(r)?.max(1);
        // Re-clamp exactly as ShardedBuilder does, so a hand-edited policy
        // can never re-introduce split/merge livelock.
        let policy = ShardPolicy {
            max_shard_len,
            min_shard_len: min_shard_len.min(max_shard_len / 4),
            max_shards,
        };
        let shard_count = usize::decode(r)?;
        if shard_count == 0 {
            return Err(SnapshotError::Corrupt("a sharded map has at least one shard".into()));
        }
        if shard_count > policy.max_shards {
            return Err(SnapshotError::Corrupt(format!(
                "{shard_count} shards exceed the policy ceiling {}",
                policy.max_shards
            )));
        }
        let mut bounds: Vec<K> = Vec::with_capacity((shard_count - 1).min(1 << 16));
        for _ in 1..shard_count {
            bounds.push(K::decode(r)?);
        }
        if !bounds.windows(2).all(|w| w[0].cmp(&w[1]).is_lt()) {
            return Err(SnapshotError::Corrupt("split keys must be strictly ascending".into()));
        }
        let map = Self::shell(ListBuilder::from_config(header.config()), header.seed, policy);
        let mut shards = Vec::with_capacity(shard_count);
        let mut total = 0u64;
        for i in 0..shard_count {
            let len = usize::decode(r)?;
            let run: Vec<(K, V)> =
                lll_api::persist::decode_sorted_run(r, len, &format!("shard {i}"))?;
            if let (Some((first, _)), Some(j)) = (run.first(), i.checked_sub(1)) {
                if first.cmp(&bounds[j]).is_lt() {
                    return Err(SnapshotError::Corrupt(format!(
                        "shard {i} holds a key below its span"
                    )));
                }
            }
            if let (Some((last, _)), Some(hi)) = (run.last(), bounds.get(i)) {
                if last.cmp(hi).is_ge() {
                    return Err(SnapshotError::Corrupt(format!(
                        "shard {i} holds a key above its span"
                    )));
                }
            }
            total += run.len() as u64;
            let mut shard = map.fresh_shard();
            shard.extend_sorted(run);
            shards.push(Arc::new(Shard::new(shard)));
        }
        if total != header.count {
            return Err(SnapshotError::Corrupt(format!(
                "shard runs hold {total} entries, header claims {}",
                header.count
            )));
        }
        map.install(Directory { bounds, shards });
        Ok(map)
    }

    /// Verify the directory invariants: split keys strictly ascending, one
    /// more shard than split keys, every shard's keys inside its span and
    /// ascending. Runs under the maintenance mutex so the picture is
    /// stable. O(n); test/diagnostic use only.
    pub fn check_invariants(&self) {
        let _m = mlock(&self.maint);
        let dir = rcu_snapshot(&self.dir);
        assert_eq!(dir.shards.len(), dir.bounds.len() + 1, "directory shape");
        assert!(
            dir.bounds.windows(2).all(|w| w[0] < w[1]),
            "split keys must be strictly ascending"
        );
        for (i, s) in dir.shards.iter().enumerate() {
            let shard = rlock(&s.map, Level::Shard);
            assert_ne!(
                s.epoch.load(Ordering::Acquire),
                RETIRED,
                "shard {i} of the live directory is retired"
            );
            let keys: Vec<K> = shard.keys().cloned().collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "shard {i} keys unsorted");
            if let (Some(first), Some(lo)) =
                (keys.first(), i.checked_sub(1).map(|j| &dir.bounds[j]))
            {
                assert!(lo <= first, "shard {i} holds a key below its span");
            }
            if let (Some(last), Some(hi)) = (keys.last(), dir.bounds.get(i)) {
                assert!(last < hi, "shard {i} holds a key above its span");
            }
        }
    }
}

impl<K: Ord + Clone + fmt::Debug, V> fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Walks shards optimistically, like `len`.
        let mut restarts = 0u32;
        'retry: loop {
            if restarts > 0 {
                std::thread::yield_now();
            }
            restarts += 1;
            let dir = rcu_load(&self.dir);
            let mut lens = Vec::with_capacity(dir.shards.len());
            for shard in &dir.shards {
                match shard.read(&self.read_obs, |m| m.len()) {
                    ReadAttempt::Hit(n) => lens.push(n),
                    ReadAttempt::Retired => continue 'retry,
                }
            }
            return f
                .debug_struct("ShardedMap")
                .field("shards", &lens)
                .field("bounds", &dir.bounds)
                .finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ShardedBuilder;
    use std::collections::BTreeMap;

    fn tiny() -> ShardedBuilder {
        // Aggressive thresholds so small tests exercise splits and merges.
        ShardedBuilder::new().max_shard_len(32).min_shard_len(8).seed(7)
    }

    #[test]
    fn point_ops_match_btreemap_through_splits_and_merges() {
        let map = tiny().build::<u64, u64>();
        let mut model = BTreeMap::new();
        let mut x = 42u64;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 500;
            if !x.is_multiple_of(4) {
                assert_eq!(map.insert(k, i), model.insert(k, i), "insert({k})");
            } else {
                assert_eq!(map.remove(&k), model.remove(&k), "remove({k})");
            }
            assert_eq!(map.get(&k), model.get(&k).copied());
        }
        map.check_invariants();
        assert_eq!(map.len(), model.len());
        let stats = map.stats();
        assert!(stats.splits > 0, "workload should split shards");
        assert_eq!(map.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn drain_forces_merges_back_to_one_shard() {
        let map = tiny().build::<u32, ()>();
        for k in 0..600u32 {
            map.insert(k, ());
        }
        assert!(map.shard_count() > 4, "600 entries over max 32 must shard");
        map.check_invariants();
        for k in 0..595u32 {
            map.remove(&k);
        }
        map.check_invariants();
        let stats = map.stats();
        assert!(stats.merges > 0, "drain must merge shards");
        assert!(stats.shards < 4, "5 survivors should collapse shards, got {}", stats.shards);
        assert_eq!(map.to_vec(), (595..600).map(|k| (k, ())).collect::<Vec<_>>());
    }

    #[test]
    fn range_stitches_across_shards() {
        let map = tiny().build::<u32, u32>();
        let mut model = BTreeMap::new();
        for k in (0..900u32).step_by(3) {
            map.insert(k, k * 2);
            model.insert(k, k * 2);
        }
        assert!(map.shard_count() > 2);
        for (lo, hi) in [(0, 900), (1, 2), (100, 700), (899, 900), (450, 450)] {
            assert_eq!(
                map.range(lo..hi),
                model.range(lo..hi).map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
                "[{lo}, {hi})"
            );
            assert_eq!(
                map.range(lo..=hi),
                model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
                "[{lo}, {hi}]"
            );
        }
        assert_eq!(map.to_vec().len(), model.len());
        let mut visited = Vec::new();
        map.for_each(|k, v| visited.push((*k, *v)));
        assert_eq!(visited, map.to_vec());
    }

    #[test]
    fn bulk_extend_pre_shards_and_merges_runs() {
        let map = tiny().build_from_sorted::<u64, u64>((0..1000).map(|k| (k, k)).collect());
        assert_eq!(map.len(), 1000);
        assert!(map.shard_count() > 8, "bulk load must pre-shard");
        map.check_invariants();
        // A second sorted batch interleaves: overlaps replace, gaps splice.
        map.extend_sorted((500..1500).map(|k| (k, k + 1)).collect());
        map.check_invariants();
        assert_eq!(map.len(), 1500);
        assert_eq!(map.get(&499), Some(499));
        assert_eq!(map.get(&500), Some(501));
        assert_eq!(map.get(&1499), Some(1500));
    }

    #[test]
    fn underfull_shard_merges_left_when_right_does_not_fit() {
        // Three shards of 32 (policy band [16, 64]); fatten the right one,
        // then drain the middle below min: merging right would overflow
        // (15 + 60 > 64), so maintenance must merge left (15 + 32 <= 64).
        let map = ShardedBuilder::new()
            .max_shard_len(64)
            .min_shard_len(16)
            .seed(5)
            .build_from_sorted::<u32, u32>((0..96).map(|k| (k, k)).collect());
        assert_eq!(map.shard_count(), 3);
        for k in 96..124 {
            map.insert(k, k);
        }
        assert_eq!(map.shard_count(), 3, "fattening must not split yet");
        for k in 32..49 {
            map.remove(&k);
        }
        let stats = map.stats();
        assert_eq!(stats.merges, 1, "crossing min must merge exactly once");
        assert_eq!(stats.shards, 2, "left-neighbor merge must collapse the pair");
        map.check_invariants();
        let expected: Vec<(u32, u32)> =
            (0..124).filter(|k| !(32..49).contains(k)).map(|k| (k, k)).collect();
        assert_eq!(map.to_vec(), expected);
    }

    #[test]
    fn total_moves_is_monotone_across_resharding() {
        let map = tiny().build::<u32, u32>();
        for k in 0..400 {
            map.insert(k, k);
        }
        let grown = map.stats();
        assert!(grown.splits > 0);
        for k in 0..395 {
            map.remove(&k);
        }
        let drained = map.stats();
        assert!(drained.merges > 0);
        assert!(
            drained.total_moves >= grown.total_moves,
            "retired backends' moves must not vanish: {} < {}",
            drained.total_moves,
            grown.total_moves
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_directory_and_entries() {
        let map = tiny().build::<u64, u64>();
        for k in 0..700u64 {
            map.insert(k, k * 3);
        }
        for k in (0..700).step_by(5) {
            map.remove(&k);
        }
        assert!(map.shard_count() > 4, "workload must shard");
        let mut buf = Vec::new();
        map.write_snapshot(&mut buf).unwrap();
        let back = super::ShardedMap::<u64, u64>::read_snapshot(&mut buf.as_slice()).unwrap();
        back.check_invariants();
        // The split-key directory is persisted, not re-derived: the
        // restored map has the same shards with the same key spans.
        assert_eq!(back.shard_count(), map.shard_count());
        assert_eq!(format!("{back:?}"), format!("{map:?}"));
        assert_eq!(back.to_vec(), map.to_vec());
        let (pm, pb) = (map.policy(), back.policy());
        assert_eq!(
            (pm.max_shard_len, pm.min_shard_len, pm.max_shards),
            (pb.max_shard_len, pb.min_shard_len, pb.max_shards)
        );
        // The restored map keeps maintaining itself.
        for k in 1000..1200u64 {
            back.insert(k, k);
        }
        back.check_invariants();
        assert_eq!(back.len(), map.len() + 200);
    }

    #[test]
    fn snapshot_of_single_shard_and_string_keys() {
        let map = ShardedBuilder::new().build::<String, u32>();
        for (i, name) in ["ash", "beech", "cedar"].iter().enumerate() {
            map.insert(name.to_string(), i as u32);
        }
        let mut buf = Vec::new();
        map.write_snapshot(&mut buf).unwrap();
        let back = super::ShardedMap::<String, u32>::read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(back.to_vec(), map.to_vec());
        assert_eq!(back.shard_count(), 1);
        // Truncated input errors (every strict prefix), never panics.
        for cut in (0..buf.len()).step_by(7) {
            assert!(
                super::ShardedMap::<String, u32>::read_snapshot(&mut &buf[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn borrowed_key_queries() {
        let map = ShardedBuilder::new().max_shard_len(4).min_shard_len(1).build::<String, u32>();
        for (i, name) in
            ["ash", "beech", "cedar", "elm", "fir", "oak", "pine", "yew"].iter().enumerate()
        {
            map.insert(name.to_string(), i as u32);
        }
        assert!(map.shard_count() > 1);
        assert_eq!(map.get("cedar"), Some(2));
        assert!(map.contains_key("oak"));
        assert!(!map.contains_key("maple"));
        map.get_mut_with("elm", |v| *v += 10);
        assert_eq!(map.get("elm"), Some(13));
        assert_eq!(map.get_with("fir", |v| v + 1), Some(5));
        assert_eq!(map.remove("ash"), Some(0));
        assert_eq!(map.remove("ash"), None);
        assert_eq!(map.first_key_value(), Some(("beech".to_string(), 1)));
        assert_eq!(map.last_key_value(), Some(("yew".to_string(), 7)));
        map.check_invariants();
    }

    #[test]
    fn extend_from_unsorted_sorts_dedups_last_write_wins() {
        let map = tiny().build::<u32, u32>();
        // Shuffled batch with duplicate keys: the later arrival must win.
        let landed = map.extend_from_unsorted(vec![(9, 1), (3, 1), (9, 2), (1, 1), (3, 2), (9, 3)]);
        assert_eq!(landed, 3, "three unique keys");
        assert_eq!(map.to_vec(), vec![(1, 1), (3, 2), (9, 3)]);
        // Routes through the bulk path, never per-op inserts.
        let stats = map.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_entries, 3);
        // A big shuffled batch still pre-shards via extend_sorted.
        let mut big: Vec<(u32, u32)> = (0..500).map(|k| (k * 7 % 500, k)).collect();
        big.reverse();
        map.extend_from_unsorted(big);
        map.check_invariants();
        assert_eq!(map.len(), 500);
        assert!(map.shard_count() > 4, "bulk merge must still split shards");
    }

    #[test]
    fn range_limited_caps_and_reports_truncation() {
        let map = tiny().build_from_sorted::<u32, u32>((0..300).map(|k| (k, k)).collect());
        assert!(map.shard_count() > 2);
        let (hits, truncated) = map.range_limited(10..290, 5);
        assert_eq!(hits, (10..15).map(|k| (k, k)).collect::<Vec<_>>());
        assert!(truncated, "280 candidates cut to 5 must report truncation");
        let (hits, truncated) = map.range_limited(295.., usize::MAX);
        assert_eq!(hits.len(), 5);
        assert!(!truncated);
        let (hits, truncated) = map.range_limited(100..105, 5);
        assert_eq!(hits.len(), 5);
        assert!(!truncated, "exactly-limit scans are not truncated");
        let (hits, truncated) = map.range_limited(.., 0);
        assert!(hits.is_empty());
        assert!(truncated, "limit 0 over a non-empty range is truncated");
    }

    #[test]
    fn per_shard_observability_tracks_ops_and_resharding() {
        let map = tiny().build::<u32, u32>();
        for k in 0..200 {
            map.insert(k, k);
        }
        for k in (0..200).step_by(2) {
            map.get(&k);
            map.contains_key(&k);
        }
        map.get_mut_with(&7, |v| *v += 1);
        let grown = map.stats();
        assert_eq!(grown.shard_reads.len(), grown.shards);
        assert_eq!(grown.shard_writes.len(), grown.shards);
        assert_eq!(grown.shard_reads.iter().sum::<u64>(), 200, "100 gets + 100 contains");
        assert_eq!(grown.shard_writes.iter().sum::<u64>(), 201, "200 inserts + 1 get_mut");
        // Debug builds time lock waits/holds; point ops must have charged
        // a nonzero hold span somewhere.
        if cfg!(debug_assertions) {
            assert!(grown.lock_hold_nanos > 0, "debug builds time lock holds");
        } else {
            assert_eq!(grown.lock_hold_nanos, 0, "release builds skip the clock");
        }
        // Skew accessors bracket the mean.
        assert!(grown.min_shard_len() as f64 <= grown.mean_shard_len());
        assert!(grown.mean_shard_len() <= grown.max_shard_len() as f64);
        // The trace ring saw every split, in order.
        let events = map.trace().snapshot();
        let splits = events.iter().filter(|e| e.kind == lll_obs::TraceKind::Split).count() as u64;
        assert_eq!(splits, grown.splits, "one Split event per split");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq), "events sorted by seq");
        // Merges fold the retired shard's counts into the survivor: totals
        // stay monotone across a full drain.
        for k in 0..195 {
            map.remove(&k);
        }
        let drained = map.stats();
        assert!(drained.merges > 0, "drain must merge");
        assert_eq!(
            drained.shard_writes.iter().sum::<u64>(),
            grown.shard_writes.iter().sum::<u64>() + 195,
            "write counts survive merges"
        );
        assert_eq!(drained.shard_reads.iter().sum::<u64>(), 200, "read counts survive merges");
        assert!(map.trace().snapshot().iter().any(|e| e.kind == lll_obs::TraceKind::Merge));
        map.check_invariants();
    }

    #[test]
    fn stats_track_occupancy() {
        let map = tiny().build::<u32, u32>();
        for k in 0..200 {
            map.insert(k, k);
        }
        let stats = map.stats();
        assert_eq!(stats.len, 200);
        assert_eq!(stats.shard_lens.iter().sum::<usize>(), 200);
        assert_eq!(stats.shard_lens.len(), stats.shards);
        assert_eq!(stats.shard_capacities.len(), stats.shards);
        assert!(stats.total_moves > 0);
        assert_eq!(stats.batches, 0, "point inserts are not batches");
        assert!(stats.shard_lens.iter().zip(&stats.shard_capacities).all(|(l, c)| l <= c));
        let line = format!("{stats}");
        assert!(line.contains("200 entries"), "display: {line}");
    }

    #[test]
    fn uncontended_reads_stay_on_the_optimistic_path() {
        let map = tiny().build::<u32, u32>();
        for k in 0..100 {
            map.insert(k, k);
        }
        let before = map.stats();
        for k in 0..100 {
            assert_eq!(map.get(&k), Some(k));
            assert!(map.contains_key(&k));
        }
        let stats = map.stats();
        assert!(
            stats.read_optimistic_hits >= before.read_optimistic_hits + 200,
            "200 point reads must all hit optimistically: {} -> {}",
            before.read_optimistic_hits,
            stats.read_optimistic_hits
        );
        assert_eq!(stats.read_lock_fallbacks, 0, "uncontended reads never fall back");
        assert_eq!(stats.read_retries, 0, "uncontended reads never retry");
        assert_eq!(stats.read_retry_p99, 0, "empty histogram reports 0");
        // The shared handles a server would adopt read the same counters
        // (the stats() pass itself lands a hit per shard, so >=).
        let handles = map.read_path_metrics();
        assert!(handles.optimistic_hits.get() >= stats.read_optimistic_hits);
        assert_eq!(handles.lock_fallbacks.get(), 0);
    }

    #[test]
    fn writes_advance_shard_epochs_and_reads_still_hit() {
        let map = ShardedBuilder::new().seed(3).build::<u32, u32>();
        for round in 0..5u32 {
            for k in 0..50 {
                map.insert(k, k + round);
            }
            for k in 0..50 {
                assert_eq!(map.get(&k), Some(k + round), "round {round}");
            }
        }
        // Single-threaded: every read raced no writer, so all were
        // optimistic despite constant epoch churn between them.
        let stats = map.stats();
        assert_eq!(stats.read_lock_fallbacks, 0);
        assert!(stats.read_optimistic_hits >= 250);
    }
}
