//! Runtime enforcement of the locking protocol around the RCU'd
//! directory.
//!
//! The crate's invariant has three parts, enforced twice — statically by
//! `lll-check` (every acquisition site names its [`Level`], and the linter
//! simulates guard lifetimes lexically) and dynamically by the debug-build
//! tracker in this module, which counts the guards each thread holds and
//! panics the moment an acquisition would invert the order:
//!
//! 1. The **maintenance mutex** (`ShardedMap::maint`) is the outermost
//!    level: splits, merges, batches, and snapshots serialize under it.
//!    It is acquired only with no shard guard and no RCU guard live — a
//!    thread that pinned a directory borrow and then blocked on
//!    maintenance would deadlock the publisher's grace wait.
//! 2. Each **shard lock** (`RwLock<LabelMap>`) guards one rebalance
//!    domain. Point operations hold at most one; only a maintenance
//!    holder may stack several (merges lock a neighboring pair, snapshots
//!    read-lock every shard for one atomic picture).
//! 3. **RCU guards** ([`rcu_load`]) pin a directory snapshot without any
//!    lock. They nest freely under anything, but publication
//!    ([`rcu_publish`]) requires the maintenance mutex and *no* live shard
//!    or RCU guard on the publishing thread: a shard guard could deadlock
//!    a fallback reader that pinned the old directory, and an own RCU
//!    guard would deadlock the grace wait against itself.
//!
//! The check runs *before* blocking, so an ordering bug surfaces as an
//! immediate panic with a message instead of a silent deadlock. In release
//! builds the tracker compiles to nothing — [`Tracked`] is a newtype over
//! the guard and the token is a zero-sized no-op — except for one
//! always-on per-thread count of maintenance acquisitions
//! ([`maintenance_acquisitions`]), which the release-mode stress suite
//! uses to prove reader threads never touch the directory lock.

use crate::rcu::{RcuCell, RcuGuard};
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// The lock levels of the protocol, outermost first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Level {
    /// The structural-maintenance mutex (`ShardedMap::maint`): splits,
    /// merges, batches, snapshots.
    Maintenance,
    /// One shard's `LabelMap` (an entry of `Directory::shards`).
    Shard,
}

thread_local! {
    /// Always-on (release builds included): how many times this thread has
    /// acquired the maintenance mutex. Cheap — maintenance is rare by
    /// design — and it lets release-mode stress tests assert that reader
    /// threads never took the directory's only lock.
    static MAINT_ACQUIRED: Cell<u64> = const { Cell::new(0) };
}

/// How many times **this thread** has acquired the maintenance mutex over
/// its lifetime. Diagnostic: the read path must never bump it, and the
/// concurrency stress suite asserts exactly that from its reader threads.
pub fn maintenance_acquisitions() -> u64 {
    MAINT_ACQUIRED.with(|c| c.get())
}

#[cfg(debug_assertions)]
mod tracker {
    use super::Level;
    use std::cell::Cell;

    thread_local! {
        /// (maintenance, shard, rcu) guard counts live on this thread.
        static HELD: Cell<(u32, u32, u32)> = const { Cell::new((0, 0, 0)) };
    }

    /// RAII witness of one lock guard. Acquired *before* blocking on the
    /// lock — a would-be self-deadlock panics instead of hanging — and
    /// dropped *after* the guard it tracks (field order in `Tracked`
    /// guarantees the lock is released first).
    pub(crate) struct Token {
        level: Level,
    }

    impl Token {
        pub(crate) fn acquire(level: Level) -> Self {
            HELD.with(|h| {
                let (maint, shard, rcu) = h.get();
                match level {
                    Level::Maintenance => {
                        assert!(
                            shard == 0,
                            "lock-order inversion: maintenance lock requested while {shard} shard \
                             guard(s) are live (order is maintenance → shard)"
                        );
                        assert!(
                            rcu == 0,
                            "lock-order inversion: maintenance lock requested while {rcu} RCU \
                             guard(s) pin the directory (a publisher's grace wait would deadlock)"
                        );
                        assert!(
                            maint == 0,
                            "lock-order inversion: maintenance lock re-entered on one thread \
                             (Mutex is not re-entrant)"
                        );
                        h.set((maint + 1, shard, rcu));
                    }
                    Level::Shard => {
                        assert!(
                            shard == 0 || maint > 0,
                            "lock-order inversion: a second shard lock requested without the \
                             maintenance lock (point ops hold at most one shard)"
                        );
                        h.set((maint, shard + 1, rcu));
                    }
                }
            });
            Token { level }
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|h| {
                let (maint, shard, rcu) = h.get();
                match self.level {
                    Level::Maintenance => h.set((maint - 1, shard, rcu)),
                    Level::Shard => h.set((maint, shard - 1, rcu)),
                }
            });
        }
    }

    /// RAII witness of one RCU directory borrow.
    pub(crate) struct RcuToken;

    impl RcuToken {
        pub(crate) fn acquire() -> Self {
            HELD.with(|h| {
                let (maint, shard, rcu) = h.get();
                h.set((maint, shard, rcu + 1));
            });
            RcuToken
        }
    }

    impl Drop for RcuToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let (maint, shard, rcu) = h.get();
                h.set((maint, shard, rcu - 1));
            });
        }
    }

    /// Publication preconditions (see the module docs, rule 3).
    pub(crate) fn assert_publish_safe() {
        HELD.with(|h| {
            let (maint, shard, rcu) = h.get();
            assert!(
                maint > 0,
                "rcu_publish without the maintenance lock: publication must be serialized"
            );
            assert!(
                shard == 0,
                "rcu_publish while {shard} shard guard(s) are live: a fallback reader pinning \
                 the old directory could block on them and deadlock the grace wait"
            );
            assert!(
                rcu == 0,
                "rcu_publish while {rcu} RCU guard(s) are live on the publishing thread: the \
                 grace wait would deadlock against itself"
            );
        });
    }
}

#[cfg(not(debug_assertions))]
mod tracker {
    /// Release builds: no state, no checks, no code.
    pub(crate) struct Token;

    impl Token {
        #[inline(always)]
        pub(crate) fn acquire(_level: super::Level) -> Self {
            Token
        }
    }

    pub(crate) struct RcuToken;

    impl RcuToken {
        #[inline(always)]
        pub(crate) fn acquire() -> Self {
            RcuToken
        }
    }

    #[inline(always)]
    pub(crate) fn assert_publish_safe() {}
}

/// A lock guard paired with its order-tracker token. Derefs to the
/// guarded value exactly like the bare guard would.
pub(crate) struct Tracked<G> {
    // Field order is load-bearing: `guard` drops first, so the lock is
    // released before the token decrements this thread's hold count.
    guard: G,
    _order: tracker::Token,
}

impl<G: Deref> Deref for Tracked<G> {
    type Target = G::Target;

    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Tracked<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

/// Shared-lock acquisition that survives a poisoned lock: the maps hold no
/// invariant that a panicking reader could have broken mid-flight, and a
/// panicking *writer* aborts the whole differential test run anyway — so
/// recovery beats cascading poison panics across unrelated threads.
pub(crate) fn rlock<T>(lock: &RwLock<T>, level: Level) -> Tracked<RwLockReadGuard<'_, T>> {
    let order = tracker::Token::acquire(level);
    Tracked { guard: lock.read().unwrap_or_else(|e| e.into_inner()), _order: order }
}

/// Non-blocking [`rlock`]: `None` if a writer holds the lock right now.
/// This is the optimistic read path's probe — the tracker check still runs
/// (an inversion is a bug whether or not the lock happened to be free).
pub(crate) fn try_rlock<T>(
    lock: &RwLock<T>,
    level: Level,
) -> Option<Tracked<RwLockReadGuard<'_, T>>> {
    let order = tracker::Token::acquire(level);
    let guard = match lock.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => return None,
    };
    Some(Tracked { guard, _order: order })
}

/// Exclusive-lock counterpart of [`rlock`].
pub(crate) fn wlock<T>(lock: &RwLock<T>, level: Level) -> Tracked<RwLockWriteGuard<'_, T>> {
    let order = tracker::Token::acquire(level);
    Tracked { guard: lock.write().unwrap_or_else(|e| e.into_inner()), _order: order }
}

/// Acquire the maintenance mutex — the outermost level. Poison recovery as
/// in [`rlock`]; also bumps the always-on per-thread acquisition count
/// behind [`maintenance_acquisitions`].
pub(crate) fn mlock<T>(lock: &Mutex<T>) -> Tracked<MutexGuard<'_, T>> {
    let order = tracker::Token::acquire(Level::Maintenance);
    MAINT_ACQUIRED.with(|c| c.set(c.get() + 1));
    Tracked { guard: lock.lock().unwrap_or_else(|e| e.into_inner()), _order: order }
}

/// An RCU directory borrow paired with its tracker token. Derefs to the
/// published value.
pub(crate) struct TrackedRcu<'a, T> {
    // Field order is load-bearing, as in `Tracked`: the borrow ends before
    // the token decrements the count.
    guard: RcuGuard<'a, T>,
    _order: tracker::RcuToken,
}

impl<T> Deref for TrackedRcu<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Pin and borrow the currently published directory — the reader-side
/// entry point. Lock-free: never blocks, never allocates.
// lll-check: no-alloc
pub(crate) fn rcu_load<T>(cell: &RcuCell<T>) -> TrackedRcu<'_, T> {
    let order = tracker::RcuToken::acquire();
    TrackedRcu { guard: cell.load(), _order: order }
}

/// Clone out the currently published directory `Arc` (for maintenance
/// walks that must not pin a grace period across shard-lock waits).
pub(crate) fn rcu_snapshot<T>(cell: &RcuCell<T>) -> Arc<T> {
    cell.snapshot()
}

/// Publish a new directory and retire the old one after its grace period.
/// Debug builds enforce the publication preconditions (maintenance held,
/// no shard or RCU guard live on this thread) *before* the swap.
pub(crate) fn rcu_publish<T>(cell: &RcuCell<T>, new: Arc<T>) {
    tracker::assert_publish_safe();
    cell.replace(new);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_orders_are_silent() {
        let maint = Mutex::new(());
        let shard_a = RwLock::new(0u32);
        let shard_b = RwLock::new(0u32);
        let cell = RcuCell::new(Arc::new(1u32));
        {
            // The read path: RCU borrow, then one shard.
            let d = rcu_load(&cell);
            let a = rlock(&shard_a, Level::Shard);
            assert_eq!(*d, 1 + *a);
        }
        {
            // The optimistic probe is a shard acquisition like any other.
            let _d = rcu_load(&cell);
            let probe = try_rlock(&shard_a, Level::Shard);
            assert!(probe.is_some(), "uncontended probe must succeed");
        }
        {
            // Scans: one shard at a time, sequentially, under one borrow.
            let _d = rcu_load(&cell);
            for s in [&shard_a, &shard_b] {
                let g = rlock(s, Level::Shard);
                assert_eq!(*g, 0);
            }
        }
        {
            // Maintenance stacks shard guards (merge locks a pair) and
            // publishes with all of them released.
            let _m = mlock(&maint);
            {
                let _a = wlock(&shard_a, Level::Shard);
                let _b = wlock(&shard_b, Level::Shard);
            }
            rcu_publish(&cell, Arc::new(2));
        }
        assert_eq!(*rcu_load(&cell), 2);
        assert!(maintenance_acquisitions() >= 1, "mlock bumps the always-on count");
    }

    #[test]
    fn try_rlock_reports_writer_contention() {
        let shard = RwLock::new(0u32);
        let w = wlock(&shard, Level::Shard);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(try_rlock(&shard, Level::Shard).is_none(), "writer held: must not block");
            });
        });
        drop(w);
        assert!(try_rlock(&shard, Level::Shard).is_some());
    }

    #[test]
    fn tracker_state_survives_a_panic() {
        // An inversion panic must unwind cleanly: the poisoned attempt's
        // guards drop, and the thread can lock legally again.
        let maint = Mutex::new(());
        let shard = RwLock::new(0u32);
        if cfg!(debug_assertions) {
            let result = std::panic::catch_unwind(|| {
                let _s = rlock(&shard, Level::Shard);
                let _m = mlock(&maint);
            });
            assert!(result.is_err(), "inversion must panic in debug builds");
        }
        let _m = mlock(&maint);
        let _s = rlock(&shard, Level::Shard);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "lock-order inversion: maintenance lock requested while 1 shard")
    )]
    fn maintenance_under_shard_panics_in_debug() {
        let maint = Mutex::new(());
        let shard = RwLock::new(0u32);
        let _s = rlock(&shard, Level::Shard);
        // In release builds the tracker is compiled out and these are two
        // unrelated locks, so the body completes without panicking and the
        // should_panic expectation is compiled out with it. The same
        // gating pattern protects every inversion test below: the release
        // body simply skips the offending acquisition.
        if cfg!(debug_assertions) {
            let _m = mlock(&maint);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "maintenance lock requested while 1 RCU guard")
    )]
    fn maintenance_under_rcu_guard_panics_in_debug() {
        let maint = Mutex::new(());
        let cell = RcuCell::new(Arc::new(0u32));
        let _d = rcu_load(&cell);
        if cfg!(debug_assertions) {
            let _m = mlock(&maint);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "lock-order inversion: a second shard lock")
    )]
    fn two_shards_without_maintenance_panic_in_debug() {
        let shard_a = RwLock::new(0u32);
        let shard_b = RwLock::new(0u32);
        let _a = rlock(&shard_a, Level::Shard);
        if cfg!(debug_assertions) {
            let _b = rlock(&shard_b, Level::Shard);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "rcu_publish without the maintenance"))]
    fn publish_without_maintenance_panics_in_debug() {
        let cell = RcuCell::new(Arc::new(0u32));
        if cfg!(debug_assertions) {
            rcu_publish(&cell, Arc::new(1));
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "rcu_publish while 1 RCU guard"))]
    fn publish_with_live_rcu_guard_panics_in_debug() {
        let maint = Mutex::new(());
        let cell = RcuCell::new(Arc::new(0u32));
        let _m = mlock(&maint);
        // Gated even at the call: in release the grace wait would truly
        // deadlock against this thread's own live guard.
        if cfg!(debug_assertions) {
            let _d = rcu_load(&cell);
            rcu_publish(&cell, Arc::new(1));
        }
    }
}
