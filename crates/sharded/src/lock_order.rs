//! Runtime enforcement of the two-level locking protocol.
//!
//! The crate's invariant — directory before shard, at most one shard at a
//! time, never the reverse — is enforced twice: statically by `lll-check`
//! (every acquisition site names its [`Level`], and the linter simulates
//! guard lifetimes lexically) and dynamically by the debug-build tracker
//! in this module, which counts the guards each thread holds and panics
//! the moment an acquisition would invert the order. The check runs
//! *before* blocking on the `RwLock`, so an ordering bug surfaces as an
//! immediate panic with a message instead of a silent deadlock. In
//! release builds the tracker compiles to nothing: [`Tracked`] is a
//! newtype over the guard and the token is a zero-sized no-op.

use std::ops::{Deref, DerefMut};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The two lock levels of the protocol, outermost first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Level {
    /// The split-key table + shard vector (`ShardedMap::dir`).
    Directory,
    /// One shard's `LabelMap` (an entry of `Directory::shards`).
    Shard,
}

#[cfg(debug_assertions)]
mod tracker {
    use super::Level;
    use std::cell::Cell;

    thread_local! {
        /// (directory, shard) guard counts live on this thread.
        static HELD: Cell<(u32, u32)> = const { Cell::new((0, 0)) };
    }

    /// RAII witness of one guard. Acquired *before* blocking on the lock
    /// — a would-be self-deadlock panics instead of hanging — and dropped
    /// *after* the guard it tracks (field order in `Tracked` guarantees
    /// the lock is released first).
    pub(crate) struct Token {
        level: Level,
    }

    impl Token {
        pub(crate) fn acquire(level: Level) -> Self {
            HELD.with(|h| {
                let (dir, shard) = h.get();
                match level {
                    Level::Directory => {
                        assert!(
                            shard == 0,
                            "lock-order inversion: directory lock requested while {shard} shard \
                             guard(s) are live (order is directory → shard)"
                        );
                        assert!(
                            dir == 0,
                            "lock-order inversion: directory lock re-entered on one thread \
                             (RwLock is not re-entrant)"
                        );
                        h.set((dir + 1, shard));
                    }
                    Level::Shard => {
                        assert!(
                            shard == 0,
                            "lock-order inversion: a second shard lock requested while one is \
                             live (at most one shard at a time)"
                        );
                        h.set((dir, shard + 1));
                    }
                }
            });
            Token { level }
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|h| {
                let (dir, shard) = h.get();
                match self.level {
                    Level::Directory => h.set((dir - 1, shard)),
                    Level::Shard => h.set((dir, shard - 1)),
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod tracker {
    /// Release builds: no state, no checks, no code.
    pub(crate) struct Token;

    impl Token {
        #[inline(always)]
        pub(crate) fn acquire(_level: super::Level) -> Self {
            Token
        }
    }
}

/// A lock guard paired with its order-tracker token. Derefs to the
/// guarded value exactly like the bare guard would.
pub(crate) struct Tracked<G> {
    // Field order is load-bearing: `guard` drops first, so the lock is
    // released before the token decrements this thread's hold count.
    guard: G,
    _order: tracker::Token,
}

impl<G: Deref> Deref for Tracked<G> {
    type Target = G::Target;

    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Tracked<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

/// Shared-lock acquisition that survives a poisoned lock: the maps hold no
/// invariant that a panicking reader could have broken mid-flight, and a
/// panicking *writer* aborts the whole differential test run anyway — so
/// recovery beats cascading poison panics across unrelated threads.
pub(crate) fn rlock<T>(lock: &RwLock<T>, level: Level) -> Tracked<RwLockReadGuard<'_, T>> {
    let order = tracker::Token::acquire(level);
    Tracked { guard: lock.read().unwrap_or_else(|e| e.into_inner()), _order: order }
}

/// Exclusive-lock counterpart of [`rlock`].
pub(crate) fn wlock<T>(lock: &RwLock<T>, level: Level) -> Tracked<RwLockWriteGuard<'_, T>> {
    let order = tracker::Token::acquire(level);
    Tracked { guard: lock.write().unwrap_or_else(|e| e.into_inner()), _order: order }
}

#[cfg(test)]
mod tests {
    use super::{rlock, wlock, Level};
    use std::sync::RwLock;

    #[test]
    fn legal_orders_are_silent() {
        let dir = RwLock::new(0u32);
        let shard_a = RwLock::new(0u32);
        let shard_b = RwLock::new(0u32);
        {
            // Directory, then one shard.
            let d = rlock(&dir, Level::Directory);
            let a = rlock(&shard_a, Level::Shard);
            assert_eq!(*d + *a, 0);
        }
        {
            // One shard at a time, sequentially, is the scan pattern.
            let d = rlock(&dir, Level::Directory);
            for s in [&shard_a, &shard_b] {
                let g = rlock(s, Level::Shard);
                assert_eq!(*g, *d);
            }
        }
        // Exclusive directory with no shard guards is the barrier.
        let mut d = wlock(&dir, Level::Directory);
        *d += 1;
    }

    #[test]
    fn tracker_state_survives_a_panic() {
        // An inversion panic must unwind cleanly: the poisoned attempt's
        // guards drop, and the thread can lock legally again.
        let dir = RwLock::new(0u32);
        let shard = RwLock::new(0u32);
        if cfg!(debug_assertions) {
            let result = std::panic::catch_unwind(|| {
                let _s = rlock(&shard, Level::Shard);
                let _d = rlock(&dir, Level::Directory);
            });
            assert!(result.is_err(), "inversion must panic in debug builds");
        }
        let _d = rlock(&dir, Level::Directory);
        let _s = rlock(&shard, Level::Shard);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "lock-order inversion: directory lock requested")
    )]
    fn directory_under_shard_panics_in_debug() {
        let dir = RwLock::new(0u32);
        let shard = RwLock::new(0u32);
        let _s = rlock(&shard, Level::Shard);
        // In release builds the tracker is compiled out and these are two
        // unrelated RwLocks, so the body completes without panicking and
        // the should_panic expectation is compiled out with it.
        let _d = wlock(&dir, Level::Directory);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "lock-order inversion: a second shard lock")
    )]
    fn two_shard_guards_panic_in_debug() {
        let shard_a = RwLock::new(0u32);
        let shard_b = RwLock::new(0u32);
        let _a = rlock(&shard_a, Level::Shard);
        let _b = rlock(&shard_b, Level::Shard);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "lock-order inversion: directory lock re-entered")
    )]
    fn directory_reentry_panics_in_debug() {
        // Without the tracker this is a guaranteed deadlock on platforms
        // where RwLock read-locks aren't re-entrant; the debug check turns
        // it into a panic *before* blocking. Release builds skip the test
        // body's second acquisition entirely.
        let dir = RwLock::new(0u32);
        let _d1 = rlock(&dir, Level::Directory);
        if cfg!(debug_assertions) {
            let _d2 = rlock(&dir, Level::Directory);
        }
    }
}
