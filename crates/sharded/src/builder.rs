//! [`ShardedBuilder`]: configuration entry point for [`ShardedMap`].

use crate::map::{ShardPolicy, ShardedMap};
use lll_api::{Backend, ListBuilder};

/// Configures and builds a [`ShardedMap`].
///
/// ```
/// use lll_api::Backend;
/// use lll_sharded::ShardedBuilder;
///
/// let map = ShardedBuilder::new()
///     .backend(Backend::Corollary11)
///     .seed(42)
///     .max_shard_len(1024)
///     .build::<u64, String>();
/// map.insert(7, "seven".to_string());
/// assert_eq!(map.get(&7).as_deref(), Some("seven"));
/// ```
#[derive(Clone, Debug)]
pub struct ShardedBuilder {
    backend: Backend,
    seed: u64,
    max_shard_len: usize,
    min_shard_len: usize,
    max_shards: usize,
    initial_capacity: usize,
}

impl Default for ShardedBuilder {
    fn default() -> Self {
        Self {
            backend: Backend::Corollary11,
            seed: 0x5AD,
            max_shard_len: 4096,
            min_shard_len: 256,
            max_shards: 1024,
            initial_capacity: 64,
        }
    }
}

impl ShardedBuilder {
    /// A builder with the recommended defaults: the Corollary 11 layered
    /// backend per shard, shards kept between 256 and 4096 entries, at most
    /// 1024 shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the per-shard list-labeling algorithm.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Seed the per-shard random tapes (each shard derives an independent
    /// stream; runs are deterministic per seed **given** a deterministic
    /// operation interleaving).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Split a shard once it exceeds this many entries. Clamped to ≥ 2.
    pub fn max_shard_len(mut self, len: usize) -> Self {
        self.max_shard_len = len.max(2);
        self
    }

    /// Merge a shard into a neighbor once it falls below this many
    /// entries. Clamped at build time to `max_shard_len / 4` so split
    /// halves are never immediately merge-eligible (maintenance always
    /// terminates; see [`ShardPolicy`]).
    pub fn min_shard_len(mut self, len: usize) -> Self {
        self.min_shard_len = len;
        self
    }

    /// Hard ceiling on the shard count (≥ 1). Past it, shards grow beyond
    /// `max_shard_len` rather than split.
    pub fn max_shards(mut self, n: usize) -> Self {
        self.max_shards = n.max(1);
        self
    }

    /// Initial backend capacity of each fresh shard (a preallocation hint,
    /// as in [`ListBuilder::initial_capacity`]).
    pub fn initial_capacity(mut self, capacity: usize) -> Self {
        self.initial_capacity = capacity.max(1);
        self
    }

    fn policy(&self) -> ShardPolicy {
        ShardPolicy {
            max_shard_len: self.max_shard_len,
            min_shard_len: self.min_shard_len.min(self.max_shard_len / 4),
            max_shards: self.max_shards,
        }
    }

    fn list_builder(&self) -> ListBuilder {
        ListBuilder::new().backend(self.backend).initial_capacity(self.initial_capacity)
    }

    /// An empty [`ShardedMap`] (one shard; splitting is data-driven).
    pub fn build<K: Ord + Clone, V>(&self) -> ShardedMap<K, V> {
        ShardedMap::new(self.list_builder(), self.seed, self.policy())
    }

    /// A [`ShardedMap`] pre-sharded from entries **sorted ascending by
    /// key**: the run is cut into half-full shards, each landed in one
    /// O(shard) bulk sweep. Panics if the keys are not ascending.
    pub fn build_from_sorted<K: Ord + Clone, V>(&self, entries: Vec<(K, V)>) -> ShardedMap<K, V> {
        ShardedMap::from_sorted(self.list_builder(), self.seed, self.policy(), entries)
    }
}
