//! Protocol negatives in the style of `tests/persistence.rs`: every
//! hostile byte stream must yield a typed [`WireError`] — never a panic,
//! never an unbounded allocation.

use lll_server::frame::{read_frame, write_frame, Frame, MAX_FRAME_LEN, WIRE_MAGIC};
use lll_server::{Request, Response, WireError};

fn all_requests() -> Vec<Request> {
    vec![
        Request::Health,
        Request::Stats,
        Request::Get(b"key".to_vec()),
        Request::Insert(b"key".to_vec(), b"value".to_vec()),
        Request::Remove(Vec::new()),
        Request::Contains(b"k".to_vec()),
        Request::Range { start: Some(b"a".to_vec()), end: None, limit: 100 },
        Request::Range { start: None, end: Some(b"z".to_vec()), limit: 0 },
        Request::BatchInsert(vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), Vec::new())]),
        Request::BatchInsert(Vec::new()),
        Request::Snapshot { path: "/tmp/snap.lll".to_string() },
        Request::Drain { final_snapshot: None },
        Request::Drain { final_snapshot: Some("éxodus.snap".to_string()) },
        Request::Metrics,
        Request::Trace,
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Ok,
        Response::Value(None),
        Response::Value(Some(b"v".to_vec())),
        Response::Bool(true),
        Response::Entries { entries: vec![(b"k".to_vec(), b"v".to_vec())], truncated: true },
        Response::Entries { entries: Vec::new(), truncated: false },
        Response::Batched { received: 10, landed: 7 },
        Response::Health(lll_server::HealthReply {
            draining: false,
            active_conns: 3,
            served_requests: 99,
            len: 1000,
        }),
        Response::Stats(lll_server::StatsReply {
            version: 2,
            shards: 4,
            len: 100,
            splits: 3,
            merges: 1,
            batches: 2,
            batched_entries: 64,
            total_moves: 4096,
            read_optimistic_hits: 500,
            read_retries: 17,
            read_lock_fallbacks: 2,
            shard_lens: vec![25, 25, 25, 25],
        }),
        Response::Error("bad day".to_string()),
        Response::Metrics(lll_server::MetricsReply {
            version: 3,
            verbs: vec![lll_server::VerbLatency {
                verb: "get".to_string(),
                count: 42,
                p50_ns: 2048,
                p95_ns: 8192,
                p99_ns: 16384,
                max_ns: 13000,
            }],
            shard_lens: vec![10, 20],
            shard_reads: vec![5, 9],
            shard_writes: vec![30, 31],
            splits: 1,
            merges: 0,
            lock_wait_nanos: 777,
            lock_hold_nanos: 999,
            read_optimistic_hits: 12000,
            read_retries: 64,
            read_lock_fallbacks: 3,
            wal_appends: 4242,
            wal_fsyncs: 99,
            wal_rotations: 7,
            wal_truncated_segments: 5,
            wal_durable_lsn: 4240,
            text: "# TYPE lll_server_request_latency_ns histogram\n".to_string(),
        }),
        Response::Metrics(lll_server::MetricsReply::default()),
        Response::Trace(lll_server::TraceReply {
            events: vec![
                lll_server::TraceEventWire { seq: 0, kind: 4, a: 0, b: 2, c: 64 },
                lll_server::TraceEventWire { seq: 1, kind: 5, a: 0, b: 1, c: 12 },
            ],
        }),
        Response::Trace(lll_server::TraceReply::default()),
    ]
}

fn encode_request(r: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    r.write_to(&mut buf).unwrap();
    buf
}

#[test]
fn requests_roundtrip() {
    for req in all_requests() {
        let buf = encode_request(&req);
        let mut r = buf.as_slice();
        assert_eq!(Request::read_from(&mut r).unwrap(), req);
        assert!(r.is_empty(), "decode must consume exactly one frame: {req:?}");
    }
}

#[test]
fn responses_roundtrip() {
    for resp in all_responses() {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(Response::read_from(&mut r).unwrap(), resp);
        assert!(r.is_empty(), "decode must consume exactly one frame: {resp:?}");
    }
}

#[test]
fn every_prefix_of_every_request_is_truncated() {
    for req in all_requests() {
        let buf = encode_request(&req);
        for cut in 0..buf.len() {
            match Request::read_from(&mut &buf[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("{req:?} prefix {cut}/{}: {other:?}", buf.len()),
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_and_header_flips_are_typed() {
    let req = Request::Insert(b"flip-key".to_vec(), b"flip-value".to_vec());
    let buf = encode_request(&req);
    for pos in 0..buf.len() {
        for bit in 0..8 {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << bit;
            // Never a panic; when it decodes, a flipped bit cannot give
            // back the identical request.
            match Request::read_from(&mut bad.as_slice()) {
                Ok(decoded) => assert_ne!(decoded, req, "byte {pos} bit {bit} no-op flip"),
                Err(
                    WireError::Truncated
                    | WireError::BadMagic
                    | WireError::UnsupportedVersion { .. }
                    | WireError::UnknownOpcode(_)
                    | WireError::FrameTooLarge { .. }
                    | WireError::Corrupt(_)
                    | WireError::Io(_),
                ) => {}
                Err(other) => panic!("byte {pos} bit {bit}: unexpected {other:?}"),
            }
        }
    }
    // The specific header fields produce their specific variants.
    let mut bad = buf.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(Request::read_from(&mut bad.as_slice()), Err(WireError::BadMagic)));
    let mut bad = buf.clone();
    bad[4] = 0x63; // version low byte → 99
    assert!(matches!(
        Request::read_from(&mut bad.as_slice()),
        Err(WireError::UnsupportedVersion { found: 99 })
    ));
    let mut bad = buf.clone();
    bad[6] = 0x7F; // opcode
    assert!(matches!(Request::read_from(&mut bad.as_slice()), Err(WireError::UnknownOpcode(0x7F))));
}

#[test]
fn oversized_declared_lengths_are_rejected_before_allocation() {
    // Frame header declaring a body over the cap: typed error, instantly.
    let mut buf = Vec::new();
    write_frame(&mut buf, 0x03, &[0u8; 4]).unwrap();
    buf[7..11].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    match read_frame(&mut buf.as_slice()) {
        Err(WireError::FrameTooLarge { declared }) => {
            assert_eq!(declared, (MAX_FRAME_LEN + 1) as u64)
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // Inner length lying (a key claiming u64::MAX bytes inside a tiny
    // body): ends at the body boundary → Truncated, no giant reservation.
    let mut body = Vec::new();
    body.extend_from_slice(&u64::MAX.to_le_bytes());
    body.extend_from_slice(b"tiny");
    let mut framed = Vec::new();
    write_frame(&mut framed, 0x03, &body).unwrap(); // Get opcode
    assert!(matches!(Request::read_from(&mut framed.as_slice()), Err(WireError::Truncated)));
}

#[test]
fn unknown_opcodes_are_typed() {
    let mut buf = Vec::new();
    write_frame(&mut buf, 0x55, &[]).unwrap();
    assert!(matches!(Request::read_from(&mut buf.as_slice()), Err(WireError::UnknownOpcode(0x55))));
    assert!(matches!(
        Response::read_from(&mut buf.as_slice()),
        Err(WireError::UnknownOpcode(0x55))
    ));
}

#[test]
fn trailing_bytes_in_a_frame_body_are_corrupt() {
    let mut body = Vec::new();
    lll_server::frame::encode_bytes(&mut body, b"key").unwrap();
    body.push(0xEE); // smuggled byte after the Get payload
    let mut framed = Vec::new();
    write_frame(&mut framed, 0x03, &body).unwrap();
    match Request::read_from(&mut framed.as_slice()) {
        Err(WireError::Corrupt(why)) => assert!(why.contains("trailing"), "{why}"),
        other => panic!("expected Corrupt(trailing), got {other:?}"),
    }
}

#[test]
fn response_error_and_display_are_informative() {
    let errs = [
        WireError::Truncated,
        WireError::BadMagic,
        WireError::UnsupportedVersion { found: 7 },
        WireError::UnknownOpcode(0xAB),
        WireError::FrameTooLarge { declared: 1 << 40 },
        WireError::Corrupt("inner".into()),
        WireError::Remote("server said no".into()),
    ];
    for e in errs {
        assert!(!e.to_string().is_empty());
    }
    let io = WireError::from(std::io::Error::other("socket on fire"));
    assert!(io.to_string().contains("socket on fire"));
    let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
    assert!(matches!(WireError::from(eof), WireError::Truncated));
}

#[test]
fn raw_frames_roundtrip_and_magic_is_pinned() {
    let frame = Frame { opcode: 0x03, body: b"abc".to_vec() };
    let mut buf = Vec::new();
    write_frame(&mut buf, frame.opcode, &frame.body).unwrap();
    // Byte-pinned header: magic, version 1 LE, opcode, length 3 LE.
    assert_eq!(&buf[..4], &WIRE_MAGIC);
    assert_eq!(&buf[4..6], &[1, 0]);
    assert_eq!(buf[6], 0x03);
    assert_eq!(&buf[7..11], &[3, 0, 0, 0]);
    assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), frame);
}
