//! End-to-end service tests: an in-process server on an ephemeral
//! loopback port, exercised through real sockets — verb round trips, a
//! concurrent multi-connection differential against `BTreeMap` models,
//! drain under load (no dropped in-flight responses), and hostile-bytes
//! resilience.

use lll_server::{Client, KvMap, Request, Server, ServerConfig, WireError};
use lll_sharded::{ShardedBuilder, ShardedMap};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn small_shards() -> Arc<KvMap> {
    // Aggressive split thresholds so even small tests cross shard
    // boundaries and exercise the directory.
    Arc::new(ShardedBuilder::new().max_shard_len(64).min_shard_len(8).seed(77).build())
}

fn start(map: Arc<KvMap>) -> lll_server::ServerHandle {
    Server::start(map, ServerConfig::default()).expect("bind ephemeral port")
}

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    (format!("key-{i:08}").into_bytes(), format!("value-{i}").into_bytes())
}

#[test]
fn all_verbs_roundtrip_over_a_real_socket() {
    let mut server = start(small_shards());
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Point verbs.
    assert_eq!(c.get(b"missing").unwrap(), None);
    assert_eq!(c.insert(b"alpha", b"1").unwrap(), None);
    assert_eq!(c.insert(b"alpha", b"2").unwrap().as_deref(), Some(&b"1"[..]));
    assert!(c.contains(b"alpha").unwrap());
    assert!(!c.contains(b"beta").unwrap());
    assert_eq!(c.remove(b"alpha").unwrap().as_deref(), Some(&b"2"[..]));
    assert_eq!(c.remove(b"alpha").unwrap(), None);

    // Batch + range: 300 keys crossing several shards.
    let entries: Vec<_> = (0..300).map(kv).collect();
    assert_eq!(c.batch_insert(entries.clone()).unwrap(), 300);
    let (all, truncated) = c.range(None, None, 1_000).unwrap();
    assert_eq!(all, entries);
    assert!(!truncated);
    let (page, truncated) = c.range(Some(&kv(10).0), Some(&kv(290).0), 7).unwrap();
    assert_eq!(page, entries[10..17].to_vec());
    assert!(truncated, "280 candidates capped at 7 must flag truncation");
    let (tail, truncated) = c.range(Some(&kv(295).0), None, 1_000).unwrap();
    assert_eq!(tail, entries[295..].to_vec());
    assert!(!truncated);

    // Ops surface.
    let health = c.health().unwrap();
    assert!(!health.draining);
    assert_eq!(health.len, 300);
    assert!(health.active_conns >= 1);
    assert!(health.served_requests > 10);
    let stats = c.stats().unwrap();
    assert_eq!(stats.version, 2, "stats reply must be versioned");
    assert_eq!(stats.len, 300);
    assert!(stats.shards > 1, "300 keys over max 64 must shard");
    assert_eq!(stats.shard_lens.iter().sum::<u64>(), 300);
    assert_eq!(stats.shard_lens.len() as u64, stats.shards);
    assert!(stats.batches >= 1, "batch_insert must ride the bulk path");
    assert_eq!(stats.batched_entries, 300);
    assert!(stats.splits > 0);
    assert!(stats.read_optimistic_hits > 0, "point reads ride the lock-free path");
    assert_eq!(stats.read_lock_fallbacks, 0, "a sequential client never contends");

    server.shutdown();
}

#[test]
fn snapshot_verb_streams_a_restorable_snapshot() {
    let mut server = start(small_shards());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let entries: Vec<_> = (0..200).map(kv).collect();
    c.batch_insert(entries.clone()).unwrap();

    let path = std::env::temp_dir().join(format!("lll_server_snap_{}.snap", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    c.snapshot(&path_str).unwrap();

    let file = std::fs::File::open(&path).unwrap();
    let restored: ShardedMap<Vec<u8>, Vec<u8>> =
        ShardedMap::read_snapshot(&mut std::io::BufReader::new(file)).unwrap();
    restored.check_invariants();
    assert_eq!(restored.to_vec(), entries);
    assert_eq!(restored.shard_count(), server.map().shard_count());
    std::fs::remove_file(&path).ok();

    // A snapshot to an unwritable path is a typed remote error, and the
    // connection stays usable afterwards.
    match c.snapshot("/nonexistent-dir/nope.snap") {
        Err(WireError::Remote(msg)) => assert!(msg.contains("snapshot"), "{msg}"),
        other => panic!("expected Remote error, got {other:?}"),
    }
    assert!(c.contains(&kv(0).0).unwrap(), "connection survives a failed verb");

    server.shutdown();
}

#[test]
fn concurrent_clients_match_btreemap_models() {
    let mut server = start(small_shards());
    let addr = server.local_addr();
    const THREADS: u64 = 4;
    const OPS: u64 = 1_500;

    let models: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut model = BTreeMap::new();
                    let mut x = 0x9E37 + tid;
                    for i in 0..OPS {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        // Striped keys: thread-disjoint, so models merge.
                        let (k, v) = kv((x % 400) * THREADS + tid);
                        match x % 10 {
                            0..=5 => {
                                assert_eq!(
                                    c.insert(&k, &v).unwrap(),
                                    model.insert(k, v),
                                    "insert mismatch (thread {tid}, op {i})"
                                );
                            }
                            6..=7 => {
                                assert_eq!(
                                    c.remove(&k).unwrap(),
                                    model.remove(&k),
                                    "remove mismatch (thread {tid}, op {i})"
                                );
                            }
                            8 => {
                                assert_eq!(
                                    c.get(&k).unwrap(),
                                    model.get(&k).cloned(),
                                    "get mismatch (thread {tid}, op {i})"
                                );
                            }
                            _ => {
                                assert_eq!(
                                    c.contains(&k).unwrap(),
                                    model.contains_key(&k),
                                    "contains mismatch (thread {tid}, op {i})"
                                );
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let merged: BTreeMap<Vec<u8>, Vec<u8>> = models.into_iter().flatten().collect();
    let mut c = Client::connect(addr).unwrap();
    let (all, truncated) = c.range(None, None, u64::MAX).unwrap();
    assert!(!truncated);
    assert_eq!(all, merged.into_iter().collect::<Vec<_>>());
    server.map().check_invariants();
    server.shutdown();
}

#[test]
fn drain_under_load_drops_no_acked_response() {
    let mut server = start(small_shards());
    let addr = server.local_addr();
    const THREADS: u64 = 4;
    const MAX_OPS: u64 = 200_000;

    struct Outcome {
        acked: Vec<Vec<u8>>,
        in_doubt: Option<Vec<u8>>,
    }

    let outcomes: Vec<Outcome> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut acked = Vec::new();
                    let mut in_doubt = None;
                    for i in 0..MAX_OPS {
                        let (k, v) = kv(i * THREADS + tid);
                        match c.insert(&k, &v) {
                            Ok(prev) => {
                                assert_eq!(prev, None, "keys are distinct");
                                acked.push(k);
                            }
                            Err(_) => {
                                // The drain closed the connection: the one
                                // unanswered request may or may not have
                                // landed; everything acked before it must
                                // have.
                                in_doubt = Some(k);
                                break;
                            }
                        }
                    }
                    Outcome { acked, in_doubt }
                })
            })
            .collect();
        // Let the writers get going, then drain mid-flight.
        thread::sleep(Duration::from_millis(60));
        server.drain();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    server.join();

    let map = server.map();
    let mut total_acked = 0u64;
    for (tid, outcome) in outcomes.iter().enumerate() {
        assert!(
            outcome.in_doubt.is_some() || outcome.acked.len() == MAX_OPS as usize,
            "thread {tid} stopped early without a connection error"
        );
        total_acked += outcome.acked.len() as u64;
        for k in &outcome.acked {
            assert!(map.contains_key(k), "acked insert missing after drain (thread {tid})");
        }
    }
    assert!(total_acked > 0, "drain fired before any request completed");
    // Nothing landed beyond the acked set plus (at most) one in-doubt
    // request per connection.
    let in_doubt = outcomes.iter().filter(|o| o.in_doubt.is_some()).count() as u64;
    let len = map.len() as u64;
    assert!(
        len >= total_acked && len <= total_acked + in_doubt,
        "map holds {len} entries for {total_acked} acked + {in_doubt} in-doubt"
    );
    map.check_invariants();

    // The drained server refuses further service.
    let mut late = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return, // listener already gone — equally acceptable
    };
    assert!(late.get(b"anything").is_err(), "a drained server must not serve");
}

#[test]
fn drain_verb_with_final_snapshot() {
    let mut server = start(small_shards());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let entries: Vec<_> = (0..150).map(kv).collect();
    c.batch_insert(entries.clone()).unwrap();

    let path = std::env::temp_dir().join(format!("lll_server_drain_{}.snap", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    c.drain(Some(&path_str)).unwrap();
    server.join();
    assert!(server.is_draining());

    let file = std::fs::File::open(&path).unwrap();
    let restored: ShardedMap<Vec<u8>, Vec<u8>> =
        ShardedMap::read_snapshot(&mut std::io::BufReader::new(file)).unwrap();
    assert_eq!(restored.to_vec(), entries);
    std::fs::remove_file(&path).ok();
}

#[test]
fn hostile_bytes_get_a_typed_error_and_the_server_survives() {
    let mut server = start(small_shards());
    let addr = server.local_addr();

    // Garbage magic: the server answers with a typed protocol error
    // frame, then closes that connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    raw.flush().unwrap();
    match lll_server::Response::read_from(&mut &raw) {
        Ok(lll_server::Response::Error(msg)) => assert!(msg.contains("protocol"), "{msg}"),
        other => panic!("expected protocol-error response, got {other:?}"),
    }

    // An oversized declared frame is refused the same way, without the
    // server attempting the allocation.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut huge = Vec::new();
    lll_server::frame::write_frame(&mut huge, 0x03, &[0; 8]).unwrap();
    huge[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&huge[..11]).unwrap();
    raw.flush().unwrap();
    match lll_server::Response::read_from(&mut &raw) {
        Ok(lll_server::Response::Error(msg)) => assert!(msg.contains("protocol"), "{msg}"),
        other => panic!("expected protocol-error response, got {other:?}"),
    }

    // A request the server does not know (response opcode on the request
    // stream) is typed, too.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    lll_server::frame::write_frame(&mut buf, 0x81, &[]).unwrap();
    raw.write_all(&buf).unwrap();
    raw.flush().unwrap();
    assert!(matches!(
        lll_server::Response::read_from(&mut &raw),
        Ok(lll_server::Response::Error(_))
    ));

    // The server is still fully alive for well-formed clients.
    let mut c = Client::connect(addr).unwrap();
    c.insert(b"still", b"serving").unwrap();
    assert_eq!(c.get(b"still").unwrap().as_deref(), Some(&b"serving"[..]));
    server.shutdown();
}

#[test]
fn request_display_types_are_inspectable() {
    // The proto enums are public API: a debug representation and opcode
    // stability matter for tooling.
    assert_eq!(Request::Health.opcode(), 0x01);
    assert_eq!(Request::Drain { final_snapshot: None }.opcode(), 0x0A);
    let req = Request::Get(b"k".to_vec());
    assert!(format!("{req:?}").contains("Get"));
}

#[test]
fn metrics_verb_reports_latencies_shards_and_trace() {
    let mut server = start(small_shards());
    let mut c = Client::connect(server.local_addr()).unwrap();

    // A known verb mix, with the insert round trips timed client-side so
    // the server's reported latencies can be checked differentially.
    let mut client_insert_max_ns = 0u128;
    for i in 0..300u64 {
        let (k, v) = kv(i);
        let t = std::time::Instant::now();
        c.insert(&k, &v).unwrap();
        client_insert_max_ns = client_insert_max_ns.max(t.elapsed().as_nanos());
    }
    for i in 0..120u64 {
        c.get(&kv(i).0).unwrap();
    }
    for i in 0..40u64 {
        c.contains(&kv(i).0).unwrap();
    }
    c.remove(&kv(0).0).unwrap();

    let m = c.metrics().unwrap();
    assert_eq!(m.version, 3);

    // Per-verb accounting matches exactly what this (sole) client sent,
    // in VERBS order.
    assert_eq!(
        m.verbs.iter().map(|v| v.verb.as_str()).collect::<Vec<_>>(),
        lll_server::VERBS.to_vec()
    );
    let verb = |name: &str| m.verbs.iter().find(|v| v.verb == name).unwrap();
    assert_eq!(verb("insert").count, 300);
    assert_eq!(verb("get").count, 120);
    assert_eq!(verb("contains").count, 40);
    assert_eq!(verb("remove").count, 1);
    assert_eq!(verb("snapshot").count, 0, "verbs never sent stay zero");

    // Quantiles are ordered, capped at the exact observed max, and the
    // served verbs actually recorded samples.
    for v in &m.verbs {
        assert!(v.p50_ns <= v.p95_ns, "{}: p50 > p95", v.verb);
        assert!(v.p95_ns <= v.p99_ns, "{}: p95 > p99", v.verb);
        assert!(v.p99_ns <= v.max_ns || v.count == 0, "{}: p99 > max", v.verb);
    }
    assert!(verb("insert").max_ns > 0);

    // Differential check: every server-side handling span nests inside
    // one of the client round trips timed above.
    assert!(
        u128::from(verb("insert").max_ns) <= client_insert_max_ns,
        "server-side insert max {} must sit inside the slowest client round trip {}",
        verb("insert").max_ns,
        client_insert_max_ns
    );

    // Per-shard gauges agree with the workload.
    assert!(m.shard_lens.len() > 1, "300 keys over max 64 must shard");
    assert_eq!(m.shard_lens.iter().sum::<u64>(), 299, "300 inserts - 1 remove");
    assert_eq!(m.shard_reads.len(), m.shard_lens.len());
    assert_eq!(m.shard_writes.len(), m.shard_lens.len());
    assert_eq!(m.shard_reads.iter().sum::<u64>(), 160, "120 gets + 40 contains");
    assert_eq!(m.shard_writes.iter().sum::<u64>(), 301, "300 inserts + 1 remove");
    assert!(m.splits > 0);

    // The optimistic read path served every point read: this client is the
    // only writer and it is sequential, so no read ever raced a writer.
    assert_eq!(m.read_optimistic_hits, 160, "every get/contains hits the lock-free path");
    assert_eq!(m.read_retries, 0, "no concurrent writer, so no retries");
    assert_eq!(m.read_lock_fallbacks, 0, "no read should have taken the blocking lock");

    // The same data is scrapable as a Prometheus text exposition — the
    // map's adopted read-path instruments included.
    assert!(m.text.contains("# TYPE lll_server_request_latency_ns histogram"), "{}", m.text);
    assert!(m.text.contains("lll_server_request_latency_ns_count{verb=\"insert\"} 300"));
    assert!(m.text.contains("lll_shard_len{shard=\"0\"}"));
    assert!(m.text.contains("lll_shard_splits_total"));
    // (The hits value is not pinned: assembling the reply itself lands one
    // optimistic hit per shard, so the exposition runs ahead of the wire
    // field captured a few reads earlier.)
    assert!(m.text.contains("# TYPE lll_read_optimistic_hits_total counter"), "{}", m.text);
    assert!(m.text.contains("lll_read_lock_fallbacks_total 0"), "{}", m.text);

    // The trace verb drains the map's structural history: the splits the
    // workload forced are there, in order.
    let t = c.trace().unwrap();
    assert!(
        t.events.iter().any(|e| e.kind == lll_obs::TraceKind::Split as u64),
        "splits must be traced: {:?}",
        t.events
    );
    assert!(t.events.windows(2).all(|w| w[0].seq < w[1].seq), "events sorted by seq");

    server.shutdown();
}

#[test]
fn durable_mode_survives_restart_and_checkpoints_over_the_wire() {
    use lll_wal::{DurableOptions, FsyncPolicy, WalOptions};

    let dir = std::env::temp_dir().join(format!("lll_srv_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || DurableOptions {
        wal: WalOptions { fsync: FsyncPolicy::Always, segment_bytes: 4 << 10 },
        keep_checkpoints: 2,
    };
    let builder = ShardedBuilder::new().max_shard_len(64).min_shard_len(8).seed(77);

    // Session 1: write through the wire, checkpoint via the snapshot
    // verb, write more, stop WITHOUT a graceful drain snapshot.
    {
        let (mut server, rec) =
            Server::start_durable(&dir, opts(), &builder, ServerConfig::default())
                .expect("open durable server");
        assert_eq!(rec.entries, 0);
        let mut c = Client::connect(server.local_addr()).unwrap();
        let entries: Vec<_> = (0..200).map(kv).collect();
        assert_eq!(c.batch_insert(entries).unwrap(), 200);
        assert_eq!(c.insert(b"solo", b"one").unwrap(), None);
        assert_eq!(c.remove(&kv(7).0).unwrap().as_deref(), Some(&kv(7).1[..]));
        // The snapshot verb is a checkpoint in durable mode: no path
        // needed, the state lands in the WAL directory.
        c.snapshot("").unwrap();
        assert!(server.durable().unwrap().checkpoint_lsn() > 0);
        assert_eq!(c.insert(b"after-checkpoint", b"yes").unwrap(), None);

        // The wire metrics carry the WAL counters.
        let m = c.metrics().unwrap();
        assert_eq!(m.version, 3);
        assert!(m.wal_appends >= 4, "batch + 2 inserts + remove: {}", m.wal_appends);
        assert!(m.wal_fsyncs > 0);
        assert!(m.wal_durable_lsn >= m.wal_appends);
        assert!(m.text.contains("# TYPE lll_wal_appends_total counter"), "{}", m.text);
        assert!(m.text.contains("lll_wal_fsyncs_total"), "{}", m.text);
        server.shutdown();
    }

    // Session 2: everything acked in session 1 — checkpointed or only
    // logged — is back.
    {
        let (mut server, rec) =
            Server::start_durable(&dir, opts(), &builder, ServerConfig::default())
                .expect("recover durable server");
        assert!(rec.checkpoint_lsn > 0, "recovery must land on the checkpoint");
        assert_eq!(rec.entries, 201); // 200 batch - 1 remove + solo + after-checkpoint
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c.get(b"solo").unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(c.get(b"after-checkpoint").unwrap().as_deref(), Some(&b"yes"[..]));
        assert_eq!(c.get(&kv(7).0).unwrap(), None);
        assert_eq!(c.get(&kv(8).0).unwrap().as_deref(), Some(&kv(8).1[..]));
        assert_eq!(c.health().unwrap().len, 201);
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
