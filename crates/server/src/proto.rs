//! The verb vocabulary: typed [`Request`] / [`Response`] messages and
//! their frame encodings.
//!
//! Requests carry opcodes `0x01..=0x0C`; responses carry `0x81..=0x8A`
//! (high bit set), so a stream position can never be misread as the other
//! direction. Bodies are [`Codec`]-encoded; a
//! frame whose body leaves trailing bytes after its message decodes is
//! [`WireError::Corrupt`] — every byte is accounted for.
//!
//! Keys and values are **opaque byte strings** ordered lexicographically
//! (`Vec<u8>`'s `Ord`), the classic ordered-KV contract: any totally
//! ordered application key works once serialized order-preservingly.
//! See `docs/server.md` for the full wire tables.

// lll-check: enforce(panic-free-decode)
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::frame::{
    decode_bytes, decode_opt_bytes, encode_bytes, encode_opt_bytes, read_frame, write_frame, Frame,
    WireError,
};
use lll_api::persist::Codec;
use std::io::{Read, Write};

/// A client→server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness + load probe; never touches shard locks exclusively.
    Health,
    /// Per-shard statistics (entry counts, splits/merges, batching).
    Stats,
    /// The value stored under a key.
    Get(Vec<u8>),
    /// Store `key → value`; replies with the previous value, if any.
    Insert(Vec<u8>, Vec<u8>),
    /// Remove a key; replies with the removed value, if any.
    Remove(Vec<u8>),
    /// Key-presence test.
    Contains(Vec<u8>),
    /// Ordered scan of `[start, end)` (either bound may be absent =
    /// unbounded), capped at `limit` entries.
    Range {
        /// Inclusive lower bound; `None` scans from the smallest key.
        start: Option<Vec<u8>>,
        /// Exclusive upper bound; `None` scans to the largest key.
        end: Option<Vec<u8>>,
        /// Entry cap; the reply says whether the scan was truncated.
        limit: u64,
    },
    /// Land many entries in one round trip. The server sorts the batch,
    /// dedups it (last write wins), cuts it at the shard directory's
    /// split keys, and lands each run via the per-shard bulk sweep.
    BatchInsert(Vec<(Vec<u8>, Vec<u8>)>),
    /// Stream a durable snapshot to a server-side path (written under the
    /// maintenance barrier — one atomic picture even under writers).
    Snapshot {
        /// Server-side filesystem path to write.
        path: String,
    },
    /// Graceful drain: stop accepting connections, finish in-flight
    /// requests, optionally write a final snapshot first.
    Drain {
        /// Server-side path for a final snapshot before draining.
        final_snapshot: Option<String>,
    },
    /// Full observability dump: per-verb latency quantiles, per-shard
    /// gauges, and the Prometheus text exposition.
    Metrics,
    /// Drain the map's structural-event trace ring (splits, merges,
    /// snapshots, drains).
    Trace,
}

/// Verb names in opcode order (`VERBS[opcode - 1]`) — the label vocabulary
/// of the per-verb latency histograms and [`MetricsReply::verbs`].
pub const VERBS: [&str; 12] = [
    "health",
    "stats",
    "get",
    "insert",
    "remove",
    "contains",
    "range",
    "batch_insert",
    "snapshot",
    "drain",
    "metrics",
    "trace",
];

/// A server→client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The verb succeeded and returns nothing.
    Ok,
    /// An optional value (`Get` / `Insert` / `Remove`).
    Value(Option<Vec<u8>>),
    /// A yes/no answer (`Contains`).
    Bool(bool),
    /// An ordered slice of entries (`Range`).
    Entries {
        /// The entries, ascending by key.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// True if more entries existed past the requested limit.
        truncated: bool,
    },
    /// `BatchInsert` accounting.
    Batched {
        /// Entries received on the wire.
        received: u64,
        /// Unique entries landed after last-write-wins dedup.
        landed: u64,
    },
    /// `Health` reply.
    Health(HealthReply),
    /// `Stats` reply.
    Stats(StatsReply),
    /// The verb failed server-side; the connection stays usable unless
    /// the failure was a protocol violation.
    Error(String),
    /// `Metrics` reply.
    Metrics(MetricsReply),
    /// `Trace` reply.
    Trace(TraceReply),
}

/// Liveness + load snapshot (the `Health` verb).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReply {
    /// True once a drain has begun (new connections are refused).
    pub draining: bool,
    /// Connections currently being served.
    pub active_conns: u64,
    /// Requests served since the server started.
    pub served_requests: u64,
    /// Entries in the map.
    pub len: u64,
}

/// Per-shard statistics (the `Stats` verb) — `ShardedStats` on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Schema version of this reply; bumped if fields change meaning.
    pub version: u64,
    /// Number of shards.
    pub shards: u64,
    /// Total entries.
    pub len: u64,
    /// Shard splits since construction.
    pub splits: u64,
    /// Shard merges since construction.
    pub merges: u64,
    /// Bulk batches landed since construction.
    pub batches: u64,
    /// Entries landed through those batches.
    pub batched_entries: u64,
    /// Total element moves across shard backends (the paper's cost
    /// measure), monotone over the map's lifetime.
    pub total_moves: u64,
    /// Point reads answered on the lock-free optimistic path (epoch
    /// validated, no blocking shard-lock acquisition).
    pub read_optimistic_hits: u64,
    /// Optimistic read attempts that had to retry (writer active or probe
    /// contended) before hitting or falling back.
    pub read_retries: u64,
    /// Reads that exhausted the retry budget and took a blocking shard
    /// read lock.
    pub read_lock_fallbacks: u64,
    /// Per-shard entry counts, in key order.
    pub shard_lens: Vec<u64>,
}

/// One verb's request-latency summary inside a [`MetricsReply`]:
/// quantiles read from the server's log2-bucketed histogram (each is the
/// bucket's inclusive upper bound, capped at the exact observed max).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerbLatency {
    /// The verb name (see [`VERBS`]).
    pub verb: String,
    /// Requests of this verb served.
    pub count: u64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Largest request latency observed, nanoseconds (exact).
    pub max_ns: u64,
}

/// The `Metrics` verb's reply: a versioned structured dump plus the same
/// data as a Prometheus text exposition, so both programmatic consumers
/// and scrapers are served by one verb.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReply {
    /// Schema version of this reply; bumped if fields change meaning.
    pub version: u64,
    /// Per-verb latency summaries, in [`VERBS`] order.
    pub verbs: Vec<VerbLatency>,
    /// Per-shard entry counts, in key order.
    pub shard_lens: Vec<u64>,
    /// Per-shard point reads served, in key order (monotone across
    /// resharding — merges fold the retired shard into the survivor).
    pub shard_reads: Vec<u64>,
    /// Per-shard point writes served, in key order (same monotonicity).
    pub shard_writes: Vec<u64>,
    /// Shard splits since construction.
    pub splits: u64,
    /// Shard merges since construction.
    pub merges: u64,
    /// Nanoseconds point ops spent waiting on shard locks (timed in
    /// debug-built servers only; zero in release).
    pub lock_wait_nanos: u64,
    /// Nanoseconds point ops held shard locks (debug-built servers only).
    pub lock_hold_nanos: u64,
    /// Point reads answered on the lock-free optimistic path (since
    /// version 2).
    pub read_optimistic_hits: u64,
    /// Optimistic read retry attempts (since version 2).
    pub read_retries: u64,
    /// Reads that fell back to a blocking shard lock (since version 2).
    pub read_lock_fallbacks: u64,
    /// WAL records appended (since version 3; zero when the server is
    /// not in durable mode).
    pub wal_appends: u64,
    /// WAL `fdatasync` calls (since version 3; zero when not durable).
    pub wal_fsyncs: u64,
    /// WAL segment rotations (since version 3; zero when not durable).
    pub wal_rotations: u64,
    /// WAL segments deleted by checkpoint truncation (since version 3;
    /// zero when not durable).
    pub wal_truncated_segments: u64,
    /// Highest fsync-durable LSN (since version 3; zero when not
    /// durable).
    pub wal_durable_lsn: u64,
    /// Prometheus text exposition of everything above.
    pub text: String,
}

/// One structural event on the wire (see `lll_obs::TraceKind` for the
/// kind vocabulary and per-kind payload layouts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceEventWire {
    /// Global record order, monotone over the ring's lifetime.
    pub seq: u64,
    /// The event kind as recorded (`lll_obs::TraceKind as u64`).
    pub kind: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

/// The `Trace` verb's reply: the ring's current contents, oldest first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReply {
    /// Recent structural events, ascending by `seq`. The ring is bounded:
    /// older events may have been overwritten.
    pub events: Vec<TraceEventWire>,
}

impl Codec for HealthReply {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.draining.encode(w)?;
        self.active_conns.encode(w)?;
        self.served_requests.encode(w)?;
        self.len.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self {
            draining: bool::decode(r)?,
            active_conns: u64::decode(r)?,
            served_requests: u64::decode(r)?,
            len: u64::decode(r)?,
        })
    }
}

impl Codec for StatsReply {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.version.encode(w)?;
        self.shards.encode(w)?;
        self.len.encode(w)?;
        self.splits.encode(w)?;
        self.merges.encode(w)?;
        self.batches.encode(w)?;
        self.batched_entries.encode(w)?;
        self.total_moves.encode(w)?;
        self.read_optimistic_hits.encode(w)?;
        self.read_retries.encode(w)?;
        self.read_lock_fallbacks.encode(w)?;
        self.shard_lens.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self {
            version: u64::decode(r)?,
            shards: u64::decode(r)?,
            len: u64::decode(r)?,
            splits: u64::decode(r)?,
            merges: u64::decode(r)?,
            batches: u64::decode(r)?,
            batched_entries: u64::decode(r)?,
            total_moves: u64::decode(r)?,
            read_optimistic_hits: u64::decode(r)?,
            read_retries: u64::decode(r)?,
            read_lock_fallbacks: u64::decode(r)?,
            shard_lens: Vec::<u64>::decode(r)?,
        })
    }
}

impl Codec for VerbLatency {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.verb.encode(w)?;
        self.count.encode(w)?;
        self.p50_ns.encode(w)?;
        self.p95_ns.encode(w)?;
        self.p99_ns.encode(w)?;
        self.max_ns.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self {
            verb: String::decode(r)?,
            count: u64::decode(r)?,
            p50_ns: u64::decode(r)?,
            p95_ns: u64::decode(r)?,
            p99_ns: u64::decode(r)?,
            max_ns: u64::decode(r)?,
        })
    }
}

impl Codec for MetricsReply {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.version.encode(w)?;
        self.verbs.encode(w)?;
        self.shard_lens.encode(w)?;
        self.shard_reads.encode(w)?;
        self.shard_writes.encode(w)?;
        self.splits.encode(w)?;
        self.merges.encode(w)?;
        self.lock_wait_nanos.encode(w)?;
        self.lock_hold_nanos.encode(w)?;
        self.read_optimistic_hits.encode(w)?;
        self.read_retries.encode(w)?;
        self.read_lock_fallbacks.encode(w)?;
        self.wal_appends.encode(w)?;
        self.wal_fsyncs.encode(w)?;
        self.wal_rotations.encode(w)?;
        self.wal_truncated_segments.encode(w)?;
        self.wal_durable_lsn.encode(w)?;
        self.text.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self {
            version: u64::decode(r)?,
            verbs: Vec::<VerbLatency>::decode(r)?,
            shard_lens: Vec::<u64>::decode(r)?,
            shard_reads: Vec::<u64>::decode(r)?,
            shard_writes: Vec::<u64>::decode(r)?,
            splits: u64::decode(r)?,
            merges: u64::decode(r)?,
            lock_wait_nanos: u64::decode(r)?,
            lock_hold_nanos: u64::decode(r)?,
            read_optimistic_hits: u64::decode(r)?,
            read_retries: u64::decode(r)?,
            read_lock_fallbacks: u64::decode(r)?,
            wal_appends: u64::decode(r)?,
            wal_fsyncs: u64::decode(r)?,
            wal_rotations: u64::decode(r)?,
            wal_truncated_segments: u64::decode(r)?,
            wal_durable_lsn: u64::decode(r)?,
            text: String::decode(r)?,
        })
    }
}

impl Codec for TraceEventWire {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.seq.encode(w)?;
        self.kind.encode(w)?;
        self.a.encode(w)?;
        self.b.encode(w)?;
        self.c.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self {
            seq: u64::decode(r)?,
            kind: u64::decode(r)?,
            a: u64::decode(r)?,
            b: u64::decode(r)?,
            c: u64::decode(r)?,
        })
    }
}

impl Codec for TraceReply {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), lll_api::SnapshotError> {
        self.events.encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, lll_api::SnapshotError> {
        Ok(Self { events: Vec::<TraceEventWire>::decode(r)? })
    }
}

/// Require the body reader to be fully consumed — a decoded message must
/// account for every frame byte, or a bit flip could smuggle state.
fn expect_drained(rest: &[u8], what: &str) -> Result<(), WireError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(WireError::Corrupt(format!("{} trailing bytes after {what} body", rest.len())))
    }
}

impl Request {
    /// This request's frame opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Health => 0x01,
            Request::Stats => 0x02,
            Request::Get(_) => 0x03,
            Request::Insert(_, _) => 0x04,
            Request::Remove(_) => 0x05,
            Request::Contains(_) => 0x06,
            Request::Range { .. } => 0x07,
            Request::BatchInsert(_) => 0x08,
            Request::Snapshot { .. } => 0x09,
            Request::Drain { .. } => 0x0A,
            Request::Metrics => 0x0B,
            Request::Trace => 0x0C,
        }
    }

    /// This request's index into [`VERBS`] (and into the server's
    /// per-verb latency histograms): opcodes are contiguous from `0x01`.
    pub fn verb_index(&self) -> usize {
        usize::from(self.opcode()) - 1
    }

    /// Encode and write this request as one frame (caller flushes).
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), WireError> {
        let mut body = Vec::new();
        match self {
            Request::Health | Request::Stats | Request::Metrics | Request::Trace => {}
            Request::Get(k) | Request::Remove(k) | Request::Contains(k) => {
                encode_bytes(&mut body, k)?;
            }
            Request::Insert(k, v) => {
                encode_bytes(&mut body, k)?;
                encode_bytes(&mut body, v)?;
            }
            Request::Range { start, end, limit } => {
                encode_opt_bytes(&mut body, start.as_deref())?;
                encode_opt_bytes(&mut body, end.as_deref())?;
                limit.encode(&mut body)?;
            }
            Request::BatchInsert(entries) => {
                (entries.len() as u64).encode(&mut body)?;
                for (k, v) in entries {
                    encode_bytes(&mut body, k)?;
                    encode_bytes(&mut body, v)?;
                }
            }
            Request::Snapshot { path } => path.encode(&mut body)?,
            Request::Drain { final_snapshot } => final_snapshot.encode(&mut body)?,
        }
        write_frame(w, self.opcode(), &body)
    }

    /// Parse a received frame into a request.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let r = &mut frame.body.as_slice();
        let req = match frame.opcode {
            0x01 => Request::Health,
            0x02 => Request::Stats,
            0x03 => Request::Get(decode_bytes(r)?),
            0x04 => Request::Insert(decode_bytes(r)?, decode_bytes(r)?),
            0x05 => Request::Remove(decode_bytes(r)?),
            0x06 => Request::Contains(decode_bytes(r)?),
            0x07 => Request::Range {
                start: decode_opt_bytes(r)?,
                end: decode_opt_bytes(r)?,
                limit: u64::decode(r)?,
            },
            0x08 => {
                let count = lll_api::persist::decode_len(r)?;
                let mut entries =
                    Vec::with_capacity(count.min(lll_api::persist::PREALLOC_CAP / 16));
                for _ in 0..count {
                    entries.push((decode_bytes(r)?, decode_bytes(r)?));
                }
                Request::BatchInsert(entries)
            }
            0x09 => Request::Snapshot { path: String::decode(r)? },
            0x0A => Request::Drain { final_snapshot: Option::<String>::decode(r)? },
            0x0B => Request::Metrics,
            0x0C => Request::Trace,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        expect_drained(r, "request")?;
        Ok(req)
    }

    /// Read one request frame and parse it.
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Self, WireError> {
        Self::from_frame(&read_frame(r)?)
    }
}

impl Response {
    /// This response's frame opcode (high bit set).
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Ok => 0x81,
            Response::Value(_) => 0x82,
            Response::Bool(_) => 0x83,
            Response::Entries { .. } => 0x84,
            Response::Batched { .. } => 0x85,
            Response::Health(_) => 0x86,
            Response::Stats(_) => 0x87,
            Response::Error(_) => 0x88,
            Response::Metrics(_) => 0x89,
            Response::Trace(_) => 0x8A,
        }
    }

    /// Encode and write this response as one frame (caller flushes).
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), WireError> {
        let mut body = Vec::new();
        match self {
            Response::Ok => {}
            Response::Value(v) => encode_opt_bytes(&mut body, v.as_deref())?,
            Response::Bool(b) => b.encode(&mut body)?,
            Response::Entries { entries, truncated } => {
                (entries.len() as u64).encode(&mut body)?;
                for (k, v) in entries {
                    encode_bytes(&mut body, k)?;
                    encode_bytes(&mut body, v)?;
                }
                truncated.encode(&mut body)?;
            }
            Response::Batched { received, landed } => {
                received.encode(&mut body)?;
                landed.encode(&mut body)?;
            }
            Response::Health(h) => h.encode(&mut body)?,
            Response::Stats(s) => s.encode(&mut body)?,
            Response::Error(msg) => msg.encode(&mut body)?,
            Response::Metrics(m) => m.encode(&mut body)?,
            Response::Trace(t) => t.encode(&mut body)?,
        }
        write_frame(w, self.opcode(), &body)
    }

    /// Parse a received frame into a response.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let r = &mut frame.body.as_slice();
        let resp = match frame.opcode {
            0x81 => Response::Ok,
            0x82 => Response::Value(decode_opt_bytes(r)?),
            0x83 => Response::Bool(bool::decode(r)?),
            0x84 => {
                let count = lll_api::persist::decode_len(r)?;
                let mut entries =
                    Vec::with_capacity(count.min(lll_api::persist::PREALLOC_CAP / 16));
                for _ in 0..count {
                    entries.push((decode_bytes(r)?, decode_bytes(r)?));
                }
                Response::Entries { entries, truncated: bool::decode(r)? }
            }
            0x85 => Response::Batched { received: u64::decode(r)?, landed: u64::decode(r)? },
            0x86 => Response::Health(HealthReply::decode(r)?),
            0x87 => Response::Stats(StatsReply::decode(r)?),
            0x88 => Response::Error(String::decode(r)?),
            0x89 => Response::Metrics(MetricsReply::decode(r)?),
            0x8A => Response::Trace(TraceReply::decode(r)?),
            other => return Err(WireError::UnknownOpcode(other)),
        };
        expect_drained(r, "response")?;
        Ok(resp)
    }

    /// Read one response frame and parse it.
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Self, WireError> {
        Self::from_frame(&read_frame(r)?)
    }
}
