//! The server runtime: a `std::net` accept loop feeding a bounded pool of
//! worker threads, each serving one connection at a time.
//!
//! The workspace builds offline — no tokio — so concurrency is the
//! classic thread-per-connection shape with a hard cap: `workers` threads
//! serve connections; up to `pending_conns` accepted sockets wait in a
//! queue; past that, new connections are refused with a typed `Error`
//! frame instead of an unbounded backlog. Idle workers park on a condvar;
//! idle connections park in a short read-timeout poll so a drain is
//! noticed within [`ServerConfig::idle_poll`] even with no traffic.
//!
//! # Drain protocol
//!
//! [`ServerHandle::drain`] (or the wire `Drain` verb):
//!
//! 1. sets the drain flag — `Health` starts reporting `draining`,
//! 2. wakes the accept loop (a self-connection), which stops accepting,
//! 3. lets every in-flight request complete and its response flush —
//!    workers close their connection at the next request *boundary*,
//!    never mid-response,
//! 4. optionally streams a final snapshot under the maintenance barrier.
//!
//! [`ServerHandle::join`] then reaps every thread. Responses already owed
//! are never dropped: the connection loop re-checks the flag only after
//! the current response is flushed.

use crate::conn;
use crate::proto::VERBS;
use lll_obs::{Histogram, Registry, TraceRing};
use lll_sharded::{ShardedBuilder, ShardedMap};
use lll_wal::{DurableMap, DurableOptions, DurableRecovery, WalError};
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The concrete map a server serves: opaque byte keys and values in
/// lexicographic key order.
pub type KvMap = ShardedMap<Vec<u8>, Vec<u8>>;

/// The durable flavor of [`KvMap`]: the same map behind a write-ahead
/// log (see [`Server::start_durable`]).
pub type DurableKvMap = DurableMap<Vec<u8>, Vec<u8>>;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the cap on concurrently *served* connections.
    pub workers: usize,
    /// Accepted-but-unserved connection queue cap; past it, connections
    /// are refused with a typed busy `Error` frame.
    pub pending_conns: usize,
    /// Read-timeout granularity for idle connections and parked workers:
    /// the upper bound on how long a drain waits for an *idle* peer.
    pub idle_poll: Duration,
    /// Hard cap applied to every `Range` request's limit, so one scan
    /// cannot clone an unbounded slice of the map into a frame.
    pub range_limit_cap: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            pending_conns: 64,
            idle_poll: Duration::from_millis(20),
            range_limit_cap: 1 << 16,
        }
    }
}

/// The server's observability surface: one request-latency histogram per
/// verb (registered under a shared Prometheus family name), the served
/// map's optimistic-read-path instruments adopted into the same registry
/// (so one exposition covers server and map), and a handle on the map's
/// structural-event trace ring. Registration happens once at startup;
/// recording is lock-free from every worker.
pub(crate) struct ServerObs {
    registry: Registry,
    /// `verbs[Request::verb_index()]` is that verb's latency histogram.
    pub(crate) verbs: Vec<Arc<Histogram>>,
    pub(crate) trace: Arc<TraceRing>,
}

impl ServerObs {
    fn new(map: &KvMap, durable: Option<&DurableKvMap>) -> Self {
        let mut registry = Registry::new();
        let verbs = VERBS
            .iter()
            .map(|verb| {
                registry.register_histogram_labeled(
                    "lll_server_request_latency_ns",
                    ("verb", verb),
                    "Wall-clock request handling latency per verb, nanoseconds",
                    1 << 10,
                    1 << 30,
                )
            })
            .collect();
        // Adopt the map's live read-path instruments: the map keeps
        // recording into the same atomics it always did, and the registry
        // exposes them without a second counting site.
        let rp = map.read_path_metrics();
        registry.register_counter_shared(
            "lll_read_optimistic_hits_total",
            "Point reads answered on the lock-free optimistic path",
            rp.optimistic_hits,
        );
        registry.register_counter_shared(
            "lll_read_retries_total",
            "Optimistic read retry attempts before a hit or fallback",
            rp.retries,
        );
        registry.register_counter_shared(
            "lll_read_lock_fallbacks_total",
            "Reads that exhausted the retry budget and took the shard lock",
            rp.lock_fallbacks,
        );
        registry.register_histogram_shared(
            "lll_read_retry_attempts",
            "Retry attempts per contended optimistic read",
            rp.retry_histogram,
        );
        // A durable server also adopts the WAL's live instruments — same
        // pattern: the log records into its own atomics, the registry
        // exposes the identical cells.
        if let Some(durable) = durable {
            let wm = durable.wal().metrics().clone();
            registry.register_counter_shared(
                "lll_wal_appends_total",
                "WAL records appended (staged for group commit)",
                wm.appends,
            );
            registry.register_counter_shared(
                "lll_wal_fsyncs_total",
                "fdatasync calls issued by the WAL flusher",
                wm.fsyncs,
            );
            registry.register_counter_shared(
                "lll_wal_rotations_total",
                "WAL segment rotations",
                wm.rotations,
            );
            registry.register_counter_shared(
                "lll_wal_truncated_segments_total",
                "WAL segments deleted by checkpoint truncation",
                wm.truncated_segments,
            );
            registry.register_histogram_shared(
                "lll_wal_group_size",
                "Records made durable per fsync (group-commit batch size)",
                wm.group_size,
            );
            registry.register_histogram_shared(
                "lll_wal_fsync_latency_ns",
                "WAL fdatasync latency, nanoseconds",
                wm.fsync_latency_ns,
            );
        }
        Self { registry, verbs, trace: map.trace() }
    }

    /// The Prometheus text exposition of every registered server metric.
    pub(crate) fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

/// State shared by the accept loop, the workers, and the handle.
pub(crate) struct Shared {
    pub(crate) map: Arc<KvMap>,
    /// Present when the server runs in durable mode: mutating verbs are
    /// routed through the log, and `snapshot` becomes a checkpoint.
    pub(crate) durable: Option<Arc<DurableKvMap>>,
    pub(crate) cfg: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) draining: AtomicBool,
    pub(crate) active_conns: AtomicU64,
    pub(crate) served_requests: AtomicU64,
    pub(crate) refused_conns: AtomicU64,
    pub(crate) obs: ServerObs,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

impl Shared {
    /// Begin draining: flip the flag, wake the accept loop with a
    /// throwaway self-connection, wake every parked worker.
    pub(crate) fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        self.queue_cv.notify_all();
    }

    fn pop_conn(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            q = self
                .queue_cv
                .wait_timeout(q, self.cfg.idle_poll)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// The running server: a factory with one entry point, [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `cfg.addr` and start serving `map`. Returns once the listener
    /// is live; serving happens on background threads owned by the
    /// returned [`ServerHandle`]. Mutations live only in memory — for
    /// crash durability see [`start_durable`](Self::start_durable).
    pub fn start(map: Arc<KvMap>, cfg: ServerConfig) -> io::Result<ServerHandle> {
        Self::start_inner(map, None, cfg)
    }

    /// Start in **durable mode**: recover (or create) a
    /// [`DurableKvMap`] in `dir` — newest valid checkpoint plus WAL
    /// replay — and serve it with every `insert`/`remove`/`batch_insert`
    /// logged (and, under the default
    /// [`FsyncPolicy::Always`](lll_wal::FsyncPolicy::Always), fsynced)
    /// *before* the response is sent. The `snapshot` verb becomes a
    /// checkpoint: snapshot + log truncation. Returns the handle and
    /// what recovery found.
    pub fn start_durable(
        dir: impl AsRef<std::path::Path>,
        opts: DurableOptions,
        builder: &ShardedBuilder,
        cfg: ServerConfig,
    ) -> Result<(ServerHandle, DurableRecovery), WalError> {
        let (durable, recovery) = DurableKvMap::open(dir, opts, builder)?;
        let map = Arc::clone(durable.map());
        let handle = Self::start_inner(map, Some(Arc::new(durable)), cfg).map_err(WalError::Io)?;
        Ok((handle, recovery))
    }

    fn start_inner(
        map: Arc<KvMap>,
        durable: Option<Arc<DurableKvMap>>,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(resolve(&cfg.addr)?)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let obs = ServerObs::new(&map, durable.as_deref());
        let shared = Arc::new(Shared {
            map,
            durable,
            cfg,
            addr,
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            served_requests: AtomicU64::new(0),
            refused_conns: AtomicU64::new(0),
            obs,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(thread::Builder::new().name(format!("lll-server-worker-{i}")).spawn(
                move || {
                    while let Some(stream) = shared.pop_conn() {
                        conn::serve(stream, &shared);
                    }
                },
            )?);
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(thread::Builder::new().name("lll-server-accept".into()).spawn(
                move || {
                    for stream in listener.incoming() {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                        if q.len() >= shared.cfg.pending_conns {
                            drop(q);
                            shared.refused_conns.fetch_add(1, Ordering::Relaxed);
                            refuse(stream);
                        } else {
                            q.push_back(stream);
                            drop(q);
                            shared.queue_cv.notify_one();
                        }
                    }
                },
            )?);
        }
        Ok(ServerHandle { shared, threads: Some(threads) })
    }
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))
}

/// Best-effort busy refusal: one typed `Error` frame, then close. Failure
/// to deliver it is the peer's problem — the cap must hold regardless.
fn refuse(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let _ =
        crate::proto::Response::Error("server busy: connection queue full".into()).write_to(&mut w);
    let _ = w.flush();
}

/// Owner of the server's threads. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) detaches them (the process keeps
/// serving) — tests and binaries should drain explicitly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Option<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The served map — in-process readers (tests, embedded ops tooling)
    /// can inspect state without a connection.
    pub fn map(&self) -> &Arc<KvMap> {
        &self.shared.map
    }

    /// The durable layer, when the server was started with
    /// [`Server::start_durable`] — for checkpointing, WAL metrics, and
    /// audit from process-local ops tooling.
    pub fn durable(&self) -> Option<&Arc<DurableKvMap>> {
        self.shared.durable.as_ref()
    }

    /// True once a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn served_requests(&self) -> u64 {
        self.shared.served_requests.load(Ordering::Relaxed)
    }

    /// Connections refused at the pending-queue cap so far.
    pub fn refused_conns(&self) -> u64 {
        self.shared.refused_conns.load(Ordering::Relaxed)
    }

    /// Begin a graceful drain: stop accepting, let in-flight requests
    /// finish. Returns immediately; pair with [`join`](Self::join).
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`drain`](Self::drain) (joining a non-draining server blocks until
    /// someone else drains it).
    pub fn join(&mut self) {
        if let Some(threads) = self.threads.take() {
            for t in threads {
                let _ = t.join();
            }
        }
    }

    /// [`drain`](Self::drain) + [`join`](Self::join).
    pub fn shutdown(&mut self) {
        self.drain();
        self.join();
    }
}
