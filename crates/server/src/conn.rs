//! One connection's request loop: wait for a frame, dispatch the verb,
//! flush the response, repeat — closing only at request boundaries.
//!
//! Idle waiting is a `peek` under the configured read timeout, so a
//! connection parked between requests notices a drain within one poll
//! interval **without** consuming stream bytes; once the first byte of a
//! frame is visible, the frame is read to completion (the frame layer's
//! reads preserve progress across timeouts), processed, and answered —
//! a drain never tears a response in half and never drops a request the
//! server already started reading.

use crate::frame::{read_frame, WireError};
use crate::proto::{
    HealthReply, MetricsReply, Request, Response, StatsReply, TraceEventWire, TraceReply,
    VerbLatency, VERBS,
};
use crate::server::{KvMap, Shared};
use lll_obs::{push_meta, push_sample, TraceKind};
use std::fs::File;
use std::io::{BufWriter, ErrorKind, Write as _};
use std::net::TcpStream;
use std::ops::Bound;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Serve one connection to completion (peer close, protocol error, or
/// drain boundary).
pub(crate) fn serve(stream: TcpStream, shared: &Shared) {
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_poll));
    let Ok(write_half) = stream.try_clone() else {
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let reader = stream;
    loop {
        if !wait_for_request(&reader, shared) {
            break;
        }
        let request = match read_frame(&mut &reader).and_then(|f| Request::from_frame(&f)) {
            Ok(req) => req,
            Err(e) => {
                // A malformed frame desynchronizes the stream: answer with
                // the typed failure (best effort) and close.
                let resp = Response::Error(format!("protocol error: {e}"));
                let _ = resp.write_to(&mut writer).and_then(|()| Ok(writer.flush()?));
                break;
            }
        };
        shared.served_requests.fetch_add(1, Ordering::Relaxed);
        let verb = request.verb_index();
        let started = Instant::now();
        let (response, drain_after) = handle(request, shared);
        shared.obs.verbs[verb].record(started.elapsed().as_nanos() as u64);
        if response.write_to(&mut writer).and_then(|()| Ok(writer.flush()?)).is_err() {
            break;
        }
        if drain_after {
            shared.begin_drain();
            break;
        }
        // Drain boundary: the response above is flushed; nothing is owed.
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
}

/// Park until a frame's first byte is visible (true), the peer closes or
/// errors (false), or a drain begins while the connection is idle
/// (false). `peek` never consumes, so returning early loses nothing.
fn wait_for_request(stream: &TcpStream, shared: &Shared) -> bool {
    let mut probe = [0u8; 1];
    loop {
        match stream.peek(&mut probe) {
            Ok(0) => return false,
            Ok(_) => return true,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Dispatch one verb. The second component asks the caller to begin a
/// drain **after** the response is flushed.
fn handle(request: Request, shared: &Shared) -> (Response, bool) {
    let map = &shared.map;
    match request {
        Request::Health => (
            Response::Health(HealthReply {
                draining: shared.draining.load(Ordering::SeqCst),
                active_conns: shared.active_conns.load(Ordering::SeqCst),
                served_requests: shared.served_requests.load(Ordering::Relaxed),
                len: map.len() as u64,
            }),
            false,
        ),
        Request::Stats => {
            let s = map.stats();
            (
                Response::Stats(StatsReply {
                    // Version 2: the optimistic-read-path counters joined
                    // the reply (version 1 was the unversioned pre-read-
                    // counter layout; the field itself is new with 2).
                    version: 2,
                    shards: s.shards as u64,
                    len: s.len as u64,
                    splits: s.splits,
                    merges: s.merges,
                    batches: s.batches,
                    batched_entries: s.batched_entries,
                    total_moves: s.total_moves,
                    read_optimistic_hits: s.read_optimistic_hits,
                    read_retries: s.read_retries,
                    read_lock_fallbacks: s.read_lock_fallbacks,
                    shard_lens: s.shard_lens.iter().map(|&l| l as u64).collect(),
                }),
                false,
            )
        }
        Request::Get(key) => (Response::Value(map.get(&key)), false),
        Request::Insert(key, value) => {
            // Durable mode: log-then-apply; the ack below is only written
            // after the record is (policy-)durable. Plain mode: in-memory.
            let resp = match &shared.durable {
                Some(d) => match d.insert(key, value) {
                    Ok(prev) => Response::Value(prev),
                    Err(e) => Response::Error(format!("wal insert: {e}")),
                },
                None => Response::Value(map.insert(key, value)),
            };
            (resp, false)
        }
        Request::Remove(key) => {
            let resp = match &shared.durable {
                Some(d) => match d.remove(&key) {
                    Ok(prev) => Response::Value(prev),
                    Err(e) => Response::Error(format!("wal remove: {e}")),
                },
                None => Response::Value(map.remove(&key)),
            };
            (resp, false)
        }
        Request::Contains(key) => (Response::Bool(map.contains_key(&key)), false),
        Request::Range { start, end, limit } => {
            let lo = match &start {
                Some(k) => Bound::Included(k),
                None => Bound::Unbounded,
            };
            let hi = match &end {
                Some(k) => Bound::Excluded(k),
                None => Bound::Unbounded,
            };
            let capped = limit.min(shared.cfg.range_limit_cap) as usize;
            let (entries, truncated) = map.range_limited::<Vec<u8>, _>((lo, hi), capped);
            (Response::Entries { entries, truncated }, false)
        }
        Request::BatchInsert(entries) => {
            let received = entries.len() as u64;
            let resp = match &shared.durable {
                Some(d) => match d.batch_insert(entries) {
                    Ok(landed) => Response::Batched { received, landed: landed as u64 },
                    Err(e) => Response::Error(format!("wal batch_insert: {e}")),
                },
                None => {
                    let landed = map.extend_from_unsorted(entries) as u64;
                    Response::Batched { received, landed }
                }
            };
            (resp, false)
        }
        Request::Snapshot { path } => {
            // In durable mode the verb is a checkpoint: snapshot into the
            // WAL directory + log truncation. A non-empty path still gets
            // the portable snapshot stream, on top.
            let resp = match &shared.durable {
                Some(d) => match d.checkpoint() {
                    Ok(_) if path.is_empty() => Response::Ok,
                    Ok(_) => snapshot_to(map, &path),
                    Err(e) => Response::Error(format!("checkpoint: {e}")),
                },
                None => snapshot_to(map, &path),
            };
            (resp, false)
        }
        Request::Drain { final_snapshot } => {
            if let Some(path) = final_snapshot {
                // A failed final snapshot refuses the drain: the operator
                // asked for durability first, and losing that silently
                // would defeat the point.
                if let failed @ Response::Error(_) = snapshot_to(map, &path) {
                    return (failed, false);
                }
            }
            shared.obs.trace.record(
                TraceKind::Drain,
                shared.served_requests.load(Ordering::Relaxed),
                shared.active_conns.load(Ordering::SeqCst),
                0,
            );
            (Response::Ok, true)
        }
        Request::Metrics => (Response::Metrics(metrics_reply(shared)), false),
        Request::Trace => {
            let events = shared
                .obs
                .trace
                .snapshot()
                .into_iter()
                .map(|e| TraceEventWire { seq: e.seq, kind: e.kind as u64, a: e.a, b: e.b, c: e.c })
                .collect();
            (Response::Trace(TraceReply { events }), false)
        }
    }
}

/// Assemble the `Metrics` reply: per-verb latency quantiles from the
/// server's histograms, per-shard gauges from the map, and one Prometheus
/// text exposition covering both.
fn metrics_reply(shared: &Shared) -> MetricsReply {
    let stats = shared.map.stats();
    let verbs = VERBS
        .iter()
        .zip(&shared.obs.verbs)
        .map(|(name, h)| VerbLatency {
            verb: (*name).to_string(),
            count: h.count(),
            p50_ns: h.p50(),
            p95_ns: h.p95(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        })
        .collect();
    let mut text = shared.obs.render_prometheus();
    push_meta(&mut text, "lll_shard_len", "gauge", "Entries per shard, in key order");
    for (i, len) in stats.shard_lens.iter().enumerate() {
        push_sample(&mut text, "lll_shard_len", &[("shard", &i.to_string())], *len as u64);
    }
    push_meta(&mut text, "lll_shard_reads_total", "counter", "Point reads served per shard");
    for (i, reads) in stats.shard_reads.iter().enumerate() {
        push_sample(&mut text, "lll_shard_reads_total", &[("shard", &i.to_string())], *reads);
    }
    push_meta(&mut text, "lll_shard_writes_total", "counter", "Point writes served per shard");
    for (i, writes) in stats.shard_writes.iter().enumerate() {
        push_sample(&mut text, "lll_shard_writes_total", &[("shard", &i.to_string())], *writes);
    }
    push_meta(&mut text, "lll_shard_splits_total", "counter", "Shard splits since construction");
    push_sample(&mut text, "lll_shard_splits_total", &[], stats.splits);
    push_meta(&mut text, "lll_shard_merges_total", "counter", "Shard merges since construction");
    push_sample(&mut text, "lll_shard_merges_total", &[], stats.merges);
    let (wal_appends, wal_fsyncs, wal_rotations, wal_truncated_segments, wal_durable_lsn) =
        match &shared.durable {
            Some(d) => {
                let wm = d.wal().metrics();
                (
                    wm.appends.get(),
                    wm.fsyncs.get(),
                    wm.rotations.get(),
                    wm.truncated_segments.get(),
                    d.wal().durable_lsn(),
                )
            }
            None => (0, 0, 0, 0, 0),
        };
    MetricsReply {
        // Version 3: the WAL counters joined the reply (version 2 added
        // the optimistic-read-path counters; both field sets also ride
        // the registry exposition via shared instruments).
        version: 3,
        verbs,
        shard_lens: stats.shard_lens.iter().map(|&l| l as u64).collect(),
        shard_reads: stats.shard_reads,
        shard_writes: stats.shard_writes,
        splits: stats.splits,
        merges: stats.merges,
        lock_wait_nanos: stats.lock_wait_nanos,
        lock_hold_nanos: stats.lock_hold_nanos,
        read_optimistic_hits: stats.read_optimistic_hits,
        read_retries: stats.read_retries,
        read_lock_fallbacks: stats.read_lock_fallbacks,
        wal_appends,
        wal_fsyncs,
        wal_rotations,
        wal_truncated_segments,
        wal_durable_lsn,
        text,
    }
}

/// Stream a snapshot to `path` under the maintenance barrier (see
/// `ShardedMap::write_snapshot`): one atomic picture even under
/// concurrent writers.
fn snapshot_to(map: &KvMap, path: &str) -> Response {
    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => return Response::Error(format!("snapshot: create {path:?}: {e}")),
    };
    let mut w = BufWriter::new(file);
    match map.write_snapshot(&mut w).map_err(WireError::from).and_then(|()| Ok(w.flush()?)) {
        Ok(()) => Response::Ok,
        Err(e) => Response::Error(format!("snapshot: write {path:?}: {e}")),
    }
}
