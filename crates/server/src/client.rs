//! A blocking [`Client`] speaking the same frame codec as the server —
//! one request/response round trip per call, suitable for tests, tools,
//! and thread-per-connection workloads.

use crate::frame::WireError;
use crate::proto::{HealthReply, MetricsReply, Request, Response, StatsReply, TraceReply};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `lll-server`.
///
/// Every method is one round trip; a server-reported failure surfaces as
/// [`WireError::Remote`], a response of the wrong kind as
/// [`WireError::Corrupt`]. The connection is not usable concurrently from
/// multiple threads — open one client per thread (connections are cheap;
/// the server pools them).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        request.write_to(&mut self.writer)?;
        self.writer.flush()?;
        match Response::read_from(&mut self.reader)? {
            Response::Error(msg) => Err(WireError::Remote(msg)),
            other => Ok(other),
        }
    }

    fn unexpected(got: &Response, wanted: &str) -> WireError {
        WireError::Corrupt(format!("expected {wanted} response, got opcode {:#x}", got.opcode()))
    }

    /// The value stored under `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
        match self.call(&Request::Get(key.to_vec()))? {
            Response::Value(v) => Ok(v),
            other => Err(Self::unexpected(&other, "Value")),
        }
    }

    /// Store `key → value`; returns the previous value, if any.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
        match self.call(&Request::Insert(key.to_vec(), value.to_vec()))? {
            Response::Value(v) => Ok(v),
            other => Err(Self::unexpected(&other, "Value")),
        }
    }

    /// Remove `key`; returns the removed value, if any.
    pub fn remove(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
        match self.call(&Request::Remove(key.to_vec()))? {
            Response::Value(v) => Ok(v),
            other => Err(Self::unexpected(&other, "Value")),
        }
    }

    /// True if `key` is present.
    pub fn contains(&mut self, key: &[u8]) -> Result<bool, WireError> {
        match self.call(&Request::Contains(key.to_vec()))? {
            Response::Bool(b) => Ok(b),
            other => Err(Self::unexpected(&other, "Bool")),
        }
    }

    /// Ordered scan of `[start, end)` (`None` = unbounded on that side),
    /// capped at `limit` entries. The boolean is true if the scan was
    /// truncated — more entries exist past the last one returned.
    #[allow(clippy::type_complexity)]
    pub fn range(
        &mut self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        limit: u64,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, bool), WireError> {
        let request = Request::Range {
            start: start.map(<[u8]>::to_vec),
            end: end.map(<[u8]>::to_vec),
            limit,
        };
        match self.call(&request)? {
            Response::Entries { entries, truncated } => Ok((entries, truncated)),
            other => Err(Self::unexpected(&other, "Entries")),
        }
    }

    /// Land a batch in one round trip (server-side sort + last-write-wins
    /// dedup + per-shard bulk sweeps). Returns the unique entries landed.
    pub fn batch_insert(&mut self, entries: Vec<(Vec<u8>, Vec<u8>)>) -> Result<u64, WireError> {
        match self.call(&Request::BatchInsert(entries))? {
            Response::Batched { landed, .. } => Ok(landed),
            other => Err(Self::unexpected(&other, "Batched")),
        }
    }

    /// Liveness + load probe.
    pub fn health(&mut self) -> Result<HealthReply, WireError> {
        match self.call(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(Self::unexpected(&other, "Health")),
        }
    }

    /// Per-shard statistics.
    pub fn stats(&mut self) -> Result<StatsReply, WireError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::unexpected(&other, "Stats")),
        }
    }

    /// Full observability dump: per-verb latency quantiles, per-shard
    /// gauges, and the Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<MetricsReply, WireError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(Self::unexpected(&other, "Metrics")),
        }
    }

    /// Drain the server's structural-event trace ring (splits, merges,
    /// snapshots, drains), oldest first.
    pub fn trace(&mut self) -> Result<TraceReply, WireError> {
        match self.call(&Request::Trace)? {
            Response::Trace(t) => Ok(t),
            other => Err(Self::unexpected(&other, "Trace")),
        }
    }

    /// Ask the server to stream a snapshot to a **server-side** path.
    pub fn snapshot(&mut self, path: &str) -> Result<(), WireError> {
        match self.call(&Request::Snapshot { path: path.to_string() })? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(&other, "Ok")),
        }
    }

    /// Ask the server to drain gracefully, optionally writing a final
    /// snapshot first. The server closes this connection after replying.
    pub fn drain(&mut self, final_snapshot: Option<&str>) -> Result<(), WireError> {
        let request = Request::Drain { final_snapshot: final_snapshot.map(str::to_string) };
        match self.call(&request)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(&other, "Ok")),
        }
    }
}
