//! The wire frame layer: versioned, little-endian, length-framed envelopes
//! shared by requests and responses.
//!
//! Every message on a connection is one frame:
//!
//! ```text
//! magic    [u8; 4]  = b"LLW\0"
//! version  u16      = 1
//! opcode   u8       (request or response kind; see `proto`)
//! body_len u32      (bytes that follow)
//! body     [u8; body_len]
//! ```
//!
//! The body is [`Codec`]-encoded (the same hand-rolled trait snapshots
//! use — see `lll_api::persist`), so key/value/string/sequence layouts on
//! the wire are byte-identical to their snapshot layouts.
//!
//! # Error discipline
//!
//! Decoding follows `persist`'s rules, surfaced as the typed [`WireError`]:
//! decoders **never panic** on hostile input, and declared lengths are
//! never trusted for allocation — `body_len` is checked against
//! [`MAX_FRAME_LEN`] before any reservation ([`WireError::FrameTooLarge`]),
//! and inside a body, byte-string reservations are capped at
//! [`PREALLOC_CAP`](lll_api::codec::PREALLOC_CAP) and grow only as bytes
//! actually arrive. A stream that ends mid-frame is
//! [`WireError::Truncated`], never a hang on a lying length.

// lll-check: enforce(panic-free-decode)
#![deny(clippy::unwrap_used, clippy::expect_used)]

use lll_api::codec::decode_framed_bytes;
use lll_api::persist::{Codec, SnapshotError};
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// The 4-byte magic prefix of every wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"LLW\0";

/// The wire protocol version this build speaks (and the only one its
/// decoder accepts — version negotiation is fail-fast, as in snapshots).
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on a frame body. Large enough for a 100k-entry batch of
/// modest keys/values; small enough that a corrupt or hostile `body_len`
/// cannot balloon a connection's memory.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Everything that can go wrong on the wire. The request/response
/// decoders return these — they never panic on malformed input.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// An underlying I/O failure (other than clean end-of-stream).
    Io(std::io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The first 4 bytes are not [`WIRE_MAGIC`]: not this protocol.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion {
        /// The version in the received header.
        found: u16,
    },
    /// The header's opcode byte names no known request/response kind.
    UnknownOpcode(u8),
    /// The header declares a body larger than [`MAX_FRAME_LEN`]. Detected
    /// before any allocation.
    FrameTooLarge {
        /// The declared body length.
        declared: u64,
    },
    /// Structurally invalid frame body: trailing bytes, invalid UTF-8,
    /// inner lengths that disagree with the frame, …
    Corrupt(String),
    /// The server processed the request and reported a failure (e.g. a
    /// snapshot path it cannot write). Only surfaced client-side.
    Remote(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Truncated => f.write_str("stream ended mid-frame"),
            WireError::BadMagic => f.write_str("not an lll wire frame (bad magic)"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            WireError::FrameTooLarge { declared } => {
                write!(f, "declared frame body of {declared} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    /// Clean end-of-stream becomes [`WireError::Truncated`]; every other
    /// I/O failure is passed through.
    fn from(e: std::io::Error) -> Self {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl From<SnapshotError> for WireError {
    /// [`Codec`] speaks `SnapshotError`; map its variants onto the wire
    /// vocabulary so frame bodies inherit the snapshot decoders' typed
    /// discipline.
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => WireError::from(io),
            SnapshotError::Truncated => WireError::Truncated,
            SnapshotError::Corrupt(why) => WireError::Corrupt(why),
            other => WireError::Corrupt(other.to_string()),
        }
    }
}

/// One decoded frame: the opcode byte and the raw body (parsed by
/// `proto`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The request/response kind tag.
    pub opcode: u8,
    /// The `Codec`-encoded payload.
    pub body: Vec<u8>,
}

/// Write one frame: header, then body. The caller flushes (responses are
/// written through a `BufWriter`; an unflushed frame is not sent). A body
/// over [`MAX_FRAME_LEN`] is refused as [`WireError::FrameTooLarge`]
/// before any header byte is written — the stream stays clean.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, opcode: u8, body: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or(WireError::FrameTooLarge { declared: body.len() as u64 })?;
    w.write_all(&WIRE_MAGIC)?;
    WIRE_VERSION.encode(w)?;
    opcode.encode(w)?;
    len.encode(w)?;
    w.write_all(body)?;
    Ok(())
}

/// Fill `buf` completely, preserving progress across `Interrupted`,
/// `WouldBlock`, and `TimedOut` — so a read timeout configured for idle
/// detection can fire *mid-frame* without desynchronizing the stream
/// (bytes already read stay read; the loop resumes where it stopped).
/// Clean EOF before the buffer fills is [`WireError::Truncated`].
pub(crate) fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        // lll-check: allow(panic-free-decode, filled < buf.len() is the loop guard one line up)
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one frame: validate magic, version, and the declared body length
/// (against [`MAX_FRAME_LEN`], before allocating), then read the body.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Frame, WireError> {
    let mut magic = [0u8; 4];
    read_full(r, &mut magic)?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut header = [0u8; 7];
    read_full(r, &mut header)?;
    let [v0, v1, opcode, l0, l1, l2, l3] = header;
    let version = u16::from_le_bytes([v0, v1]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { declared: len as u64 });
    }
    // lll-check: allow(panic-free-decode, u32 → usize is widening on every supported target)
    let mut body = vec![0u8; len as usize];
    read_full(r, &mut body)?;
    Ok(Frame { opcode, body })
}

/// Encode a byte string: `u64` length + raw bytes. Byte-identical to
/// `Vec<u8>`'s [`Codec`] encoding, but one `write_all` instead of one
/// call per byte — keys and values are the hot path of every verb.
pub fn encode_bytes<W: Write + ?Sized>(w: &mut W, bytes: &[u8]) -> Result<(), WireError> {
    (bytes.len() as u64).encode(w)?;
    w.write_all(bytes)?;
    Ok(())
}

/// Decode a byte string written by [`encode_bytes`]. The shared
/// [`decode_framed_bytes`] caps the reservation at
/// [`PREALLOC_CAP`](lll_api::codec::PREALLOC_CAP); a lying length hits
/// end-of-body → [`WireError::Truncated`].
pub fn decode_bytes<R: Read + ?Sized>(r: &mut R) -> Result<Vec<u8>, WireError> {
    Ok(decode_framed_bytes(r)?)
}

/// Encode `Option<&[u8]>` as a presence byte + the bytes.
pub fn encode_opt_bytes<W: Write + ?Sized>(
    w: &mut W,
    bytes: Option<&[u8]>,
) -> Result<(), WireError> {
    match bytes {
        None => false.encode(w)?,
        Some(b) => {
            true.encode(w)?;
            encode_bytes(w, b)?;
        }
    }
    Ok(())
}

/// Decode an `Option` written by [`encode_opt_bytes`].
pub fn decode_opt_bytes<R: Read + ?Sized>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    Ok(if bool::decode(r)? { Some(decode_bytes(r)?) } else { None })
}
