//! # lll-server — an ordered-KV network service over `lll-sharded`
//!
//! The layered-list-labeling stack ends here in an actual service: a TCP
//! ordered key-value store whose engine is a
//! [`ShardedMap`](lll_sharded::ShardedMap) of opaque byte keys in
//! lexicographic order. The workspace builds offline (no tokio), so the
//! runtime is hand-rolled `std::net`: an accept loop feeding a **bounded
//! worker pool** (thread-per-connection with a hard cap — see
//! [`ServerConfig`]), which is exactly the shape the per-shard locking
//! was built for: point verbs touch one shard lock each, so connections
//! scale until the shards themselves contend.
//!
//! * **Wire protocol** ([`frame`], [`proto`]) — versioned, little-endian,
//!   length-framed request/response frames whose bodies reuse the
//!   snapshot [`Codec`](lll_api::persist::Codec), with the same
//!   discipline: decoders never panic, never trust a declared length for
//!   allocation, and surface typed [`WireError`]s.
//! * **Verbs** — `get`, `insert`, `remove`, `contains`,
//!   `range(start, end, limit)`, and `batch_insert`, which lands a whole
//!   batch through the per-shard write-batching path
//!   ([`ShardedMap::extend_from_unsorted`](lll_sharded::ShardedMap::extend_from_unsorted):
//!   sort, last-write-wins dedup, cut at the split keys, one bulk sweep
//!   per shard) instead of per-op inserts.
//! * **Ops surface** — `health`, `stats` (per-shard counts, split/merge/
//!   batch counters), `snapshot` (streams a PR-5 `ShardedMap` snapshot to
//!   disk under the maintenance barrier), and graceful `drain` (stop
//!   accepting, finish in-flight requests, optional final snapshot).
//! * **[`Client`]** — a blocking client in the same crate, sharing the
//!   frame codec; one round trip per call.
//!
//! ```no_run
//! use lll_server::{Client, Server, ServerConfig};
//! use lll_sharded::ShardedBuilder;
//! use std::sync::Arc;
//!
//! let map = Arc::new(ShardedBuilder::new().build());
//! let mut server = Server::start(map, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.insert(b"key", b"value").unwrap();
//! assert_eq!(client.get(b"key").unwrap().as_deref(), Some(&b"value"[..]));
//! server.shutdown();
//! ```
//!
//! The operational runbook — wire format tables, verb reference, drain
//! semantics, bench reproduction — is `docs/server.md` at the repository
//! root.

#![forbid(unsafe_code)]

pub mod frame;
pub mod proto;

mod client;
mod conn;
mod server;

pub use client::Client;
pub use frame::{WireError, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION};
pub use proto::{
    HealthReply, MetricsReply, Request, Response, StatsReply, TraceEventWire, TraceReply,
    VerbLatency, VERBS,
};
pub use server::{DurableKvMap, KvMap, Server, ServerConfig, ServerHandle};

// Compile-time thread-safety audit: the handle is held on one thread
// while workers serve on others, and tests drain from spawned threads.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<ServerConfig>();
    fn assert_send<T: Send>() {}
    assert_send::<Client>();
}
