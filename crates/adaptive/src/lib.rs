//! # lll-adaptive — the adaptive packed-memory array (APMA)
//!
//! Bender & Hu, *An adaptive packed-memory array* (TODS 2007) — reference
//! \[18\] of the layered-list-labeling paper, and the `X` of its Corollary 11.
//!
//! The classical PMA spreads elements **evenly** when it rebalances, which
//! is provably wasteful on skewed insertion patterns: a *hammer-insert*
//! workload (all insertions hitting one rank) refills the same leaf over and
//! over, paying Θ(log² n) amortized. The APMA instead:
//!
//! 1. **learns** where insertions land — a per-segment counter bank with
//!    periodic halving approximates Bender–Hu's predictor of recent
//!    insertion frequency; and
//! 2. **rebalances unevenly** — when a window is re-spread, free slots are
//!    allocated to segments proportionally to their predicted insertion
//!    pressure, so the hammered region receives almost all the headroom.
//!
//! On hammer-insert workloads this drops the amortized cost to O(log n)
//! (experiments E5/E10 verify the measured separation from the classical
//! PMA), while on arbitrary workloads it retains the classical O(log² n)
//! amortized bound (the uneven layout still respects every window's density
//! thresholds).

#![forbid(unsafe_code)]

use lll_core::density::{even_targets_into, SegTree, Thresholds};
use lll_core::pma::{PmaBase, RebalancePolicy};
use lll_core::slot_array::SlotArray;
use lll_core::traits::{log2f, LabelingBuilder};

/// Tuning knobs for the APMA predictor and rebalancer.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Halve all predictor counters after this many insertions (keeps the
    /// predictor focused on the *recent* workload; amortized O(1)/op).
    pub decay_every: u32,
    /// Weight of one recorded insertion relative to the baseline weight 1.
    /// Larger values chase the workload harder.
    pub hotness_weight: f64,
    /// Fraction of a segment's slots that must stay occupied-capable: a
    /// segment never receives so many gaps that it cannot hold its current
    /// elements.
    pub min_fill: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self { decay_every: 4096, hotness_weight: 8.0, min_fill: 0.1 }
    }
}

/// The APMA rebalance policy: classical thresholds, uneven target layouts.
#[derive(Clone, Debug)]
pub struct AdaptivePolicy {
    thresholds: Thresholds,
    cfg: AdaptiveConfig,
    /// Per-segment recent-insert counters (the predictor).
    counts: Vec<f64>,
    inserts_since_decay: u32,
}

impl AdaptivePolicy {
    /// Policy for a structure of `capacity` elements on `num_slots` slots.
    pub fn new(capacity: usize, num_slots: usize, cfg: AdaptiveConfig) -> Self {
        Self {
            thresholds: Thresholds::for_capacity(capacity, num_slots),
            cfg,
            counts: Vec::new(),
            inserts_since_decay: 0,
        }
    }

    /// The predictor's current counter for a segment (test instrumentation).
    pub fn segment_heat(&self, seg: usize) -> f64 {
        self.counts.get(seg).copied().unwrap_or(0.0)
    }

    fn ensure_counts(&mut self, num_segs: usize) {
        if self.counts.len() < num_segs {
            self.counts.resize(num_segs, 0.0);
        }
    }

    /// Allocate `k` elements across the segments of `[a, b)` so that hot
    /// segments keep more free slots, then lay each segment's share out
    /// evenly inside it. Appends strictly increasing in-window targets to
    /// `out` (which arrives empty).
    fn uneven_targets_into(
        &mut self,
        tree: &SegTree,
        a: usize,
        b: usize,
        k: usize,
        out: &mut Vec<usize>,
    ) {
        let s0 = tree.seg_of(a);
        let s1 = tree.seg_of(b - 1);
        let segs = s1 - s0 + 1;
        if segs <= 1 || k == 0 {
            return even_targets_into(a, b, k, out);
        }
        self.ensure_counts(tree.num_segs());
        let widths: Vec<usize> =
            (s0..=s1).map(|s| tree.seg_start(s + 1).min(b) - tree.seg_start(s).max(a)).collect();
        let total_width: usize = widths.iter().sum();
        debug_assert_eq!(total_width, b - a);
        let gaps_total = total_width - k;

        // Gap shares ∝ 1 + hotness_weight · predictor count.
        let weights: Vec<f64> =
            (s0..=s1).map(|s| 1.0 + self.cfg.hotness_weight * self.counts[s]).collect();
        let wsum: f64 = weights.iter().sum();

        // Provisional per-segment gap allocation (largest-remainder method),
        // clamped so each segment keeps at least min_fill·width occupancy
        // *capacity* and no segment gets more gaps than its width.
        let mut gaps: Vec<usize> = Vec::with_capacity(segs);
        let mut rema: Vec<(f64, usize)> = Vec::with_capacity(segs);
        let mut assigned = 0usize;
        for (i, w) in weights.iter().enumerate() {
            let ideal = gaps_total as f64 * w / wsum;
            let fl = ideal.floor() as usize;
            let max_gap =
                widths[i].saturating_sub(((widths[i] as f64) * self.cfg.min_fill).ceil() as usize);
            let g = fl.min(max_gap);
            gaps.push(g);
            assigned += g;
            if g < max_gap {
                rema.push((ideal - fl as f64, i));
            }
        }
        // Distribute the remainder to segments with the largest fractional
        // parts (that still have room for another gap).
        rema.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        let mut left = gaps_total.saturating_sub(assigned);
        let mut pass = 0usize;
        while left > 0 {
            let mut progressed = false;
            for &(_, i) in &rema {
                if left == 0 {
                    break;
                }
                let max_gap = widths[i].saturating_sub(1);
                if gaps[i] < max_gap {
                    gaps[i] += 1;
                    left -= 1;
                    progressed = true;
                }
            }
            pass += 1;
            if !progressed || pass > total_width {
                // Fall back to any segment with spare width.
                for i in 0..segs {
                    while left > 0 && gaps[i] < widths[i].saturating_sub(1) {
                        gaps[i] += 1;
                        left -= 1;
                    }
                }
                break;
            }
        }
        if left > 0 {
            // The clamps were collectively too tight (tiny windows); even
            // spread is always feasible.
            return even_targets_into(a, b, k, out);
        }

        // Per-segment element counts, then even layout inside each segment.
        let mut placed = 0usize;
        for (i, s) in (s0..=s1).enumerate() {
            let seg_a = tree.seg_start(s).max(a);
            let seg_b = tree.seg_start(s + 1).min(b);
            let elems = (widths[i] - gaps[i]).min(k - placed);
            even_targets_into(seg_a, seg_b, elems, out);
            placed += elems;
        }
        if placed < k {
            // Rounding starved the tail; redo evenly (rare, small windows).
            out.clear();
            return even_targets_into(a, b, k, out);
        }
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}

impl RebalancePolicy for AdaptivePolicy {
    fn upper(&mut self, level: usize, height: usize, _window: (usize, usize)) -> f64 {
        self.thresholds.upper(level, height)
    }

    fn lower(&mut self, level: usize, height: usize, _window: (usize, usize)) -> f64 {
        self.thresholds.lower(level, height)
    }

    fn targets_into(
        &mut self,
        tree: &SegTree,
        slots: &SlotArray,
        a: usize,
        b: usize,
        out: &mut Vec<usize>,
    ) {
        let k = slots.occupied_in(a, b);
        self.uneven_targets_into(tree, a, b, k, out);
    }

    fn on_insert(&mut self, tree: &SegTree, pos: usize) {
        self.ensure_counts(tree.num_segs());
        let seg = tree.seg_of(pos);
        self.counts[seg] += 1.0;
        self.inserts_since_decay += 1;
        if self.inserts_since_decay >= self.cfg.decay_every {
            for c in &mut self.counts {
                *c *= 0.5;
            }
            self.inserts_since_decay = 0;
        }
    }

    fn name(&self) -> &'static str {
        "adaptive-apma"
    }
}

/// The adaptive PMA.
pub type AdaptivePma = PmaBase<AdaptivePolicy>;

/// Builder for [`AdaptivePma`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveBuilder {
    /// Tuning knobs (default: [`AdaptiveConfig::default`]).
    pub cfg: AdaptiveConfig,
}

impl LabelingBuilder for AdaptiveBuilder {
    type Structure = AdaptivePma;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        PmaBase::new(capacity, num_slots, AdaptivePolicy::new(capacity, num_slots, self.cfg))
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        let lg = log2f(capacity);
        lg * lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::run_against_oracle;
    use lll_core::traits::ListLabeling;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oracle_random_workload() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 500;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..3000 {
            if len == 0 || (len < n && rng.gen_bool(0.6)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        let mut apma = AdaptiveBuilder::default().build(n, n * 13 / 10);
        run_against_oracle(&mut apma, &ops, 173);
    }

    #[test]
    fn oracle_hammer_workload() {
        let n = 600;
        let ops: Vec<Op> = (0..n).map(|_| Op::Insert(0)).collect();
        let mut apma = AdaptiveBuilder::default().build(n, n * 13 / 10);
        run_against_oracle(&mut apma, &ops, 101);
    }

    #[test]
    fn hammer_beats_classic() {
        // The headline adaptive claim: on hammer inserts (fixed rank) the
        // APMA's amortized cost is well below the classical PMA's.
        use lll_classic::ClassicBuilder;
        let n = 1 << 13;
        let m = n * 13 / 10;
        let hammer_rank = 0usize;

        let mut apma = AdaptiveBuilder::default().build(n, m);
        let mut classic = ClassicBuilder.build(n, m);
        let mut cost_a = 0u64;
        let mut cost_c = 0u64;
        for _ in 0..n {
            cost_a += apma.insert(hammer_rank).cost();
            cost_c += classic.insert(hammer_rank).cost();
        }
        let (a, c) = (cost_a as f64 / n as f64, cost_c as f64 / n as f64);
        assert!(
            a < 0.75 * c,
            "APMA ({a:.2}/op) should beat classical ({c:.2}/op) on hammer inserts"
        );
    }

    #[test]
    fn predictor_tracks_hot_segment() {
        let n = 2048;
        let mut apma = AdaptiveBuilder::default().build(n, n * 13 / 10);
        for _ in 0..n / 2 {
            apma.insert(0);
        }
        // The head of the array should be the hottest region.
        let tree = apma.tree().clone();
        let hot = apma.policy().segment_heat(tree.seg_of(apma.slots().select(0)));
        let cold = apma.policy().segment_heat(tree.num_segs() - 1);
        assert!(hot > cold, "predictor hot={hot} cold={cold}");
    }

    #[test]
    fn uneven_layout_is_valid() {
        // After hammering, a rebalance must still produce a legal layout
        // (strictly increasing targets, all in window) — checked by the
        // debug assertions inside PmaBase; here we just exercise it hard.
        let n = 4096;
        let mut apma = AdaptiveBuilder::default().build(n, n * 13 / 10);
        for i in 0..n / 2 {
            apma.insert(i / 7);
        }
        assert_eq!(apma.len(), n / 2);
        let labels: Vec<usize> = (0..apma.len()).map(|r| apma.label_of_rank(r)).collect();
        assert!(labels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn random_workload_cost_stays_polylog() {
        let n = 1 << 12;
        let mut apma = AdaptiveBuilder::default().build(n, n * 13 / 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut total = 0u64;
        for len in 0..n {
            total += apma.insert(rng.gen_range(0..=len)).cost();
        }
        let amortized = total as f64 / n as f64;
        assert!(amortized < 80.0, "adaptive amortized {amortized} too high on random input");
    }
}
