//! [`OrderedList`]: order maintenance with stable handles and O(1) order
//! queries — Dietz '82, the application the paper's footnote 1 motivates.
//!
//! The list stores values in a list-labeling backend and keeps a **label
//! table** (handle → slot position) maintained *incrementally from the
//! move logs*: each operation's [`OpReport`] lists exactly the elements
//! whose labels changed, so the total label-maintenance work equals the
//! backend's move cost — precisely why low-cost list labeling matters for
//! order maintenance. `order(a, b)` is then a single label comparison.
//! Growth/shrink rebuilds (which relabel everything) are detected via the
//! backend's epoch and resynchronized with one O(n) sweep, amortized free
//! against the Ω(n) operations between rebuilds.

use crate::backend::{ErasedList, ListBuilder, RawList};
use crate::cursor::{Cursor, CursorMut};
use crate::persist::{Codec, ContainerKind, Header, SnapshotError};
use lll_core::growable::Handle;
use lll_core::ids::ElemId;
use lll_core::report::{BulkReport, OpReport};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};

/// A dynamically sized ordered list with stable handles, O(1) `order`
/// queries, and handle-relative insertion.
///
/// ```
/// use lll_api::OrderedList;
///
/// let mut list = OrderedList::new();
/// let b = list.push_front("b");
/// let a = list.insert_before(b, "a");
/// let c = list.insert_after(b, "c");
/// assert!(list.precedes(a, b) && list.precedes(b, c));
/// assert_eq!(list.remove(b), Some("b"));
/// assert!(list.precedes(a, c));
/// assert_eq!(list.iter().map(|(_, v)| *v).collect::<Vec<_>>(), ["a", "c"]);
/// ```
pub struct OrderedList<V, L: RawList = ErasedList> {
    list: L,
    label: HashMap<Handle, u32>,
    value: HashMap<Handle, V>,
    /// Reusable report buffer: point operations drain the backend's move
    /// log into it and apply the label updates in place, so steady-state
    /// inserts allocate nothing on the logging path.
    scratch: OpReport,
}

impl<V> OrderedList<V> {
    /// An empty list on the default backend (Corollary 11, erased).
    pub fn new() -> Self {
        ListBuilder::new().ordered_list()
    }
}

impl<V> Default for OrderedList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, L: RawList> OrderedList<V, L> {
    /// Wrap an already-built backend — erased ([`ListBuilder::build`]) or
    /// concrete ([`ListBuilder::build_growable`]) for static dispatch.
    ///
    /// Panics if the backend is non-empty: the label table must observe
    /// every operation.
    pub fn with_backend(list: L) -> Self {
        assert!(list.is_empty(), "OrderedList requires an empty backend");
        Self { list, label: HashMap::new(), value: HashMap::new(), scratch: OpReport::default() }
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The underlying algorithm's name.
    pub fn backend_name(&self) -> &'static str {
        self.list.backend_name()
    }

    /// Total element moves the backend has performed — equal to the total
    /// number of label-table rewrites outside rebuild resyncs (the paper's
    /// cost model, surfaced).
    pub fn total_moves(&self) -> u64 {
        self.list.total_moves()
    }

    /// Growth/shrink rebuild statistics of the backend.
    pub fn grow_stats(&self) -> lll_core::growable::GrowableStats {
        self.list.grow_stats()
    }

    /// The backend's observability handle: counters, move/rebalance
    /// histograms, and the structural trace ring (see
    /// [`lll_core::metrics::ListMetrics`]).
    pub fn metrics(&self) -> lll_core::metrics::MetricsHandle {
        self.list.metrics_handle()
    }

    /// True if `h` refers to a live element.
    pub fn contains(&self, h: Handle) -> bool {
        self.value.contains_key(&h)
    }

    /// The value of `h`.
    pub fn get(&self, h: Handle) -> Option<&V> {
        self.value.get(&h)
    }

    /// Mutable access to the value of `h`.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut V> {
        self.value.get_mut(&h)
    }

    /// The handle of the first element.
    pub fn front(&self) -> Option<Handle> {
        (!self.is_empty()).then(|| self.list.handle_at_rank(0))
    }

    /// The handle of the last element.
    pub fn back(&self) -> Option<Handle> {
        (!self.is_empty()).then(|| self.list.handle_at_rank(self.len() - 1))
    }

    /// The current rank of `h` — O(log m) via its label. Ranks shift as
    /// neighbors are inserted/deleted; handles don't.
    pub fn rank(&self, h: Handle) -> Option<usize> {
        self.label.get(&h).map(|&l| self.list.rank_at_label(l as usize))
    }

    /// The handle of the element of `rank`.
    ///
    /// **Panics** if `rank >= len`;
    /// [`get_handle_at_rank`](Self::get_handle_at_rank) is the checked
    /// variant.
    pub fn handle_at_rank(&self, rank: usize) -> Handle {
        self.list.handle_at_rank(rank)
    }

    /// The handle of the element of `rank`, or `None` if `rank >= len` —
    /// the checked form of [`handle_at_rank`](Self::handle_at_rank).
    pub fn get_handle_at_rank(&self, rank: usize) -> Option<Handle> {
        (rank < self.len()).then(|| self.handle_at_rank(rank))
    }

    /// Read-only access to the underlying backend (cost counters, labels,
    /// slot-array introspection).
    pub fn backend(&self) -> &L {
        &self.list
    }

    pub(crate) fn label_of(&self, h: Handle) -> Option<u32> {
        self.label.get(&h).copied()
    }

    /// How `a` and `b` compare in list order — O(1), one label comparison.
    ///
    /// Panics if either handle is stale (use [`contains`](Self::contains)
    /// to probe).
    pub fn order(&self, a: Handle, b: Handle) -> Ordering {
        self.label[&a].cmp(&self.label[&b])
    }

    /// True if `a` precedes `b` in list order — O(1).
    pub fn precedes(&self, a: Handle, b: Handle) -> bool {
        self.order(a, b) == Ordering::Less
    }

    /// Absorb one operation's or batch's label churn, or resync after a
    /// rebuild. Updates apply in stream order, last write winning — bulk
    /// move logs are chronological (a later move may relocate a
    /// just-placed element).
    fn sync_updates(&mut self, pre_epoch: u64, updates: impl Iterator<Item = (ElemId, usize)>) {
        if self.list.epoch() != pre_epoch {
            self.resync();
            return;
        }
        for (elem, pos) in updates {
            if let Some(h) = self.list.handle_of_elem(elem) {
                self.label.insert(h, pos as u32);
            }
        }
    }

    /// Absorb one operation's label churn, or resync after a rebuild.
    fn sync(&mut self, pre_epoch: u64, rep: &OpReport) {
        self.sync_updates(pre_epoch, rep.label_updates());
    }

    /// Batch counterpart of [`sync`](Self::sync).
    fn sync_bulk(&mut self, pre_epoch: u64, rep: &BulkReport) {
        self.sync_updates(pre_epoch, rep.label_updates());
    }

    /// Rebuild the label table from a full backend sweep (the post-rebuild
    /// path: a rebuild rewrites every label). Streams through the backend's
    /// zero-copy label visitor — no intermediate snapshot `Vec`.
    fn resync(&mut self) {
        self.label.clear();
        let label = &mut self.label;
        self.list.for_each_label(&mut |h, pos| {
            label.insert(h, pos as u32);
        });
    }

    /// Insert `value` at `rank`, returning its stable handle.
    ///
    /// Panics if `rank > len`.
    pub fn insert_at(&mut self, rank: usize, value: V) -> Handle {
        let mut rep = std::mem::take(&mut self.scratch);
        let pre_epoch = self.list.epoch();
        let h = self.list.insert_reported_into(rank, &mut rep);
        self.value.insert(h, value);
        self.sync(pre_epoch, &rep);
        self.scratch = rep;
        h
    }

    /// Insert `value` as the new first element.
    pub fn push_front(&mut self, value: V) -> Handle {
        self.insert_at(0, value)
    }

    /// Insert `value` as the new last element.
    pub fn push_back(&mut self, value: V) -> Handle {
        self.insert_at(self.len(), value)
    }

    /// Insert `value` immediately after `after`.
    ///
    /// Panics if `after` is stale.
    pub fn insert_after(&mut self, after: Handle, value: V) -> Handle {
        let rank = self.rank(after).expect("insert_after on a stale handle");
        self.insert_at(rank + 1, value)
    }

    /// Insert `value` immediately before `before`.
    ///
    /// Panics if `before` is stale.
    pub fn insert_before(&mut self, before: Handle, value: V) -> Handle {
        let rank = self.rank(before).expect("insert_before on a stale handle");
        self.insert_at(rank, value)
    }

    /// Batch-insert `values` at consecutive ranks starting at `rank`, as
    /// **one** backend operation: the run lands via a single evenly-spread
    /// sweep (or rides a single growth rebuild) instead of per-element
    /// rebalance cascades, and the label table absorbs one batch report.
    /// Returns the new handles in list order.
    ///
    /// Panics if `rank > len`.
    pub fn splice_at<I: IntoIterator<Item = V>>(&mut self, rank: usize, values: I) -> Vec<Handle> {
        let vals: Vec<V> = values.into_iter().collect();
        let pre_epoch = self.list.epoch();
        let (handles, rep) = self.list.splice_reported(rank, vals.len());
        for (&h, v) in handles.iter().zip(vals) {
            self.value.insert(h, v);
        }
        self.sync_bulk(pre_epoch, &rep);
        handles
    }

    /// Append `values` at the back in one bulk operation — the sorted
    /// ingest path. Returns the new handles in list order.
    ///
    /// ```
    /// use lll_api::OrderedList;
    ///
    /// let mut list = OrderedList::new();
    /// let handles = list.extend_back(0..100);
    /// assert_eq!(list.len(), 100);
    /// assert!(list.precedes(handles[0], handles[99]));
    /// ```
    pub fn extend_back<I: IntoIterator<Item = V>>(&mut self, values: I) -> Vec<Handle> {
        self.splice_at(self.len(), values)
    }

    /// Batch-insert `values` immediately after `after`, as one backend
    /// operation. Returns the new handles in list order.
    ///
    /// Panics if `after` is stale.
    pub fn splice_after<I: IntoIterator<Item = V>>(
        &mut self,
        after: Handle,
        values: I,
    ) -> Vec<Handle> {
        let rank = self.rank(after).expect("splice_after on a stale handle");
        self.splice_at(rank + 1, values)
    }

    /// Batch-insert `values` immediately before `before`, as one backend
    /// operation. Returns the new handles in list order.
    ///
    /// Panics if `before` is stale.
    pub fn splice_before<I: IntoIterator<Item = V>>(
        &mut self,
        before: Handle,
        values: I,
    ) -> Vec<Handle> {
        let rank = self.rank(before).expect("splice_before on a stale handle");
        self.splice_at(rank, values)
    }

    /// Remove the element `h`, returning its value (`None` if stale).
    pub fn remove(&mut self, h: Handle) -> Option<V> {
        let rank = self.rank(h)?;
        let mut rep = std::mem::take(&mut self.scratch);
        let pre_epoch = self.list.epoch();
        let gone = self.list.delete_reported_into(rank, &mut rep);
        debug_assert_eq!(gone, h, "label table pointed at the wrong rank");
        self.label.remove(&h);
        let value = self.value.remove(&h);
        self.sync(pre_epoch, &rep);
        self.scratch = rep;
        value
    }

    /// Remove and return the first element's `(handle, value)`.
    pub fn pop_front(&mut self) -> Option<(Handle, V)> {
        let h = self.front()?;
        let v = self.remove(h)?;
        Some((h, v))
    }

    /// Remove and return the last element's `(handle, value)`.
    pub fn pop_back(&mut self) -> Option<(Handle, V)> {
        let h = self.back()?;
        let v = self.remove(h)?;
        Some((h, v))
    }

    /// Remove every element, invalidating all handles. The backend (and its
    /// cost counters) stays alive; deletions run back-to-front, so this is
    /// O(n) plus at most O(n) shrink-rebuild moves.
    pub fn clear(&mut self) {
        while self.pop_back().is_some() {}
    }

    /// Iterate `(handle, &value)` in list order — a label-to-label walk of
    /// the backend's occupancy structure: O(1) space, no per-step rank
    /// resolution.
    pub fn iter(&self) -> Iter<'_, V, L> {
        Iter {
            list: &self.list,
            values: &self.value,
            label: self.list.first_label(),
            remaining: self.len(),
        }
    }

    /// Iterate values in list order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// A read-only cursor parked on the first element (exhausted if the
    /// list is empty). Cursors walk the backend's occupancy structure
    /// label-to-label — no per-step rank→label resolution.
    pub fn cursor_front(&self) -> Cursor<'_, V, L> {
        Cursor::new(self, self.list.first_label())
    }

    /// A read-only cursor parked on the last element.
    pub fn cursor_back(&self) -> Cursor<'_, V, L> {
        Cursor::new(self, self.list.last_label())
    }

    /// A read-only cursor parked on `h`, or `None` if `h` is stale.
    /// Positioning is one O(1) label-table lookup.
    pub fn cursor_at(&self, h: Handle) -> Option<Cursor<'_, V, L>> {
        let label = self.label_of(h)?;
        Some(Cursor::new(self, Some(label as usize)))
    }

    /// A mutating cursor parked on the first element (on the end ghost if
    /// the list is empty): walk with `move_next`/`move_prev`, and edit in
    /// place with `insert_before_here`/`insert_after_here`/`remove_here`.
    pub fn cursor_front_mut(&mut self) -> CursorMut<'_, V, L> {
        CursorMut::new_front(self)
    }

    /// A mutating cursor parked on `h`, or `None` if `h` is stale. One
    /// rank resolution at creation; walking is label-native from there.
    pub fn cursor_at_mut(&mut self, h: Handle) -> Option<CursorMut<'_, V, L>> {
        let rank = self.rank(h)?;
        Some(CursorMut::new_at(self, h, rank))
    }

    /// Verify the label table exactly mirrors the backend (O(n); used by
    /// tests).
    pub fn check_labels(&self) {
        let snap = self.list.labels_snapshot();
        assert_eq!(snap.len(), self.label.len(), "label table size diverged");
        assert_eq!(snap.len(), self.value.len(), "value table size diverged");
        for (h, pos) in snap {
            assert_eq!(self.label.get(&h), Some(&(pos as u32)), "stale label for {h:?}");
        }
    }
}

impl<V: Codec> OrderedList<V> {
    /// Write a durable snapshot of the list: the versioned header (backend,
    /// seed, η, element count) followed by every `(handle, value)` pair in
    /// **rank order** — the handle↔rank table rides along, so handles
    /// issued before the snapshot stay valid in the restored list. Labels
    /// are not persisted (only rank order is semantic; the restored layout
    /// is rebuilt by the bulk sweep).
    ///
    /// Writing to a `File`? Wrap it in a [`std::io::BufWriter`] — the
    /// encoder issues one small write per field.
    ///
    /// ```
    /// use lll_api::OrderedList;
    ///
    /// let mut list = OrderedList::new();
    /// let a = list.push_back("a".to_string());
    /// let b = list.push_back("b".to_string());
    /// let mut buf = Vec::new();
    /// list.write_snapshot(&mut buf).unwrap();
    /// let back: OrderedList<String> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
    /// // Pre-snapshot handles resolve to the same elements after restore.
    /// assert_eq!(back.get(a), Some(&"a".to_string()));
    /// assert!(back.precedes(a, b));
    /// ```
    pub fn write_snapshot<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        Header::new(ContainerKind::OrderedList, self.list.config(), self.len() as u64)
            .write_to(w)?;
        for (h, v) in self.iter() {
            h.0.encode(w)?;
            v.encode(w)?;
        }
        Ok(())
    }

    /// Restore a list from a snapshot written by
    /// [`write_snapshot`](Self::write_snapshot): rebuild the recorded
    /// backend, land the decoded run through the O(n) handle-preserving
    /// bulk sweep ([`Growable::load_with_handles`]), and resync the label
    /// table once. Handles held from before the snapshot resolve to the
    /// same elements — same values, same relative order — and fresh
    /// insertions never collide with restored handles.
    ///
    /// Never panics on bad input: truncated, corrupted, version- or
    /// container-mismatched streams return the matching [`SnapshotError`]
    /// variant (duplicate handles are [`SnapshotError::Corrupt`]). Reading
    /// from a `File`? Wrap it in a [`std::io::BufReader`].
    ///
    /// [`Growable::load_with_handles`]: lll_core::growable::Growable::load_with_handles
    pub fn read_snapshot<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        let header = Header::read_expecting(r, ContainerKind::OrderedList)?;
        let count = usize::try_from(header.count)
            .map_err(|_| SnapshotError::Corrupt("element count exceeds host width".into()))?;
        let mut handles: Vec<Handle> = Vec::with_capacity(count.min(1 << 16));
        let mut values: HashMap<Handle, V> = HashMap::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let raw = u64::decode(r)?;
            if raw == u64::MAX {
                return Err(SnapshotError::Corrupt("reserved handle value".into()));
            }
            let v = V::decode(r)?;
            // The value table doubles as the duplicate detector: one hash
            // structure, one probe per entry.
            if values.insert(Handle(raw), v).is_some() {
                return Err(SnapshotError::Corrupt(format!("duplicate handle {raw}")));
            }
            handles.push(Handle(raw));
        }
        let mut list = ListBuilder::from_config(header.config()).build();
        list.load_with_handles(&handles);
        let mut restored =
            Self { list, label: HashMap::new(), value: values, scratch: OpReport::default() };
        restored.resync();
        Ok(restored)
    }
}

/// Iterator over `(Handle, &V)` in list order (see [`OrderedList::iter`]):
/// a label-to-label occupancy walk, O(1) space.
pub struct Iter<'a, V, L: RawList = ErasedList> {
    list: &'a L,
    values: &'a HashMap<Handle, V>,
    label: Option<usize>,
    remaining: usize,
}

impl<'a, V, L: RawList> Iterator for Iter<'a, V, L> {
    type Item = (Handle, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let l = self.label?;
        let h = self.list.handle_at_label(l)?;
        self.label = self.list.next_label_after(l);
        self.remaining -= 1;
        Some((h, &self.values[&h]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<V, L: RawList> ExactSizeIterator for Iter<'_, V, L> {}

/// Owning iterator over values in list order (see
/// [`OrderedList::into_iter`](IntoIterator)).
pub struct IntoIter<V, L: RawList = ErasedList> {
    list: L,
    label: Option<usize>,
    values: HashMap<Handle, V>,
}

impl<V, L: RawList> Iterator for IntoIter<V, L> {
    type Item = V;

    fn next(&mut self) -> Option<Self::Item> {
        let l = self.label?;
        let h = self.list.handle_at_label(l)?;
        self.label = self.list.next_label_after(l);
        self.values.remove(&h)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.values.len(), Some(self.values.len()))
    }
}

impl<V, L: RawList> ExactSizeIterator for IntoIter<V, L> {}

impl<'a, V, L: RawList> IntoIterator for &'a OrderedList<V, L> {
    type Item = (Handle, &'a V);
    type IntoIter = Iter<'a, V, L>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<V, L: RawList> IntoIterator for OrderedList<V, L> {
    type Item = V;
    type IntoIter = IntoIter<V, L>;

    /// Consume the list, yielding owned values in list order — the same
    /// O(1)-space occupancy walk as [`OrderedList::iter`], over the
    /// moved-in backend.
    fn into_iter(self) -> Self::IntoIter {
        let label = self.list.first_label();
        IntoIter { list: self.list, label, values: self.value }
    }
}

impl<V, L: RawList> Extend<V> for OrderedList<V, L> {
    /// Append values at the back via the bulk path
    /// ([`extend_back`](OrderedList::extend_back)).
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        self.extend_back(iter);
    }
}

impl<V> FromIterator<V> for OrderedList<V> {
    /// Collect values in order on the default backend, via one bulk load.
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        let mut list = Self::new();
        list.extend_back(iter);
        list
    }
}

impl<V: fmt::Debug, L: RawList> fmt::Debug for OrderedList<V, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;

    #[test]
    fn order_queries_match_ground_truth() {
        let mut ol: OrderedList<usize> = ListBuilder::new().seed(5).ordered_list();
        let mut handles = Vec::new();
        for i in 0..500 {
            let h = match handles.last() {
                None => ol.push_back(i),
                Some(&last) => ol.insert_after(last, i),
            };
            handles.push(h);
        }
        for i in (0..handles.len()).step_by(31) {
            for j in (0..handles.len()).step_by(29) {
                if i != j {
                    assert_eq!(ol.precedes(handles[i], handles[j]), i < j);
                }
            }
        }
        ol.check_labels();
    }

    #[test]
    fn labels_survive_growth_rebuilds() {
        for backend in Backend::ALL {
            let mut ol: OrderedList<u32> =
                ListBuilder::new().backend(backend).initial_capacity(16).ordered_list();
            let mut handles = Vec::new();
            for i in 0..200 {
                handles.push(ol.push_back(i));
            }
            assert!(ol.list.grow_stats().grows >= 1, "{} never grew", backend.name());
            ol.check_labels();
            for w in handles.windows(2) {
                assert!(ol.precedes(w[0], w[1]), "{} order broke", backend.name());
            }
            // shrink back down and re-verify
            for _ in 0..180 {
                ol.pop_front();
            }
            ol.check_labels();
            let rest: Vec<u32> = ol.values().copied().collect();
            assert_eq!(rest, (180..200).collect::<Vec<u32>>(), "{}", backend.name());
        }
    }

    #[test]
    fn remove_returns_values_and_invalidates_handles() {
        let mut ol = OrderedList::new();
        let a = ol.push_back("a");
        let b = ol.push_back("b");
        assert_eq!(ol.remove(a), Some("a"));
        assert_eq!(ol.remove(a), None);
        assert!(!ol.contains(a));
        assert!(ol.contains(b));
        assert_eq!(ol.get(b), Some(&"b"));
    }

    #[test]
    fn bulk_splices_keep_order_and_labels() {
        for backend in Backend::ALL {
            let mut ol: OrderedList<u32> =
                ListBuilder::new().backend(backend).initial_capacity(16).ordered_list();
            let front = ol.extend_back(0..50); // forces growth: bulk rebuild path
            ol.check_labels();
            let mid = ol.splice_after(front[9], 100..103); // in-place batch
            let pre = ol.splice_before(front[0], 200..202);
            ol.check_labels();
            let got: Vec<u32> = ol.values().copied().collect();
            let mut want: Vec<u32> = (200..202).collect();
            want.extend(0..10);
            want.extend(100..103);
            want.extend(10..50);
            assert_eq!(got, want, "{}", backend.name());
            assert!(ol.precedes(pre[1], front[0]), "{}", backend.name());
            assert!(ol.precedes(front[9], mid[0]), "{}", backend.name());
            assert!(ol.precedes(mid[2], front[10]), "{}", backend.name());
        }
    }

    #[test]
    fn bulk_append_is_cheaper_than_point_appends() {
        let mk = || -> OrderedList<u32> {
            ListBuilder::new().backend(Backend::Classic).initial_capacity(16).ordered_list()
        };
        let mut bulk = mk();
        bulk.extend_back(0..2000);
        let mut inc = mk();
        for i in 0..2000 {
            inc.push_back(i);
        }
        assert_eq!(bulk.values().collect::<Vec<_>>(), inc.values().collect::<Vec<_>>());
        assert!(
            bulk.total_moves() < inc.total_moves(),
            "bulk {} !< incremental {}",
            bulk.total_moves(),
            inc.total_moves()
        );
    }

    #[test]
    fn std_traits_roundtrip() {
        let list: OrderedList<char> = "layered".chars().collect();
        assert_eq!(format!("{list:?}"), "['l', 'a', 'y', 'e', 'r', 'e', 'd']");
        let pairs: Vec<(Handle, char)> = (&list).into_iter().map(|(h, c)| (h, *c)).collect();
        assert_eq!(pairs.len(), 7);
        assert_eq!(list.get_handle_at_rank(3), Some(pairs[3].0));
        assert_eq!(list.get_handle_at_rank(7), None);
        let back: String = list.into_iter().collect();
        assert_eq!(back, "layered");
    }

    #[test]
    fn cursor_mut_edits_under_churn() {
        let mut ol: OrderedList<i32> =
            ListBuilder::new().backend(Backend::Classic).initial_capacity(16).ordered_list();
        ol.extend_back([10, 20, 30, 40]);
        {
            let mut cur = ol.cursor_front_mut();
            assert_eq!(cur.value(), Some(&10));
            cur.move_next();
            cur.insert_before_here(15); // before the 20
            assert_eq!(cur.value(), Some(&20));
            assert_eq!(cur.rank(), 2);
            cur.insert_after_here(25);
            assert_eq!(cur.remove_here(), Some(20)); // cursor lands on 25
            assert_eq!(cur.value(), Some(&25));
            *cur.value_mut().unwrap() += 1;
            // Walk to the ghost and append there.
            while cur.handle().is_some() {
                cur.move_next();
            }
            cur.insert_before_here(50);
            cur.move_prev();
            assert_eq!(cur.value(), Some(&50));
        }
        ol.check_labels();
        let got: Vec<i32> = ol.values().copied().collect();
        assert_eq!(got, [10, 15, 26, 30, 40, 50]);
    }

    #[test]
    fn cursor_mut_survives_growth_rebuilds() {
        let mut ol: OrderedList<usize> =
            ListBuilder::new().backend(Backend::Classic).initial_capacity(16).ordered_list();
        let h = ol.push_back(0);
        {
            let mut cur = ol.cursor_at_mut(h).expect("live handle");
            // Insert far past the initial capacity through the cursor
            // alone: every growth rebuild must leave the cursor usable.
            for i in 1..200 {
                cur.insert_before_here(i);
            }
            assert_eq!(cur.handle(), Some(h));
            assert_eq!(cur.rank(), 199);
        }
        ol.check_labels();
        assert_eq!(ol.rank(h), Some(199));
        assert_eq!(ol.len(), 200);
    }

    #[test]
    fn steady_state_ops_reuse_the_move_log_sink() {
        // Zero-allocation logging through the whole stack: OrderedList's
        // scratch report → Growable → the slot array's move-log sink. A
        // pop/push cycle at the tail returns the structure to the same
        // layout, so after one warm-up cycle every drain must reuse the
        // buffers (the reuse counter equals the drain counter exactly).
        use lll_classic::ClassicBuilder;
        use lll_core::growable::Growable;
        use lll_core::traits::ListLabeling as _;
        let backend: Growable<ClassicBuilder> =
            ListBuilder::new().initial_capacity(1024).build_growable(ClassicBuilder);
        let mut ol: OrderedList<u32, _> = OrderedList::with_backend(backend);
        for i in 0..512 {
            ol.push_back(i);
        }
        // One warm-up cycle grows scratch capacity to the cycle's high-water
        // mark; the remaining cycles must be allocation-free on the log path.
        ol.pop_back();
        ol.push_back(0);
        let slots = |ol: &OrderedList<u32, Growable<ClassicBuilder>>| {
            (
                ol.backend().inner().slots().log_sink_drains(),
                ol.backend().inner().slots().log_sink_reuses(),
            )
        };
        let (d0, r0) = slots(&ol);
        for i in 0..500 {
            ol.pop_back();
            ol.push_back(i);
        }
        let (d1, r1) = slots(&ol);
        assert_eq!(d1 - d0, 1000, "one drain per operation");
        assert_eq!(r1 - r0, d1 - d0, "every steady-state drain must reuse its buffer");
    }

    #[test]
    fn iter_walks_labels_without_rank_resolution() {
        use lll_classic::ClassicBuilder;
        let backend = ListBuilder::new().build_growable(ClassicBuilder);
        let mut ol: OrderedList<u32, _> = OrderedList::with_backend(backend);
        for i in 0..400 {
            ol.insert_at(i / 2, i as u32);
        }
        let before = ol.backend().rank_resolutions();
        let walked: Vec<u32> = ol.iter().map(|(_, v)| *v).collect();
        assert_eq!(walked.len(), 400);
        assert_eq!(
            ol.backend().rank_resolutions(),
            before,
            "iter must walk labels, not resolve ranks"
        );
        let mut it = ol.iter();
        assert_eq!(it.len(), 400);
        it.next();
        assert_eq!(it.len(), 399);
    }

    #[test]
    fn snapshot_roundtrip_keeps_handles_valid() {
        for backend in Backend::ALL {
            let mut ol: OrderedList<u64> =
                ListBuilder::new().backend(backend).seed(3).initial_capacity(16).ordered_list();
            let mut handles = Vec::new();
            for i in 0..300u64 {
                handles.push(ol.insert_at((i / 3) as usize, i));
            }
            // Churn so handle ids are non-contiguous.
            for i in (0..300).step_by(7) {
                ol.remove(handles[i]);
            }
            let live: Vec<(Handle, u64)> = ol.iter().map(|(h, v)| (h, *v)).collect();
            let mut buf = Vec::new();
            ol.write_snapshot(&mut buf).unwrap();
            let back: OrderedList<u64> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
            assert_eq!(back.len(), ol.len(), "{backend}");
            back.check_labels();
            // Pre-snapshot handles resolve to the same elements, in the
            // same order, with O(1) order queries intact.
            assert_eq!(back.iter().map(|(h, v)| (h, *v)).collect::<Vec<_>>(), live, "{backend}");
            for w in live.windows(2) {
                assert!(back.precedes(w[0].0, w[1].0), "{backend} order broke");
            }
            for (i, &(h, v)) in live.iter().enumerate() {
                assert_eq!(back.get(h), Some(&v), "{backend} value moved");
                assert_eq!(back.rank(h), Some(i), "{backend} rank moved");
            }
            // Removed handles stay invalid after restore.
            assert_eq!(back.get(handles[0]), None, "{backend}");
        }
    }

    #[test]
    fn restored_list_keeps_growing_without_handle_collisions() {
        let mut ol: OrderedList<u32> = OrderedList::new();
        let old = ol.extend_back(0..50);
        let mut buf = Vec::new();
        ol.write_snapshot(&mut buf).unwrap();
        let mut back: OrderedList<u32> = OrderedList::read_snapshot(&mut buf.as_slice()).unwrap();
        let fresh = back.extend_back(50..100);
        for h in &fresh {
            assert!(!old.contains(h), "restored allocator reused a persisted handle");
        }
        assert_eq!(back.len(), 100);
        back.check_labels();
        assert!(back.precedes(old[49], fresh[0]));
        let values: Vec<u32> = back.values().copied().collect();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mid_list_edits_keep_order() {
        let mut ol = OrderedList::new();
        let mut cursor = ol.push_back(0);
        for i in 1..100 {
            cursor = ol.insert_after(cursor, i);
        }
        let mid = ol.handle_at_rank(50);
        let x = ol.insert_after(mid, 1000);
        let y = ol.insert_before(mid, 2000);
        assert!(ol.precedes(y, mid) && ol.precedes(mid, x));
        assert_eq!(ol.rank(y), Some(50));
        assert_eq!(ol.rank(mid), Some(51));
        assert_eq!(ol.rank(x), Some(52));
        ol.remove(mid);
        assert!(ol.precedes(y, x));
        ol.check_labels();
    }
}
