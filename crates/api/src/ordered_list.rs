//! [`OrderedList`]: order maintenance with stable handles and O(1) order
//! queries — Dietz '82, the application the paper's footnote 1 motivates.
//!
//! The list stores values in a list-labeling backend and keeps a **label
//! table** (handle → slot position) maintained *incrementally from the
//! move logs*: each operation's [`OpReport`] lists exactly the elements
//! whose labels changed, so the total label-maintenance work equals the
//! backend's move cost — precisely why low-cost list labeling matters for
//! order maintenance. `order(a, b)` is then a single label comparison.
//! Growth/shrink rebuilds (which relabel everything) are detected via the
//! backend's epoch and resynchronized with one O(n) sweep, amortized free
//! against the Ω(n) operations between rebuilds.

use crate::backend::{ErasedList, ListBuilder, RawList};
use lll_core::growable::Handle;
use lll_core::report::OpReport;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A dynamically sized ordered list with stable handles, O(1) `order`
/// queries, and handle-relative insertion.
///
/// ```
/// use lll_api::OrderedList;
///
/// let mut list = OrderedList::new();
/// let b = list.push_front("b");
/// let a = list.insert_before(b, "a");
/// let c = list.insert_after(b, "c");
/// assert!(list.precedes(a, b) && list.precedes(b, c));
/// assert_eq!(list.remove(b), Some("b"));
/// assert!(list.precedes(a, c));
/// assert_eq!(list.iter().map(|(_, v)| *v).collect::<Vec<_>>(), ["a", "c"]);
/// ```
pub struct OrderedList<V, L: RawList = ErasedList> {
    list: L,
    label: HashMap<Handle, u32>,
    value: HashMap<Handle, V>,
}

impl<V> OrderedList<V> {
    /// An empty list on the default backend (Corollary 11, erased).
    pub fn new() -> Self {
        ListBuilder::new().ordered_list()
    }
}

impl<V> Default for OrderedList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, L: RawList> OrderedList<V, L> {
    /// Wrap an already-built backend — erased ([`ListBuilder::build`]) or
    /// concrete ([`ListBuilder::build_growable`]) for static dispatch.
    ///
    /// Panics if the backend is non-empty: the label table must observe
    /// every operation.
    pub fn with_backend(list: L) -> Self {
        assert!(list.is_empty(), "OrderedList requires an empty backend");
        Self { list, label: HashMap::new(), value: HashMap::new() }
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The underlying algorithm's name.
    pub fn backend_name(&self) -> &'static str {
        self.list.backend_name()
    }

    /// Total element moves the backend has performed — equal to the total
    /// number of label-table rewrites outside rebuild resyncs (the paper's
    /// cost model, surfaced).
    pub fn total_moves(&self) -> u64 {
        self.list.total_moves()
    }

    /// Growth/shrink rebuild statistics of the backend.
    pub fn grow_stats(&self) -> lll_core::growable::GrowableStats {
        self.list.grow_stats()
    }

    /// True if `h` refers to a live element.
    pub fn contains(&self, h: Handle) -> bool {
        self.value.contains_key(&h)
    }

    /// The value of `h`.
    pub fn get(&self, h: Handle) -> Option<&V> {
        self.value.get(&h)
    }

    /// Mutable access to the value of `h`.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut V> {
        self.value.get_mut(&h)
    }

    /// The handle of the first element.
    pub fn front(&self) -> Option<Handle> {
        (!self.is_empty()).then(|| self.list.handle_at_rank(0))
    }

    /// The handle of the last element.
    pub fn back(&self) -> Option<Handle> {
        (!self.is_empty()).then(|| self.list.handle_at_rank(self.len() - 1))
    }

    /// The current rank of `h` — O(log m) via its label. Ranks shift as
    /// neighbors are inserted/deleted; handles don't.
    pub fn rank(&self, h: Handle) -> Option<usize> {
        self.label.get(&h).map(|&l| self.list.rank_at_label(l as usize))
    }

    /// The handle of the element of `rank`.
    ///
    /// Panics if `rank >= len`.
    pub fn handle_at_rank(&self, rank: usize) -> Handle {
        self.list.handle_at_rank(rank)
    }

    /// How `a` and `b` compare in list order — O(1), one label comparison.
    ///
    /// Panics if either handle is stale (use [`contains`](Self::contains)
    /// to probe).
    pub fn order(&self, a: Handle, b: Handle) -> Ordering {
        self.label[&a].cmp(&self.label[&b])
    }

    /// True if `a` precedes `b` in list order — O(1).
    pub fn precedes(&self, a: Handle, b: Handle) -> bool {
        self.order(a, b) == Ordering::Less
    }

    /// Absorb one operation's label churn, or resync after a rebuild.
    fn sync(&mut self, pre_epoch: u64, rep: &OpReport) {
        if self.list.epoch() != pre_epoch {
            self.label.clear();
            for (h, pos) in self.list.labels_snapshot() {
                self.label.insert(h, pos as u32);
            }
            return;
        }
        for (elem, pos) in rep.label_updates() {
            if let Some(h) = self.list.handle_of_elem(elem) {
                self.label.insert(h, pos as u32);
            }
        }
    }

    /// Insert `value` at `rank`, returning its stable handle.
    ///
    /// Panics if `rank > len`.
    pub fn insert_at(&mut self, rank: usize, value: V) -> Handle {
        let pre_epoch = self.list.epoch();
        let (h, rep) = self.list.insert_reported(rank);
        self.value.insert(h, value);
        self.sync(pre_epoch, &rep);
        h
    }

    /// Insert `value` as the new first element.
    pub fn push_front(&mut self, value: V) -> Handle {
        self.insert_at(0, value)
    }

    /// Insert `value` as the new last element.
    pub fn push_back(&mut self, value: V) -> Handle {
        self.insert_at(self.len(), value)
    }

    /// Insert `value` immediately after `after`.
    ///
    /// Panics if `after` is stale.
    pub fn insert_after(&mut self, after: Handle, value: V) -> Handle {
        let rank = self.rank(after).expect("insert_after on a stale handle");
        self.insert_at(rank + 1, value)
    }

    /// Insert `value` immediately before `before`.
    ///
    /// Panics if `before` is stale.
    pub fn insert_before(&mut self, before: Handle, value: V) -> Handle {
        let rank = self.rank(before).expect("insert_before on a stale handle");
        self.insert_at(rank, value)
    }

    /// Remove the element `h`, returning its value (`None` if stale).
    pub fn remove(&mut self, h: Handle) -> Option<V> {
        let rank = self.rank(h)?;
        let pre_epoch = self.list.epoch();
        let (gone, rep) = self.list.delete_reported(rank);
        debug_assert_eq!(gone, h, "label table pointed at the wrong rank");
        self.label.remove(&h);
        let value = self.value.remove(&h);
        self.sync(pre_epoch, &rep);
        value
    }

    /// Remove and return the first element's `(handle, value)`.
    pub fn pop_front(&mut self) -> Option<(Handle, V)> {
        let h = self.front()?;
        let v = self.remove(h)?;
        Some((h, v))
    }

    /// Remove and return the last element's `(handle, value)`.
    pub fn pop_back(&mut self) -> Option<(Handle, V)> {
        let h = self.back()?;
        let v = self.remove(h)?;
        Some((h, v))
    }

    /// Iterate `(handle, &value)` in list order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &V)> + '_ {
        self.list.labels_snapshot().into_iter().map(move |(h, _)| (h, &self.value[&h]))
    }

    /// Iterate values in list order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Verify the label table exactly mirrors the backend (O(n); used by
    /// tests).
    pub fn check_labels(&self) {
        let snap = self.list.labels_snapshot();
        assert_eq!(snap.len(), self.label.len(), "label table size diverged");
        assert_eq!(snap.len(), self.value.len(), "value table size diverged");
        for (h, pos) in snap {
            assert_eq!(self.label.get(&h), Some(&(pos as u32)), "stale label for {h:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;

    #[test]
    fn order_queries_match_ground_truth() {
        let mut ol: OrderedList<usize> = ListBuilder::new().seed(5).ordered_list();
        let mut handles = Vec::new();
        for i in 0..500 {
            let h = match handles.last() {
                None => ol.push_back(i),
                Some(&last) => ol.insert_after(last, i),
            };
            handles.push(h);
        }
        for i in (0..handles.len()).step_by(31) {
            for j in (0..handles.len()).step_by(29) {
                if i != j {
                    assert_eq!(ol.precedes(handles[i], handles[j]), i < j);
                }
            }
        }
        ol.check_labels();
    }

    #[test]
    fn labels_survive_growth_rebuilds() {
        for backend in Backend::ALL {
            let mut ol: OrderedList<u32> =
                ListBuilder::new().backend(backend).initial_capacity(16).ordered_list();
            let mut handles = Vec::new();
            for i in 0..200 {
                handles.push(ol.push_back(i));
            }
            assert!(ol.list.grow_stats().grows >= 1, "{} never grew", backend.name());
            ol.check_labels();
            for w in handles.windows(2) {
                assert!(ol.precedes(w[0], w[1]), "{} order broke", backend.name());
            }
            // shrink back down and re-verify
            for _ in 0..180 {
                ol.pop_front();
            }
            ol.check_labels();
            let rest: Vec<u32> = ol.values().copied().collect();
            assert_eq!(rest, (180..200).collect::<Vec<u32>>(), "{}", backend.name());
        }
    }

    #[test]
    fn remove_returns_values_and_invalidates_handles() {
        let mut ol = OrderedList::new();
        let a = ol.push_back("a");
        let b = ol.push_back("b");
        assert_eq!(ol.remove(a), Some("a"));
        assert_eq!(ol.remove(a), None);
        assert!(!ol.contains(a));
        assert!(ol.contains(b));
        assert_eq!(ol.get(b), Some(&"b"));
    }

    #[test]
    fn mid_list_edits_keep_order() {
        let mut ol = OrderedList::new();
        let mut cursor = ol.push_back(0);
        for i in 1..100 {
            cursor = ol.insert_after(cursor, i);
        }
        let mid = ol.handle_at_rank(50);
        let x = ol.insert_after(mid, 1000);
        let y = ol.insert_before(mid, 2000);
        assert!(ol.precedes(y, mid) && ol.precedes(mid, x));
        assert_eq!(ol.rank(y), Some(50));
        assert_eq!(ol.rank(mid), Some(51));
        assert_eq!(ol.rank(x), Some(52));
        ol.remove(mid);
        assert!(ol.precedes(y, x));
        ol.check_labels();
    }
}
