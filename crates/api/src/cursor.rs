//! Cursors: positional iteration that walks the slot array's occupancy
//! structure directly.
//!
//! Rank-addressed navigation re-resolves rank → label on every step — an
//! O(log n) Fenwick descent per element, paid `n` times for a full scan.
//! A cursor instead remembers *where it is* (the label of its current
//! element) and steps to the physical neighbor with one occupancy query
//! ([`next_label_after`](crate::RawList::next_label_after) /
//! [`prev_label_before`](crate::RawList::prev_label_before)), so a full
//! walk performs **zero** rank→label resolutions — the property
//! `tests/api_properties.rs` pins with the backend's resolution counter.
//!
//! Three flavors:
//!
//! * [`Cursor`] — read-only, over an [`OrderedList`]; the shared borrow
//!   freezes the structure, so labels stay valid for the cursor's lifetime.
//! * [`MapCursor`] — read-only, over a [`LabelMap`]; same idea, plus key
//!   access ([`LabelMap::cursor_at`] seeks with one binary search and walks
//!   label-native from there).
//! * [`CursorMut`] — mutating, over an [`OrderedList`]:
//!   `insert_before_here` / `insert_after_here` / `remove_here` edit at the
//!   cursor without re-finding the position. Mutations may trigger
//!   rebalances or growth rebuilds; the cursor addresses its element by
//!   **handle** and re-reads the label from the list's epoch-resynced label
//!   table on the next step, so it stays valid across both.

use crate::backend::{ErasedList, RawList};
use crate::label_map::LabelMap;
use crate::ordered_list::OrderedList;
use lll_core::growable::Handle;

/// Where a read-only cursor stands: before the first element, on the
/// element at a label, or past the last element.
#[derive(Clone, Copy, Debug)]
enum Pos {
    Before,
    On(usize),
    After,
}

impl Pos {
    fn of(label: Option<usize>) -> Pos {
        match label {
            Some(l) => Pos::On(l),
            None => Pos::After,
        }
    }

    /// One step toward the back: from the start ghost onto the first
    /// element, from an element to its successor, sticking at the end
    /// ghost.
    fn step_next<L: RawList>(self, list: &L) -> Pos {
        match self {
            Pos::Before => Pos::of(list.first_label()),
            Pos::On(l) => Pos::of(list.next_label_after(l)),
            Pos::After => Pos::After,
        }
    }

    /// One step toward the front; the mirror of
    /// [`step_next`](Self::step_next).
    fn step_prev<L: RawList>(self, list: &L) -> Pos {
        match self {
            Pos::After => match list.last_label() {
                Some(l) => Pos::On(l),
                None => Pos::Before,
            },
            Pos::On(l) => match list.prev_label_before(l) {
                Some(p) => Pos::On(p),
                None => Pos::Before,
            },
            Pos::Before => Pos::Before,
        }
    }
}

/// A read-only cursor over an [`OrderedList`], stepping label-to-label.
///
/// ```
/// use lll_api::OrderedList;
///
/// let mut list = OrderedList::new();
/// list.extend_back(["a", "b", "c"]);
/// let mut cur = list.cursor_front();
/// let mut seen = Vec::new();
/// while let Some((_, v)) = cur.current() {
///     seen.push(*v);
///     cur.move_next();
/// }
/// assert_eq!(seen, ["a", "b", "c"]);
/// ```
pub struct Cursor<'a, V, L: RawList = ErasedList> {
    list: &'a OrderedList<V, L>,
    pos: Pos,
}

impl<'a, V, L: RawList> Cursor<'a, V, L> {
    pub(crate) fn new(list: &'a OrderedList<V, L>, label: Option<usize>) -> Self {
        Self { list, pos: Pos::of(label) }
    }

    /// The element under the cursor, or `None` off either end.
    pub fn current(&self) -> Option<(Handle, &'a V)> {
        match self.pos {
            Pos::On(l) => {
                let h = self.list.backend().handle_at_label(l)?;
                Some((h, self.list.get(h)?))
            }
            _ => None,
        }
    }

    /// The handle under the cursor.
    pub fn handle(&self) -> Option<Handle> {
        self.current().map(|(h, _)| h)
    }

    /// The value under the cursor.
    pub fn value(&self) -> Option<&'a V> {
        self.current().map(|(_, v)| v)
    }

    /// Step to the next element (one occupancy query). Walking past the
    /// back parks the cursor on the end ghost; `move_prev` returns.
    pub fn move_next(&mut self) -> Option<(Handle, &'a V)> {
        self.pos = self.pos.step_next(self.list.backend());
        self.current()
    }

    /// Step to the previous element. Walking past the front parks the
    /// cursor on the start ghost; `move_next` returns.
    pub fn move_prev(&mut self) -> Option<(Handle, &'a V)> {
        self.pos = self.pos.step_prev(self.list.backend());
        self.current()
    }
}

/// A read-only cursor over a [`LabelMap`], stepping label-to-label in key
/// order.
///
/// ```
/// use lll_api::LabelMap;
///
/// let map = LabelMap::from_sorted_iter((0..100).map(|k| (k, k * 3)));
/// let mut cur = map.cursor_at(&40);
/// assert_eq!(cur.key(), Some(&40));
/// cur.move_next();
/// assert_eq!(cur.entry(), Some((&41, &123)));
/// cur.move_prev();
/// cur.move_prev();
/// assert_eq!(cur.key(), Some(&39));
/// ```
pub struct MapCursor<'a, K: Ord, V, L: RawList = ErasedList> {
    map: &'a LabelMap<K, V, L>,
    pos: Pos,
}

impl<'a, K: Ord, V, L: RawList> MapCursor<'a, K, V, L> {
    pub(crate) fn new(map: &'a LabelMap<K, V, L>, label: Option<usize>) -> Self {
        Self { map, pos: Pos::of(label) }
    }

    /// The entry under the cursor, or `None` off either end.
    pub fn entry(&self) -> Option<(&'a K, &'a V)> {
        match self.pos {
            Pos::On(l) => {
                let h = self.map.backend().handle_at_label(l)?;
                let (k, v) = self.map.pair_of(h);
                Some((k, v))
            }
            _ => None,
        }
    }

    /// The key under the cursor.
    pub fn key(&self) -> Option<&'a K> {
        self.entry().map(|(k, _)| k)
    }

    /// The value under the cursor.
    pub fn value(&self) -> Option<&'a V> {
        self.entry().map(|(_, v)| v)
    }

    /// Step to the next entry in key order (one occupancy query).
    pub fn move_next(&mut self) -> Option<(&'a K, &'a V)> {
        self.pos = self.pos.step_next(self.map.backend());
        self.entry()
    }

    /// Step to the previous entry in key order.
    pub fn move_prev(&mut self) -> Option<(&'a K, &'a V)> {
        self.pos = self.pos.step_prev(self.map.backend());
        self.entry()
    }
}

/// A mutating cursor over an [`OrderedList`]: walk and edit in place.
///
/// The cursor tracks its element by stable handle plus a running rank
/// (maintained arithmetically — never re-resolved while walking). `None`
/// as the current handle is the **end ghost**, one past the last element;
/// `insert_before_here` there appends.
///
/// ```
/// use lll_api::OrderedList;
///
/// let mut list: OrderedList<i32> = OrderedList::new();
/// list.extend_back([1, 2, 4]);
/// let mut cur = list.cursor_front_mut();
/// cur.move_next();
/// cur.move_next(); // on the 4
/// cur.insert_before_here(3);
/// assert_eq!(cur.value(), Some(&4));
/// cur.remove_here(); // now on the end ghost
/// assert_eq!(cur.value(), None);
/// drop(cur);
/// let vals: Vec<i32> = list.into_iter().collect();
/// assert_eq!(vals, [1, 2, 3]);
/// ```
pub struct CursorMut<'a, V, L: RawList = ErasedList> {
    list: &'a mut OrderedList<V, L>,
    /// The current element; `None` is the end ghost.
    cur: Option<Handle>,
    /// Rank of the current element (`len` on the end ghost), maintained
    /// incrementally so in-place edits never re-resolve it.
    rank: usize,
}

impl<'a, V, L: RawList> CursorMut<'a, V, L> {
    pub(crate) fn new_front(list: &'a mut OrderedList<V, L>) -> Self {
        let cur = list.front();
        Self { list, cur, rank: 0 }
    }

    pub(crate) fn new_at(list: &'a mut OrderedList<V, L>, h: Handle, rank: usize) -> Self {
        Self { list, cur: Some(h), rank }
    }

    /// The handle under the cursor (`None` on the end ghost).
    pub fn handle(&self) -> Option<Handle> {
        self.cur
    }

    /// The rank of the element under the cursor (`len` on the end ghost) —
    /// tracked, not recomputed.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The value under the cursor.
    pub fn value(&self) -> Option<&V> {
        self.cur.and_then(|h| self.list.get(h))
    }

    /// Mutable access to the value under the cursor.
    pub fn value_mut(&mut self) -> Option<&mut V> {
        let h = self.cur?;
        self.list.get_mut(h)
    }

    /// Step to the next element (one occupancy query); walking past the
    /// back parks on the end ghost.
    pub fn move_next(&mut self) -> Option<Handle> {
        if let Some(h) = self.cur {
            let label = self.list.label_of(h).expect("cursor handle is live") as usize;
            match self.list.backend().next_label_after(label) {
                Some(l) => {
                    self.cur = self.list.backend().handle_at_label(l);
                    self.rank += 1;
                }
                None => {
                    self.cur = None;
                    self.rank = self.list.len();
                }
            }
        }
        self.cur
    }

    /// Step to the previous element; from the end ghost this returns to
    /// the last element. At the front it stays put.
    pub fn move_prev(&mut self) -> Option<Handle> {
        match self.cur {
            Some(h) if self.rank > 0 => {
                let label = self.list.label_of(h).expect("cursor handle is live") as usize;
                let l = self.list.backend().prev_label_before(label).expect("rank > 0");
                self.cur = self.list.backend().handle_at_label(l);
                self.rank -= 1;
            }
            None if self.rank > 0 => {
                let l = self.list.backend().last_label().expect("ghost rank > 0");
                self.cur = self.list.backend().handle_at_label(l);
                self.rank -= 1;
            }
            _ => {}
        }
        self.cur
    }

    /// Insert `value` immediately before the cursor's element (appends on
    /// the end ghost). The cursor stays on its element. Returns the new
    /// element's handle.
    pub fn insert_before_here(&mut self, value: V) -> Handle {
        let h = self.list.insert_at(self.rank, value);
        self.rank += 1;
        h
    }

    /// Insert `value` immediately after the cursor's element (appends on
    /// the end ghost). The cursor stays on its element.
    pub fn insert_after_here(&mut self, value: V) -> Handle {
        match self.cur {
            Some(_) => self.list.insert_at(self.rank + 1, value),
            None => {
                let h = self.list.insert_at(self.rank, value);
                self.rank += 1;
                h
            }
        }
    }

    /// Remove the cursor's element, returning its value; the cursor moves
    /// to the next element (the end ghost if there is none). `None` on the
    /// end ghost.
    pub fn remove_here(&mut self) -> Option<V> {
        let h = self.cur?;
        let v = self.list.remove(h);
        debug_assert!(v.is_some(), "cursor handle was live");
        self.cur = self.list.get_handle_at_rank(self.rank);
        if self.cur.is_none() {
            self.rank = self.list.len();
        }
        v
    }
}
