//! Backend selection and construction: [`Backend`], [`ListBuilder`],
//! [`RawList`] and the type-erased [`ErasedList`].
//!
//! Every algorithm in the workspace is a fixed-capacity
//! [`ListLabeling`]; production callers want dynamic capacity and a
//! runtime-selectable algorithm. [`ListBuilder`] provides both: it wraps
//! the chosen algorithm in [`Growable`] (global doubling/halving with
//! stable handles) and erases the concrete type behind [`RawList`], so
//! [`OrderedList`](crate::OrderedList) and [`LabelMap`](crate::LabelMap)
//! never name an algorithm in their types. Callers who want static
//! dispatch instead pass any [`LabelingBuilder`] to
//! [`ListBuilder::build_growable`] (or construct [`Growable`] directly) —
//! both container types are generic over [`RawList`] and accept either
//! form.

use lll_adaptive::AdaptiveBuilder;
use lll_classic::ClassicBuilder;
use lll_core::growable::{Growable, GrowableStats, Handle};
use lll_core::ids::ElemId;
use lll_core::metrics::{ListMetrics, MetricsHandle};
use lll_core::report::{BulkReport, OpReport};
use lll_core::rng::derive_seed;
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_deamortized::DeamortizedBuilder;
use lll_embedding::layered::{corollary11_builder, inner_yz_builder, layered_configs};
use lll_embedding::EmbedBuilder;
use lll_predictions::{PredictedBuilder, ScaledRankPredictor};
use lll_randomized::RandomizedBuilder;

/// The rank-addressed operations the API layer needs from a dynamically
/// sized list-labeling backend. Implemented by [`Growable`] over every
/// algorithm in the workspace; object-safe, so backends can be erased
/// ([`ErasedList`]) or kept concrete for static dispatch.
pub trait RawList {
    /// Current element count.
    fn len(&self) -> usize;

    /// True if no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current capacity (changes across rebuilds).
    fn capacity(&self) -> usize;

    /// The rebuild epoch: labels from before the last epoch change are
    /// stale (see [`Growable::epoch`]).
    fn epoch(&self) -> u64;

    /// Insert at `rank`, returning the new element's stable handle; the
    /// move log drains through the backend's internal reusable buffer (no
    /// per-op allocation). Callers that need the log use
    /// [`insert_reported_into`](Self::insert_reported_into).
    fn insert(&mut self, rank: usize) -> Handle;

    /// Delete at `rank`, returning the removed element's handle (log
    /// discarded through the internal buffer, as for
    /// [`insert`](Self::insert)).
    fn delete(&mut self, rank: usize) -> Handle;

    /// Insert at `rank`, draining the operation's move log into `out`
    /// (cleared and refilled, keeping its allocation — the zero-allocation
    /// label-table maintenance path). The log excludes any growth rebuild,
    /// which is signalled by the epoch instead.
    fn insert_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle;

    /// Delete at `rank`, draining the move log into `out` (same epoch
    /// caveat for shrink rebuilds).
    fn delete_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle;

    /// Insert at `rank`, returning the new element's stable handle and the
    /// operation's move log — allocating convenience over
    /// [`insert_reported_into`](Self::insert_reported_into).
    fn insert_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        let mut rep = OpReport::default();
        let h = self.insert_reported_into(rank, &mut rep);
        (h, rep)
    }

    /// Delete at `rank`, returning the removed element's handle and the
    /// operation's move log — allocating convenience over
    /// [`delete_reported_into`](Self::delete_reported_into).
    fn delete_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        let mut rep = OpReport::default();
        let h = self.delete_reported_into(rank, &mut rep);
        (h, rep)
    }

    /// Batch-insert `count` new elements at consecutive final ranks
    /// `rank .. rank + count` as one logical operation — the bulk-ingest
    /// path ([`Growable::splice_at`]). Returns the new handles in rank
    /// order and one move log for the whole batch; if the batch forced a
    /// growth rebuild the log is empty and the epoch bumps once instead.
    fn splice_reported(&mut self, rank: usize, count: usize) -> (Vec<Handle>, BulkReport);

    /// The label of the first element, if any.
    fn first_label(&self) -> Option<usize>;

    /// The label of the last element, if any.
    fn last_label(&self) -> Option<usize>;

    /// The label of the next element strictly after `label` — one
    /// occupancy query, no rank resolution (the cursor walking primitive).
    fn next_label_after(&self, label: usize) -> Option<usize>;

    /// The label of the previous element strictly before `label`.
    fn prev_label_before(&self, label: usize) -> Option<usize>;

    /// The handle of the element stored at `label` (`None` on a free slot).
    fn handle_at_label(&self, label: usize) -> Option<Handle>;

    /// The handle of the element of `rank`.
    fn handle_at_rank(&self, rank: usize) -> Handle;

    /// The label (slot position) of the element of `rank`.
    fn label_of_rank(&self, rank: usize) -> usize;

    /// The rank of the element whose label is `label`.
    fn rank_at_label(&self, label: usize) -> usize;

    /// Translate a move-log element identity into its stable handle
    /// (`None` if the identity is not live in the current epoch).
    fn handle_of_elem(&self, elem: ElemId) -> Option<Handle>;

    /// `(handle, label)` for every element in rank order — the label-table
    /// resynchronization path after a rebuild.
    fn labels_snapshot(&self) -> Vec<(Handle, usize)>;

    /// Visit `(handle, label)` for every element in rank order without
    /// materializing the [`labels_snapshot`](Self::labels_snapshot) `Vec` —
    /// the zero-copy sweep label-table resyncs and snapshot writers stream
    /// through.
    fn for_each_label(&self, f: &mut dyn FnMut(Handle, usize));

    /// Restore an **empty** backend to `handles.len()` elements in one
    /// O(n) bulk sweep, binding `handles[r]` to rank `r` — the
    /// snapshot-restore path ([`Growable::load_with_handles`]): persisted
    /// handles stay valid and future insertions never collide with them.
    ///
    /// Panics if the backend is non-empty or any handle is the reserved
    /// `u64::MAX`. Handles must be distinct (checked in debug builds;
    /// decode paths validate before calling).
    fn load_with_handles(&mut self, handles: &[Handle]);

    /// The underlying algorithm's name.
    fn backend_name(&self) -> &'static str;

    /// Total element moves performed (operations + rebuilds).
    fn total_moves(&self) -> u64;

    /// Grow/shrink statistics.
    fn grow_stats(&self) -> GrowableStats;

    /// The shared observability handle every layer of this backend reports
    /// into: counters, move/rebalance histograms, and the structural trace
    /// ring (see [`lll_core::metrics::ListMetrics`]).
    fn metrics_handle(&self) -> MetricsHandle;
}

impl<B: LabelingBuilder> RawList for Growable<B> {
    fn len(&self) -> usize {
        Growable::len(self)
    }

    fn capacity(&self) -> usize {
        Growable::capacity(self)
    }

    fn epoch(&self) -> u64 {
        Growable::epoch(self)
    }

    fn insert(&mut self, rank: usize) -> Handle {
        Growable::insert(self, rank)
    }

    fn delete(&mut self, rank: usize) -> Handle {
        Growable::delete(self, rank)
    }

    fn insert_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        Growable::insert_reported_into(self, rank, out)
    }

    fn delete_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        Growable::delete_reported_into(self, rank, out)
    }

    fn splice_reported(&mut self, rank: usize, count: usize) -> (Vec<Handle>, BulkReport) {
        Growable::splice_at(self, rank, count)
    }

    fn first_label(&self) -> Option<usize> {
        Growable::first_label(self)
    }

    fn last_label(&self) -> Option<usize> {
        Growable::last_label(self)
    }

    fn next_label_after(&self, label: usize) -> Option<usize> {
        Growable::next_label_after(self, label)
    }

    fn prev_label_before(&self, label: usize) -> Option<usize> {
        Growable::prev_label_before(self, label)
    }

    fn handle_at_label(&self, label: usize) -> Option<Handle> {
        Growable::handle_at_label(self, label)
    }

    fn handle_at_rank(&self, rank: usize) -> Handle {
        Growable::handle_at_rank(self, rank)
    }

    fn label_of_rank(&self, rank: usize) -> usize {
        Growable::label_of_rank(self, rank)
    }

    fn rank_at_label(&self, label: usize) -> usize {
        Growable::rank_at_label(self, label)
    }

    fn handle_of_elem(&self, elem: ElemId) -> Option<Handle> {
        Growable::handle_of_elem(self, elem)
    }

    fn labels_snapshot(&self) -> Vec<(Handle, usize)> {
        Growable::labels_snapshot(self)
    }

    fn for_each_label(&self, f: &mut dyn FnMut(Handle, usize)) {
        Growable::for_each_label(self, f)
    }

    fn load_with_handles(&mut self, handles: &[Handle]) {
        Growable::load_with_handles(self, handles)
    }

    fn backend_name(&self) -> &'static str {
        Growable::backend_name(self)
    }

    fn total_moves(&self) -> u64 {
        Growable::total_moves(self)
    }

    fn grow_stats(&self) -> GrowableStats {
        Growable::stats(self)
    }

    fn metrics_handle(&self) -> MetricsHandle {
        Growable::metrics(self).clone()
    }
}

/// The algorithms a [`ListBuilder`] can instantiate at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Classical Itai–Konheim–Rodeh PMA: amortized O(log² n).
    Classic,
    /// Worst-case-bounded PMA (the `Z` layer).
    Deamortized,
    /// History-independent randomized PMA (the `Y` layer): great expected
    /// cost, heavy tails.
    Randomized,
    /// Bender–Hu adaptive PMA (the `X` layer): O(log n) on hammer inserts.
    Adaptive,
    /// The paper's Corollary 11: adaptive ⊳ (randomized ⊳ deamortized) —
    /// combines all three layers' strengths. The recommended default.
    Corollary11,
    /// The paper's Corollary 12: learning-augmented ⊳ (randomized ⊳
    /// deamortized), here with the no-information scaled-rank predictor
    /// (callers with real predictions use
    /// [`lll_embedding::corollary12_builder`] via static dispatch).
    Corollary12,
}

impl Backend {
    /// Every selectable backend, for exhaustive sweeps in tests and
    /// experiments.
    pub const ALL: [Backend; 6] = [
        Backend::Classic,
        Backend::Deamortized,
        Backend::Randomized,
        Backend::Adaptive,
        Backend::Corollary11,
        Backend::Corollary12,
    ];

    /// A short stable name (for tables, logs, plots, and the snapshot
    /// header's backend field — [`FromStr`](std::str::FromStr) round-trips
    /// it).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Classic => "classic",
            Backend::Deamortized => "deamortized",
            Backend::Randomized => "randomized",
            Backend::Adaptive => "adaptive",
            Backend::Corollary11 => "corollary11",
            Backend::Corollary12 => "corollary12",
        }
    }
}

impl std::fmt::Display for Backend {
    /// Formats as [`name`](Backend::name); `to_string()` and
    /// [`str::parse`] round-trip.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when [`Backend::from_str`](std::str::FromStr) meets a
/// string that is no backend's [`name`](Backend::name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The string that failed to parse.
    pub unknown: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend {:?} (expected one of: ", self.unknown)?;
        for (i, b) in Backend::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(b.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for Backend {
    type Err = ParseBackendError;

    /// Parses the exact strings [`name`](Backend::name) produces — the
    /// stable identifiers used by tables, CLI flags, and snapshot headers.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBackendError { unknown: s.to_string() })
    }
}

/// The resolved configuration of a [`ListBuilder`] — everything needed to
/// rebuild an equivalent backend later, which is exactly what a snapshot
/// header records (see the [`persist`](crate::persist) module). Every
/// [`ErasedList`] carries the config it was built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListConfig {
    /// The selected algorithm.
    pub backend: Backend,
    /// The random-tape seed.
    pub seed: u64,
    /// The pre-growth capacity floor (a hint, not persisted state).
    pub initial_capacity: usize,
    /// The Corollary 12 prediction-error budget (ignored elsewhere).
    pub eta: usize,
}

/// Configuration entry point for every container in this crate.
///
/// ```
/// use lll_api::{Backend, ListBuilder, RawList};
///
/// let mut list = ListBuilder::new().backend(Backend::Corollary11).seed(42).build();
/// let first = list.insert(0);
/// let second = list.insert(1);
/// assert_eq!(list.len(), 2);
/// assert!(list.label_of_rank(0) < list.label_of_rank(1));
/// let _ = (first, second);
/// ```
#[derive(Clone, Debug)]
pub struct ListBuilder {
    backend: Backend,
    seed: u64,
    initial_capacity: usize,
    eta: usize,
    metrics: bool,
}

impl Default for ListBuilder {
    fn default() -> Self {
        Self {
            backend: Backend::Corollary11,
            seed: 0x11,
            initial_capacity: 64,
            eta: 64,
            metrics: true,
        }
    }
}

impl ListBuilder {
    /// A builder with the recommended defaults: the Corollary 11 layered
    /// structure, a fixed seed, and a small initial capacity (the structure
    /// grows on demand — `n` is never chosen up front).
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder replaying a previously captured [`ListConfig`] — the
    /// snapshot-restore path rebuilds the recorded backend through here.
    pub fn from_config(cfg: ListConfig) -> Self {
        Self {
            backend: cfg.backend,
            seed: cfg.seed,
            initial_capacity: cfg.initial_capacity.max(1),
            eta: cfg.eta.max(1),
            metrics: true,
        }
    }

    /// The builder's current configuration (what [`ListBuilder::build`]
    /// stamps into the [`ErasedList`] and snapshots persist).
    pub fn config(&self) -> ListConfig {
        ListConfig {
            backend: self.backend,
            seed: self.seed,
            initial_capacity: self.initial_capacity,
            eta: self.eta,
        }
    }

    /// Select the algorithm.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Seed every random tape (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Capacity floor before the first growth rebuild. Purely a
    /// preallocation hint: the structure grows and shrinks regardless.
    pub fn initial_capacity(mut self, capacity: usize) -> Self {
        self.initial_capacity = capacity.max(1);
        self
    }

    /// For [`Backend::Corollary12`]: the prediction-error budget η the
    /// structure is tuned for. Ignored by the other backends.
    pub fn eta(mut self, eta: usize) -> Self {
        self.eta = eta.max(1);
        self
    }

    /// Enable or disable metrics recording (default: enabled). With
    /// `false` the built backend's [`ListMetrics`] handle is a no-op on
    /// every recording path — the knob overhead benchmarks use to pin the
    /// enabled/disabled gap. Not part of [`ListConfig`]: an operational
    /// setting, not persisted state, so snapshot headers are unaffected.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    fn corollary12_scaled(
        &self,
    ) -> EmbedBuilder<
        PredictedBuilder<ScaledRankPredictor>,
        EmbedBuilder<RandomizedBuilder, DeamortizedBuilder>,
    > {
        let (outer_cfg, _) = layered_configs();
        EmbedBuilder {
            f: PredictedBuilder { eta: self.eta, predictor: ScaledRankPredictor },
            r: inner_yz_builder(derive_seed(self.seed, 0xC12)),
            cfg: outer_cfg,
        }
    }

    /// Build the configured backend as a dynamically sized, type-erased
    /// list. This is what [`OrderedList`](crate::OrderedList) and
    /// [`LabelMap`](crate::LabelMap) sit on.
    pub fn build(&self) -> ErasedList {
        let cap = self.initial_capacity;
        let m = || ListMetrics::handle(self.metrics);
        // Each arm's unsize coercion doubles as a compile-time proof that
        // every selectable backend is `Send + Sync` — a non-thread-safe
        // regression in any algorithm crate fails right here.
        let inner: Box<dyn RawList + Send + Sync> = match self.backend {
            Backend::Classic => Box::new(Growable::with_metrics(ClassicBuilder, cap, m())),
            Backend::Deamortized => {
                Box::new(Growable::with_metrics(DeamortizedBuilder::default(), cap, m()))
            }
            Backend::Randomized => Box::new(Growable::with_metrics(
                RandomizedBuilder::with_seed(derive_seed(self.seed, 0x59)),
                cap,
                m(),
            )),
            Backend::Adaptive => {
                Box::new(Growable::with_metrics(AdaptiveBuilder::default(), cap, m()))
            }
            Backend::Corollary11 => {
                Box::new(Growable::with_metrics(corollary11_builder(self.seed), cap, m()))
            }
            Backend::Corollary12 => {
                Box::new(Growable::with_metrics(self.corollary12_scaled(), cap, m()))
            }
        };
        ErasedList { inner, config: self.config() }
    }

    /// Build the configured backend as a **fixed-capacity** structure
    /// behind the paper-shaped [`ListLabeling`] trait — for callers that
    /// know `n` and want the theory-level interface (move logs, slot
    /// arrays, cost accounting) without naming a concrete type.
    pub fn build_fixed(&self, capacity: usize) -> Box<dyn ListLabeling + Send + Sync> {
        let mut built: Box<dyn ListLabeling + Send + Sync> = match self.backend {
            Backend::Classic => Box::new(ClassicBuilder.build_default(capacity)),
            Backend::Deamortized => Box::new(DeamortizedBuilder::default().build_default(capacity)),
            Backend::Randomized => Box::new(
                RandomizedBuilder::with_seed(derive_seed(self.seed, 0x59)).build_default(capacity),
            ),
            Backend::Adaptive => Box::new(AdaptiveBuilder::default().build_default(capacity)),
            Backend::Corollary11 => {
                Box::new(corollary11_builder(self.seed).build_default(capacity))
            }
            Backend::Corollary12 => Box::new(self.corollary12_scaled().build_default(capacity)),
        };
        built.set_metrics(ListMetrics::handle(self.metrics));
        built
    }

    /// Statically dispatched escape hatch: wrap **any** algorithm builder
    /// (including compositions the [`Backend`] enum doesn't enumerate) in
    /// the same dynamic-capacity machinery, with no type erasure. The
    /// result plugs into [`OrderedList::with_backend`]
    /// [`LabelMap::with_backend`] via their [`RawList`] parameter.
    ///
    /// [`OrderedList::with_backend`]: crate::OrderedList::with_backend
    /// [`LabelMap::with_backend`]: crate::LabelMap::with_backend
    pub fn build_growable<B: LabelingBuilder>(&self, builder: B) -> Growable<B> {
        Growable::with_metrics(builder, self.initial_capacity, ListMetrics::handle(self.metrics))
    }

    /// An [`OrderedList`](crate::OrderedList) on the configured backend.
    pub fn ordered_list<V>(&self) -> crate::OrderedList<V> {
        crate::OrderedList::with_backend(self.build())
    }

    /// A [`LabelMap`](crate::LabelMap) on the configured backend.
    pub fn label_map<K: Ord, V>(&self) -> crate::LabelMap<K, V> {
        crate::LabelMap::with_backend(self.build())
    }
}

/// A dynamically sized list-labeling backend with the algorithm erased —
/// the default backend type of [`OrderedList`](crate::OrderedList) and
/// [`LabelMap`](crate::LabelMap). Build one with [`ListBuilder::build`].
///
/// The boxed trait object is `Send + Sync`, so erased containers can move
/// across threads and sit behind locks (see the `lll-sharded` crate).
pub struct ErasedList {
    inner: Box<dyn RawList + Send + Sync>,
    config: ListConfig,
}

impl ErasedList {
    /// Insert at `rank`, returning the new element's stable handle (the
    /// move log drains through the backend's internal reusable buffer).
    pub fn insert(&mut self, rank: usize) -> Handle {
        self.inner.insert(rank)
    }

    /// Delete at `rank`, returning the removed element's handle.
    pub fn delete(&mut self, rank: usize) -> Handle {
        self.inner.delete(rank)
    }

    /// The configuration this list was built from — what a snapshot header
    /// records so restore can rebuild an equivalent backend.
    pub fn config(&self) -> ListConfig {
        self.config
    }
}

impl RawList for ErasedList {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn insert(&mut self, rank: usize) -> Handle {
        self.inner.insert(rank)
    }

    fn delete(&mut self, rank: usize) -> Handle {
        self.inner.delete(rank)
    }

    fn insert_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        self.inner.insert_reported_into(rank, out)
    }

    fn delete_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        self.inner.delete_reported_into(rank, out)
    }

    fn splice_reported(&mut self, rank: usize, count: usize) -> (Vec<Handle>, BulkReport) {
        self.inner.splice_reported(rank, count)
    }

    fn first_label(&self) -> Option<usize> {
        self.inner.first_label()
    }

    fn last_label(&self) -> Option<usize> {
        self.inner.last_label()
    }

    fn next_label_after(&self, label: usize) -> Option<usize> {
        self.inner.next_label_after(label)
    }

    fn prev_label_before(&self, label: usize) -> Option<usize> {
        self.inner.prev_label_before(label)
    }

    fn handle_at_label(&self, label: usize) -> Option<Handle> {
        self.inner.handle_at_label(label)
    }

    fn handle_at_rank(&self, rank: usize) -> Handle {
        self.inner.handle_at_rank(rank)
    }

    fn label_of_rank(&self, rank: usize) -> usize {
        self.inner.label_of_rank(rank)
    }

    fn rank_at_label(&self, label: usize) -> usize {
        self.inner.rank_at_label(label)
    }

    fn handle_of_elem(&self, elem: ElemId) -> Option<Handle> {
        self.inner.handle_of_elem(elem)
    }

    fn labels_snapshot(&self) -> Vec<(Handle, usize)> {
        self.inner.labels_snapshot()
    }

    fn for_each_label(&self, f: &mut dyn FnMut(Handle, usize)) {
        self.inner.for_each_label(f)
    }

    fn load_with_handles(&mut self, handles: &[Handle]) {
        self.inner.load_with_handles(handles)
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    fn total_moves(&self) -> u64 {
        self.inner.total_moves()
    }

    fn grow_stats(&self) -> GrowableStats {
        self.inner.grow_stats()
    }

    fn metrics_handle(&self) -> MetricsHandle {
        self.inner.metrics_handle()
    }
}

// `ListLabeling` must stay object-safe: `build_fixed` and downstream users
// hand out `Box<dyn ListLabeling>`.
const _: fn(&dyn ListLabeling) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_builds_and_grows() {
        for backend in Backend::ALL {
            let mut list = ListBuilder::new().backend(backend).seed(7).build();
            for i in 0..300 {
                list.insert(i / 2);
            }
            assert_eq!(list.len(), 300, "{}", backend.name());
            assert!(list.grow_stats().grows >= 1, "{} never grew", backend.name());
            for _ in 0..250 {
                list.delete(0);
            }
            assert_eq!(list.len(), 50, "{}", backend.name());
        }
    }

    #[test]
    fn build_fixed_is_paper_shaped() {
        for backend in Backend::ALL {
            let mut s = ListBuilder::new().backend(backend).build_fixed(128);
            for _ in 0..64 {
                s.insert(0);
            }
            assert_eq!(s.len(), 64);
            let labels: Vec<usize> = (0..s.len()).map(|r| s.label_of_rank(r)).collect();
            assert!(labels.windows(2).all(|w| w[0] < w[1]), "{}", backend.name());
        }
    }

    #[test]
    fn static_dispatch_matches_erased() {
        let b = ListBuilder::new().seed(3);
        let mut stat = b.build_growable(ClassicBuilder);
        let mut dynn = b.backend(Backend::Classic).build();
        for i in 0..200 {
            stat.insert(i % (i / 2 + 1));
            dynn.insert(i % (i / 2 + 1));
        }
        assert_eq!(stat.len(), RawList::len(&dynn));
        for r in (0..200).step_by(17) {
            assert_eq!(Growable::label_of_rank(&stat, r), dynn.label_of_rank(r));
        }
    }

    #[test]
    fn backend_display_from_str_roundtrip() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string(), backend.name());
            assert_eq!(backend.name().parse::<Backend>(), Ok(backend));
        }
        let err = "btree".parse::<Backend>().unwrap_err();
        assert_eq!(err.unknown, "btree");
        let msg = err.to_string();
        assert!(msg.contains("btree") && msg.contains("corollary11"), "unhelpful: {msg}");
        // Parsing is exact: no case folding, no whitespace trimming.
        assert!("Classic".parse::<Backend>().is_err());
        assert!(" classic".parse::<Backend>().is_err());
    }

    #[test]
    fn erased_list_remembers_its_config() {
        let b = ListBuilder::new().backend(Backend::Randomized).seed(99).eta(7);
        let list = b.build();
        assert_eq!(list.config(), b.config());
        assert_eq!(list.config().backend, Backend::Randomized);
        assert_eq!(list.config().seed, 99);
        // from_config rebuilds an equivalent backend: same structure layout
        // for the same operations.
        let mut a = ListBuilder::from_config(list.config()).build();
        let mut c = b.build();
        for i in 0..100 {
            a.insert(i / 3);
            c.insert(i / 3);
        }
        for r in 0..100 {
            assert_eq!(a.label_of_rank(r), c.label_of_rank(r), "layout diverged at rank {r}");
        }
    }

    #[test]
    fn epoch_signals_rebuilds() {
        let mut list = ListBuilder::new().backend(Backend::Classic).initial_capacity(16).build();
        let e0 = list.epoch();
        for i in 0..64 {
            list.insert(i);
        }
        assert!(list.epoch() > e0, "growth must bump the epoch");
    }
}
