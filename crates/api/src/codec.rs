//! Shared length-framed decoding helpers and the workspace CRC32.
//!
//! Three independent binary formats speak the same dialect — snapshots
//! ([`persist`](crate::persist)), `lll-server`'s wire frames, and
//! `lll-wal`'s log records. Each of them frames variable-length data with
//! a `u64` length and must decode that length **without trusting it**:
//! the reservation is capped at [`PREALLOC_CAP`] and the read is bounded
//! by `take`, so a corrupt `u64::MAX` runs into end-of-stream
//! ([`SnapshotError::Truncated`]) instead of a giant allocation. This
//! module is the single home of that idiom; `persist` re-exports the
//! names it always had so downstream paths (`lll_api::persist::
//! PREALLOC_CAP`, `::decode_len`) keep working.
//!
//! It also hosts the hand-rolled [`Crc32`] (IEEE 802.3, reflected,
//! polynomial `0xEDB88320`) used by the WAL to checksum every record —
//! hand-rolled because this workspace builds offline, with a
//! compile-time table so the hot path is one lookup per byte.

// lll-check: enforce(panic-free-decode)
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::persist::{Codec, SnapshotError};
use std::io::Read;

/// Cap on speculative pre-allocation while decoding length-framed data:
/// reservations beyond this grow organically as bytes actually arrive, so
/// a corrupt length cannot force a giant allocation. Shared by snapshots,
/// wire frames, and WAL records.
pub const PREALLOC_CAP: usize = 1 << 16;

/// Decode a `u64` frame length into a checked element count. Shared by
/// every length-framed decoder in the workspace (snapshots, wire frames,
/// WAL records); pair it with [`PREALLOC_CAP`] before reserving.
pub fn decode_len<R: Read + ?Sized>(r: &mut R) -> Result<usize, SnapshotError> {
    usize::try_from(u64::decode(r)?)
        .map_err(|_| SnapshotError::Corrupt("frame length exceeds host width".into()))
}

/// Decode a `u64`-length-framed byte string with the capped-reservation
/// discipline: reserve at most [`PREALLOC_CAP`], bound the read with
/// `take`, and surface a lying length as [`SnapshotError::Truncated`] —
/// never a huge up-front allocation, never a hang. This is the one copy
/// of the idiom `persist`'s `String` codec, the server's `decode_bytes`,
/// and the WAL's record reader all sit on.
pub fn decode_framed_bytes<R: Read + ?Sized>(r: &mut R) -> Result<Vec<u8>, SnapshotError> {
    let len = decode_len(r)?;
    let mut bytes = Vec::with_capacity(len.min(PREALLOC_CAP));
    let got = r.take(len as u64).read_to_end(&mut bytes)?;
    if got < len {
        return Err(SnapshotError::Truncated);
    }
    Ok(bytes)
}

/// The byte-indexed CRC32 lookup table, computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // lll-check: allow(panic-free-decode, i < 256 is the loop guard; const-evaluated)
        table[i as usize] = c;
        i += 1;
    }
    table
};

/// Streaming CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// same function `cksum`-family tools and zlib compute. Feed bytes with
/// [`update`](Self::update) in any chunking; [`finish`](Self::finish)
/// yields the digest. One-shot callers use [`crc32`].
///
/// ```
/// use lll_api::codec::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"1234");
/// c.update(b"56789");
/// assert_eq!(c.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh digest (state all-ones, per the reflected algorithm).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Fold `bytes` into the digest. Allocation-free and panic-free: the
    /// table index is masked to 8 bits.
    // lll-check: no-alloc
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            // lll-check: allow(panic-free-decode, index is (x & 0xFF) — always < 256, in-bounds)
            c = (c >> 8) ^ CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = c;
    }

    /// The digest of everything fed so far (the struct stays usable —
    /// `finish` is a read, not a consume).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard check value every CRC32 implementation quotes…
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // …plus a few independently computed ones (zlib's crc32()).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_is_chunking_independent() {
        let data: Vec<u8> = (0u16..=1500).map(|i| (i % 251) as u8).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 1024] {
            let mut c = Crc32::new();
            for piece in data.chunks(chunk) {
                c.update(piece);
            }
            assert_eq!(c.finish(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"layered list labeling".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn framed_bytes_roundtrip_and_reject_lies() {
        let mut buf = Vec::new();
        (5u64).encode(&mut buf).unwrap();
        buf.extend_from_slice(b"hello");
        assert_eq!(decode_framed_bytes(&mut buf.as_slice()).unwrap(), b"hello");

        // A length claiming more than the stream holds is Truncated…
        let mut lying = Vec::new();
        u64::MAX.encode(&mut lying).unwrap();
        lying.extend_from_slice(b"tiny");
        assert!(matches!(
            decode_framed_bytes(&mut lying.as_slice()),
            Err(SnapshotError::Truncated)
        ));
        // …and so is every strict prefix of a valid frame.
        for cut in 0..buf.len() {
            assert!(matches!(decode_framed_bytes(&mut &buf[..cut]), Err(SnapshotError::Truncated)));
        }
    }
}
