//! Durable snapshots: a versioned, little-endian, length-framed binary
//! format over [`std::io::Write`] / [`std::io::Read`].
//!
//! # Why snapshots are cheap here
//!
//! Labels are **ephemeral artifacts** of the rebalancing scheme — only the
//! rank order of the elements is semantic. A snapshot therefore persists
//! the sorted run (keys, values, and — for `OrderedList` — the handle of
//! each rank) and nothing else: no slot positions, no op log. Restore
//! deserializes the run and lands it through the O(n) bulk-load sweep
//! added in PR 2 (exactly one move per element), so restore cost is O(n)
//! regardless of the backend's per-operation movement bound.
//!
//! # Format (version 1)
//!
//! All integers little-endian, fixed width; strings and sequences framed
//! by a `u64` byte/element count.
//!
//! ```text
//! magic    [u8; 8]  = b"LLLSNAP\0"
//! version  u32      = 1
//! container u8      (1 = LabelMap, 2 = OrderedList, 3 = ShardedMap)
//! backend  String   (Backend::name(), round-tripped via FromStr)
//! seed     u64
//! eta      u64
//! count    u64      (total entries)
//! payload  …        (container-specific; see docs/persistence.md)
//! ```
//!
//! The payload is a sorted run of [`Codec`]-encoded entries: `(key, value)`
//! pairs in ascending key order for `LabelMap`, `(handle, value)` pairs in
//! rank order for `OrderedList`, and a split-key directory plus per-shard
//! runs for `ShardedMap`.
//!
//! # Error discipline
//!
//! Decode paths **never panic** on bad input: truncation, corruption,
//! version or container mismatches all surface as [`SnapshotError`]
//! variants. Declared lengths are not trusted for allocation — a corrupt
//! `u64::MAX` frame length reads until the stream ends ([`SnapshotError::
//! Truncated`]) instead of attempting a huge reservation.
//!
//! The [`Codec`] trait is hand-rolled because this workspace builds
//! offline (no serde); it covers the primitive shapes the containers
//! need — ints, `bool`, `String`, `Vec<T>`, `Option<T>`, tuples — and is
//! open for application key/value types to implement.
//!
//! # Buffer your streams
//!
//! Encoding issues one small `write` per fixed-width field (and decoding
//! one small `read`) with no internal buffering, so snapshots to and from
//! files **must** go through [`std::io::BufWriter`] /
//! [`std::io::BufReader`] — a raw `File` pays a syscall per integer,
//! orders of magnitude slower. In-memory targets (`Vec<u8>`, byte slices)
//! need no wrapping.

// lll-check: enforce(panic-free-decode)
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::backend::{Backend, ListConfig};
use std::fmt;
use std::io::{Read, Write};

/// The 8-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 8] = *b"LLLSNAP\0";

/// The current (and only) snapshot format version this reader decodes.
pub const FORMAT_VERSION: u32 = 1;

// The length-guard helpers were born here and are re-exported under their
// original names; they now live in [`crate::codec`] so the server's wire
// frames and the WAL's record reader share one copy of the idiom.
pub use crate::codec::{decode_len, PREALLOC_CAP};

/// Everything that can go wrong decoding (or writing) a snapshot. Decode
/// paths return these — they never panic on malformed input.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// An underlying I/O failure (other than clean end-of-stream).
    Io(std::io::Error),
    /// The stream ended in the middle of a frame — a truncated snapshot.
    Truncated,
    /// The first 8 bytes are not [`MAGIC`]: not a snapshot at all.
    BadMagic,
    /// The snapshot was written by a format this reader does not decode.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u32,
    },
    /// The header's container tag is valid but not the one the caller
    /// asked to restore (e.g. an `OrderedList` snapshot handed to
    /// `LabelMap::read_snapshot`).
    WrongContainer {
        /// What the reading container expected.
        expected: ContainerKind,
        /// What the header recorded.
        found: ContainerKind,
    },
    /// The header's container tag byte is not a known [`ContainerKind`].
    UnknownContainer(u8),
    /// The header's backend name parses as no known [`Backend`].
    UnknownBackend(String),
    /// Structurally invalid payload: out-of-order keys, duplicate handles,
    /// counts that disagree, invalid UTF-8, …
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated => f.write_str("snapshot truncated mid-frame"),
            SnapshotError::BadMagic => f.write_str("not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (reader supports {FORMAT_VERSION})")
            }
            SnapshotError::WrongContainer { expected, found } => {
                write!(f, "snapshot holds a {found:?}, not a {expected:?}")
            }
            SnapshotError::UnknownContainer(tag) => {
                write!(f, "unknown container tag {tag:#x}")
            }
            SnapshotError::UnknownBackend(name) => write!(f, "unknown backend {name:?}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    /// Clean end-of-stream becomes [`SnapshotError::Truncated`]; every
    /// other I/O failure is passed through.
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated
        } else {
            SnapshotError::Io(e)
        }
    }
}

/// Which container a snapshot holds — the header's third field, so a
/// reader fails fast (and typed) on the wrong `read_snapshot` call
/// instead of misinterpreting the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerKind {
    /// A keyed sorted map ([`LabelMap`](crate::LabelMap)).
    LabelMap,
    /// An order-maintenance list with stable handles
    /// ([`OrderedList`](crate::OrderedList)).
    OrderedList,
    /// A sharded concurrent map (`lll-sharded`'s `ShardedMap`).
    ShardedMap,
}

impl ContainerKind {
    fn tag(self) -> u8 {
        match self {
            ContainerKind::LabelMap => 1,
            ContainerKind::OrderedList => 2,
            ContainerKind::ShardedMap => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            1 => Ok(ContainerKind::LabelMap),
            2 => Ok(ContainerKind::OrderedList),
            3 => Ok(ContainerKind::ShardedMap),
            other => Err(SnapshotError::UnknownContainer(other)),
        }
    }
}

/// Binary encoding for snapshot payload types: fixed-width little-endian
/// integers, `u64`-length-framed sequences. Implement it for application
/// key/value types to make them snapshot-able.
///
/// ```
/// use lll_api::persist::Codec;
///
/// let mut buf = Vec::new();
/// ("edge".to_string(), Some(7u32)).encode(&mut buf).unwrap();
/// let back = <(String, Option<u32>)>::decode(&mut buf.as_slice()).unwrap();
/// assert_eq!(back, ("edge".to_string(), Some(7)));
/// ```
pub trait Codec: Sized {
    /// Append `self`'s encoding to `w`.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError>;

    /// Decode one value from `r`, consuming exactly its encoding.
    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
                w.write_all(&self.to_le_bytes())?;
                Ok(())
            }

            fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                r.read_exact(&mut buf)?;
                Ok(<$t>::from_le_bytes(buf))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Codec for usize {
    /// Encoded as `u64` so snapshots are portable across pointer widths;
    /// decode rejects values that do not fit the host's `usize`.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        (*self as u64).encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        usize::try_from(u64::decode(r)?)
            .map_err(|_| SnapshotError::Corrupt("usize value exceeds host width".into()))
    }
}

impl Codec for bool {
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        u8::from(*self).encode(w)
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool byte {other:#x}"))),
        }
    }
}

impl Codec for () {
    fn encode<W: Write + ?Sized>(&self, _w: &mut W) -> Result<(), SnapshotError> {
        Ok(())
    }

    fn decode<R: Read + ?Sized>(_r: &mut R) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Codec for String {
    /// `u64` byte length + UTF-8 bytes; decode validates the UTF-8.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        (self.len() as u64).encode(w)?;
        w.write_all(self.as_bytes())?;
        Ok(())
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        let bytes = crate::codec::decode_framed_bytes(r)?;
        String::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("string frame is not UTF-8".into()))
    }
}

impl<T: Codec> Codec for Vec<T> {
    /// `u64` element count + each element's encoding.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        (self.len() as u64).encode(w)?;
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        let len = decode_len(r)?;
        let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    /// A presence byte (0/1) followed by the value if present.
    fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        match self {
            None => false.encode(w),
            Some(v) => {
                true.encode(w)?;
                v.encode(w)
            }
        }
    }

    fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        Ok(if bool::decode(r)? { Some(T::decode(r)?) } else { None })
    }
}

macro_rules! tuple_codec {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
                $(self.$idx.encode(w)?;)+
                Ok(())
            }

            fn decode<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    )*};
}

tuple_codec! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Decode `count` strictly-ascending `(key, value)` pairs — the shared
/// sorted-run reader under [`LabelMap::read_snapshot`](crate::LabelMap::read_snapshot)
/// and `ShardedMap`'s per-shard restore. An order violation is
/// [`SnapshotError::Corrupt`], naming `what` (e.g. `"LabelMap"`,
/// `"shard 3"`); allocation is capped up front and grows only as bytes
/// actually arrive.
pub fn decode_sorted_run<K: Codec + Ord, V: Codec, R: Read + ?Sized>(
    r: &mut R,
    count: usize,
    what: &str,
) -> Result<Vec<(K, V)>, SnapshotError> {
    let mut entries: Vec<(K, V)> = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        if let Some((prev, _)) = entries.last() {
            if prev.cmp(&k).is_ge() {
                return Err(SnapshotError::Corrupt(format!(
                    "{what} keys must be strictly ascending"
                )));
            }
        }
        entries.push((k, v));
    }
    Ok(entries)
}

/// The decoded snapshot header — shared by every container's
/// `write_snapshot` / `read_snapshot` (and by `lll-sharded`'s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Which container the payload holds.
    pub container: ContainerKind,
    /// The backend the snapshot's map ran on (restore rebuilds it).
    pub backend: Backend,
    /// The backend's random-tape seed.
    pub seed: u64,
    /// The Corollary 12 prediction-error budget (meaningless for the other
    /// backends, persisted so restore reproduces the exact configuration).
    pub eta: u64,
    /// Total entries in the payload.
    pub count: u64,
}

impl Header {
    /// Assemble a header from a container kind, a backend [`ListConfig`],
    /// and an entry count.
    pub fn new(container: ContainerKind, cfg: ListConfig, count: u64) -> Self {
        Self { container, backend: cfg.backend, seed: cfg.seed, eta: cfg.eta as u64, count }
    }

    /// The [`ListConfig`] this header describes (initial capacity is a
    /// non-persisted hint and comes back as the default).
    pub fn config(&self) -> ListConfig {
        ListConfig {
            backend: self.backend,
            seed: self.seed,
            initial_capacity: crate::ListBuilder::new().config().initial_capacity,
            eta: usize::try_from(self.eta).unwrap_or(usize::MAX),
        }
    }

    /// Write magic, version, and every header field.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        w.write_all(&MAGIC)?;
        FORMAT_VERSION.encode(w)?;
        self.container.tag().encode(w)?;
        self.backend.name().to_string().encode(w)?;
        self.seed.encode(w)?;
        self.eta.encode(w)?;
        self.count.encode(w)?;
        Ok(())
    }

    /// Read and validate a header: magic, version, container tag, backend
    /// name (via [`Backend::from_str`](std::str::FromStr)).
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::decode(r)?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let container = ContainerKind::from_tag(u8::decode(r)?)?;
        let backend: Backend =
            String::decode(r)?.parse().map_err(|e: crate::backend::ParseBackendError| {
                SnapshotError::UnknownBackend(e.unknown)
            })?;
        Ok(Self {
            container,
            backend,
            seed: u64::decode(r)?,
            eta: u64::decode(r)?,
            count: u64::decode(r)?,
        })
    }

    /// [`read_from`](Self::read_from), then require the given container
    /// kind — the first line of every `read_snapshot`.
    pub fn read_expecting<R: Read + ?Sized>(
        r: &mut R,
        expected: ContainerKind,
    ) -> Result<Self, SnapshotError> {
        let header = Self::read_from(r)?;
        if header.container != expected {
            return Err(SnapshotError::WrongContainer { expected, found: header.container });
        }
        Ok(header)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn primitive_codecs_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i128::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo, wörld"));
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![b"bytes".to_vec(), Vec::new()]);
        roundtrip(Some(7u16));
        roundtrip(Option::<String>::None);
        roundtrip((42u64, String::from("v")));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1u8, 2u16, 3u32, String::from("four")));
    }

    #[test]
    fn integers_are_little_endian_fixed_width() {
        let mut buf = Vec::new();
        0x0102_0304u32.encode(&mut buf).unwrap();
        assert_eq!(buf, [0x04, 0x03, 0x02, 0x01]);
        buf.clear();
        7usize.encode(&mut buf).unwrap();
        assert_eq!(buf.len(), 8, "usize is persisted as u64");
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let mut full = Vec::new();
        (String::from("abcdef"), 7u64).encode(&mut full).unwrap();
        for cut in 0..full.len() {
            let err = <(String, u64)>::decode(&mut &full[..cut]).unwrap_err();
            assert!(matches!(err, SnapshotError::Truncated), "prefix of {cut} bytes gave {err:?}");
        }
    }

    #[test]
    fn lying_lengths_do_not_allocate() {
        // A frame claiming u64::MAX bytes must fail on EOF, not abort on
        // an absurd reservation.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf).unwrap();
        buf.extend_from_slice(b"tiny");
        assert!(matches!(String::decode(&mut buf.as_slice()), Err(SnapshotError::Truncated)));
        assert!(matches!(Vec::<u8>::decode(&mut buf.as_slice()), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn invalid_scalars_are_corrupt() {
        assert!(matches!(bool::decode(&mut [2u8].as_slice()), Err(SnapshotError::Corrupt(_))));
        let mut buf = Vec::new();
        2u64.encode(&mut buf).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(String::decode(&mut buf.as_slice()), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn header_roundtrip_and_validation() {
        let cfg = crate::ListBuilder::new().backend(Backend::Adaptive).seed(0xFEED).config();
        let header = Header::new(ContainerKind::LabelMap, cfg, 123);
        let mut buf = Vec::new();
        header.write_to(&mut buf).unwrap();
        assert_eq!(Header::read_from(&mut buf.as_slice()).unwrap(), header);
        assert_eq!(header.config().backend, Backend::Adaptive);
        assert_eq!(header.config().seed, 0xFEED);

        // Wrong container: typed error naming both sides.
        match Header::read_expecting(&mut buf.as_slice(), ContainerKind::OrderedList) {
            Err(SnapshotError::WrongContainer { expected, found }) => {
                assert_eq!(expected, ContainerKind::OrderedList);
                assert_eq!(found, ContainerKind::LabelMap);
            }
            other => panic!("expected WrongContainer, got {other:?}"),
        }

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Header::read_from(&mut bad.as_slice()), Err(SnapshotError::BadMagic)));

        // Future version.
        let mut future = buf.clone();
        future[8] = 99; // version field, little-endian low byte
        match Header::read_from(&mut future.as_slice()) {
            Err(SnapshotError::UnsupportedVersion { found: 99 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }

        // Unknown container tag.
        let mut tag = buf.clone();
        tag[12] = 0xAB;
        assert!(matches!(
            Header::read_from(&mut tag.as_slice()),
            Err(SnapshotError::UnknownContainer(0xAB))
        ));

        // Unknown backend name (flip a letter inside the framed string).
        let mut name = buf.clone();
        name[21] = b'x';
        match Header::read_from(&mut name.as_slice()) {
            Err(SnapshotError::UnknownBackend(s)) => assert!(!s.is_empty()),
            other => panic!("expected UnknownBackend, got {other:?}"),
        }

        // Every strict prefix is Truncated (or BadMagic for the sub-magic
        // prefixes), never a panic.
        for cut in 0..buf.len() {
            match Header::read_from(&mut &buf[..cut]) {
                Err(SnapshotError::Truncated) | Err(SnapshotError::BadMagic) => {}
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let io = SnapshotError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::UnsupportedVersion { found: 9 }.to_string().contains('9'));
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(SnapshotError::from(eof), SnapshotError::Truncated));
    }
}
