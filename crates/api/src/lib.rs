//! # lll-api — the production-facing API of layered list labeling
//!
//! The algorithms in this workspace speak the paper's language: fixed
//! capacity, `insert(rank)`, raw [`OpReport`](lll_core::report::OpReport)
//! move logs. Applications speak a different one — keys, stable
//! references, maps that grow. This crate is the translation layer:
//!
//! * [`OrderedList<V>`](OrderedList) — order maintenance (Dietz '82, the
//!   paper's footnote 1): stable handles, `push_front` / `push_back` /
//!   `insert_after` / `insert_before`, and O(1) `order(a, b)` via a label
//!   table maintained incrementally from the backends' move logs.
//! * [`LabelMap<K, V>`](LabelMap) — a keyed sorted map (`insert` / `get` /
//!   `remove` / `range` / `iter`) that keeps keys physically sorted in one
//!   slot array, so range scans are contiguous memory sweeps — the
//!   database-index motivation the paper opens with.
//! * [`ListBuilder`] — the configuration entry point:
//!   `ListBuilder::new().backend(Backend::Corollary11).seed(42).build()`.
//!   Backends are selected at runtime ([`Backend`]), wrapped in
//!   [`Growable`](lll_core::growable::Growable) for dynamic capacity (users
//!   never choose `n` up front), and erased behind [`RawList`] — or kept
//!   concrete for static dispatch via [`ListBuilder::build_growable`].
//!
//! Both containers are generic over [`RawList`], so the same code runs on
//! the type-erased [`ErasedList`] or any concrete
//! `Growable<B>` — including layered compositions the [`Backend`] enum
//! doesn't enumerate.

mod backend;
mod label_map;
mod ordered_list;

pub use backend::{Backend, ErasedList, ListBuilder, RawList};
pub use label_map::{LabelMap, Range};
pub use ordered_list::OrderedList;

// Re-exported so API users can hold handles and read reports without
// depending on lll-core directly.
pub use lll_core::growable::{GrowableStats, Handle};
pub use lll_core::report::{MoveRec, OpReport};
