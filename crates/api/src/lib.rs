//! # lll-api — the production-facing API of layered list labeling
//!
//! The algorithms in this workspace speak the paper's language: fixed
//! capacity, `insert(rank)`, raw [`OpReport`] move logs. Applications
//! speak a different one — keys, stable references, maps that grow, and
//! **batches**: real ingest arrives as sorted runs, and real scans walk
//! neighbors, not random ranks. This crate is the translation layer:
//!
//! * [`OrderedList<V>`](OrderedList) — order maintenance (Dietz '82, the
//!   paper's footnote 1): stable handles, `push_front` / `push_back` /
//!   `insert_after` / `insert_before`, O(1) `order(a, b)` via a label
//!   table maintained incrementally from the backends' move logs, and
//!   batch mutation (`extend_back` / `splice_at` / `splice_after`) that
//!   lands a whole run as one backend sweep.
//! * [`LabelMap<K, V>`](LabelMap) — a keyed sorted map (`insert` / `get` /
//!   `remove` / `range` / `iter`, with `BTreeMap`-style borrowed-key
//!   lookups) that keeps keys physically sorted in one slot array, so
//!   range scans are contiguous memory sweeps. Sorted ingest takes the
//!   O(n) bulk path: [`LabelMap::from_sorted_iter`] and sorted
//!   [`extend`](Extend::extend) merge runs in evenly-spread sweeps instead
//!   of point insertions.
//! * [`Cursor`] / [`CursorMut`] / [`MapCursor`] — positional iteration
//!   over the slot array's occupancy structure: seek once, then step
//!   neighbor-to-neighbor with zero per-step rank→label resolution, and
//!   (mutably) edit at the cursor across rebalances and growth rebuilds.
//! * [`persist`] — durable snapshots: a versioned, little-endian binary
//!   format over `std::io` ([`LabelMap::write_snapshot`] /
//!   [`LabelMap::read_snapshot`], [`OrderedList::write_snapshot`] /
//!   [`OrderedList::read_snapshot`]). Only the sorted run is persisted —
//!   labels are ephemeral — so restore is the O(n) bulk sweep, one move
//!   per element; `OrderedList` snapshots carry the handle↔rank table, so
//!   pre-snapshot handles stay valid after restore. Decoders return
//!   [`SnapshotError`], never panic.
//! * [`ListBuilder`] — the configuration entry point:
//!   `ListBuilder::new().backend(Backend::Corollary11).seed(42).build()`.
//!   Backends are selected at runtime ([`Backend`]), wrapped in
//!   [`Growable`](lll_core::growable::Growable) for dynamic capacity (users
//!   never choose `n` up front), and erased behind [`RawList`] — or kept
//!   concrete for static dispatch via [`ListBuilder::build_growable`].
//!
//! Both containers are generic over [`RawList`], so the same code runs on
//! the type-erased [`ErasedList`] or any concrete
//! `Growable<B>` — including layered compositions the [`Backend`] enum
//! doesn't enumerate.

#![forbid(unsafe_code)]

mod backend;
pub mod codec;
pub mod cursor;
pub mod label_map;
pub mod ordered_list;
pub mod persist;

pub use backend::{Backend, ErasedList, ListBuilder, ListConfig, ParseBackendError, RawList};
pub use cursor::{Cursor, CursorMut, MapCursor};
pub use label_map::{LabelMap, Range};
pub use ordered_list::OrderedList;
pub use persist::{Codec, SnapshotError};

// Re-exported so API users can hold handles and read reports without
// depending on lll-core directly.
pub use lll_core::growable::{GrowableStats, Handle};
pub use lll_core::report::{BulkReport, MoveRec, OpReport};

/// Compile-time thread-safety audit: every backend and both containers
/// must stay `Send + Sync` — the `lll-sharded` façade parks them behind
/// `RwLock`s and hands references across threads. A `Rc`/raw-pointer
/// regression anywhere in the stack fails this function's type-checking
/// (and the unsize coercions in [`ListBuilder::build`]) at build time,
/// not in a flaky threaded test.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    use lll_core::growable::Growable;
    // The four directly nameable algorithm backends…
    assert_send_sync::<Growable<lll_classic::ClassicBuilder>>();
    assert_send_sync::<Growable<lll_deamortized::DeamortizedBuilder>>();
    assert_send_sync::<Growable<lll_randomized::RandomizedBuilder>>();
    assert_send_sync::<Growable<lll_adaptive::AdaptiveBuilder>>();
    // …the Corollary 11 layered composition (Corollary 12's is covered by
    // the coercion in `ListBuilder::build`, its builder type is private)…
    fn assert_growable_builder<B: lll_core::traits::LabelingBuilder>(_: &B)
    where
        Growable<B>: Send + Sync,
    {
    }
    let _ = |seed: u64| assert_growable_builder(&lll_embedding::layered::corollary11_builder(seed));
    // …and the erased form plus both containers on top of it.
    assert_send_sync::<ErasedList>();
    assert_send_sync::<LabelMap<String, Vec<u8>>>();
    assert_send_sync::<OrderedList<String>>();
    assert_send_sync::<label_map::IntoIter<String, Vec<u8>>>();
}
