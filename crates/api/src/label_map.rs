//! [`LabelMap`]: a keyed sorted map over a list-labeling backend — the
//! database-index application the paper opens with (list labeling was
//! proposed for database indexing at PODS '99; packed-memory arrays power
//! cache-friendly indexes because a range scan is a contiguous sweep of
//! one physical array).
//!
//! Keys are kept physically sorted in the backend's slot array. Point
//! operations binary-search ranks over the labels (O(log n) comparisons,
//! each an O(log m) rank→element lookup); range scans walk consecutive
//! ranks, which the backend lays out left-to-right in memory.

use crate::backend::{ErasedList, ListBuilder, RawList};
use lll_core::growable::Handle;
use std::collections::HashMap;
use std::ops::{Bound, RangeBounds};

/// A dynamically sized sorted map with `BTreeMap`-shaped point operations
/// and PMA-backed range scans.
///
/// ```
/// use lll_api::LabelMap;
///
/// let mut map = LabelMap::new();
/// map.insert(3, "c");
/// map.insert(1, "a");
/// map.insert(2, "b");
/// assert_eq!(map.get(&2), Some(&"b"));
/// let scanned: Vec<i32> = map.range(2..).map(|(k, _)| *k).collect();
/// assert_eq!(scanned, [2, 3]);
/// assert_eq!(map.remove(&1), Some("a"));
/// assert_eq!(map.len(), 2);
/// ```
pub struct LabelMap<K: Ord, V, L: RawList = ErasedList> {
    list: L,
    entry: HashMap<Handle, (K, V)>,
}

impl<K: Ord, V> LabelMap<K, V> {
    /// An empty map on the default backend (Corollary 11, erased).
    pub fn new() -> Self {
        ListBuilder::new().label_map()
    }
}

impl<K: Ord, V> Default for LabelMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V, L: RawList> LabelMap<K, V, L> {
    /// Wrap an already-built backend — erased ([`ListBuilder::build`]) or
    /// concrete ([`ListBuilder::build_growable`]) for static dispatch.
    ///
    /// Panics if the backend is non-empty.
    pub fn with_backend(list: L) -> Self {
        assert!(list.is_empty(), "LabelMap requires an empty backend");
        Self { list, entry: HashMap::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The underlying algorithm's name.
    pub fn backend_name(&self) -> &'static str {
        self.list.backend_name()
    }

    /// Total element moves the backend has performed (the paper's cost
    /// model, surfaced for accounting).
    pub fn total_moves(&self) -> u64 {
        self.list.total_moves()
    }

    /// Growth/shrink rebuild statistics of the backend.
    pub fn grow_stats(&self) -> lll_core::growable::GrowableStats {
        self.list.grow_stats()
    }

    fn pair_at_rank(&self, rank: usize) -> &(K, V) {
        &self.entry[&self.list.handle_at_rank(rank)]
    }

    /// The key of rank `rank` (0-based, sorted order).
    ///
    /// Panics if `rank >= len`.
    pub fn key_at_rank(&self, rank: usize) -> &K {
        &self.pair_at_rank(rank).0
    }

    /// The rank of the first key ≥ `key` (== `len` if no such key).
    pub fn lower_bound(&self, key: &K) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at_rank(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The rank of the first key > `key` (== `len` if no such key).
    pub fn upper_bound(&self, key: &K) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at_rank(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The rank of `key` if present. Like `BTreeMap`, equality is judged
    /// by `Ord::cmp` alone (never `PartialEq`), so keys whose `Eq`
    /// disagrees with their ordering still behave consistently.
    fn rank_of_key(&self, key: &K) -> Option<usize> {
        let r = self.lower_bound(key);
        (r < self.len() && self.key_at_rank(r).cmp(key).is_eq()).then_some(r)
    }

    /// Insert `key → value`. Returns the previous value if the key was
    /// present (like `BTreeMap`, the entry keeps its position, handle, and
    /// originally stored key).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let rank = self.lower_bound(&key);
        if rank < self.len() && self.key_at_rank(rank).cmp(&key).is_eq() {
            let h = self.list.handle_at_rank(rank);
            let entry = self.entry.get_mut(&h).expect("entry for live handle");
            return Some(std::mem::replace(&mut entry.1, value));
        }
        let (h, _) = self.list.insert_reported(rank);
        self.entry.insert(h, (key, value));
        None
    }

    /// The value of `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.rank_of_key(key).map(|r| &self.pair_at_rank(r).1)
    }

    /// Mutable access to the value of `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let r = self.rank_of_key(key)?;
        let h = self.list.handle_at_rank(r);
        self.entry.get_mut(&h).map(|(_, v)| v)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.rank_of_key(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let rank = self.rank_of_key(key)?;
        let (h, _) = self.list.delete_reported(rank);
        self.entry.remove(&h).map(|(_, v)| v)
    }

    /// The smallest entry.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        (!self.is_empty()).then(|| {
            let (k, v) = self.pair_at_rank(0);
            (k, v)
        })
    }

    /// The largest entry.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        (!self.is_empty()).then(|| {
            let (k, v) = self.pair_at_rank(self.len() - 1);
            (k, v)
        })
    }

    /// Iterate the entries with keys in `range`, in ascending key order —
    /// physically, a left-to-right sweep of the backend's slot array.
    ///
    /// Unlike `BTreeMap::range`, an inverted range (start > end) yields an
    /// empty iterator instead of panicking.
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Range<'_, K, V, L> {
        let start = match range.start_bound() {
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(k) => self.upper_bound(k),
            Bound::Excluded(k) => self.lower_bound(k),
            Bound::Unbounded => self.len(),
        };
        Range { map: self, next: start, end: end.max(start) }
    }

    /// Iterate all entries in ascending key order.
    pub fn iter(&self) -> Range<'_, K, V, L> {
        self.range(..)
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord, V, L: RawList> Extend<(K, V)> for LabelMap<K, V, L> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for LabelMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        map.extend(iter);
        map
    }
}

/// Iterator over a key range of a [`LabelMap`], in ascending key order.
pub struct Range<'a, K: Ord, V, L: RawList> {
    map: &'a LabelMap<K, V, L>,
    next: usize,
    end: usize,
}

impl<'a, K: Ord, V, L: RawList> Iterator for Range<'a, K, V, L> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let (k, v) = self.map.pair_at_rank(self.next);
        self.next += 1;
        Some((k, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl<K: Ord, V, L: RawList> ExactSizeIterator for Range<'_, K, V, L> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use std::collections::BTreeMap;

    #[test]
    fn point_ops_match_btreemap() {
        let mut map: LabelMap<u64, u64> = LabelMap::new();
        let mut model = BTreeMap::new();
        // deterministic mixed workload with duplicate keys
        let mut x = 9u64;
        for i in 0..800u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 200;
            match x % 3 {
                0 | 1 => {
                    assert_eq!(map.insert(k, i), model.insert(k, i), "insert({k}) diverged");
                }
                _ => {
                    assert_eq!(map.remove(&k), model.remove(&k), "remove({k}) diverged");
                }
            }
            assert_eq!(map.len(), model.len());
        }
        for k in 0..200 {
            assert_eq!(map.get(&k), model.get(&k), "get({k}) diverged");
        }
        assert_eq!(map.first_key_value(), model.first_key_value());
        assert_eq!(map.last_key_value(), model.last_key_value());
    }

    #[test]
    fn range_scans_match_btreemap() {
        let mut map: LabelMap<u32, String> = LabelMap::new();
        let mut model = BTreeMap::new();
        for k in (0..300).step_by(3) {
            map.insert(k, format!("v{k}"));
            model.insert(k, format!("v{k}"));
        }
        let collect =
            |it: Vec<(&u32, &String)>| -> Vec<u32> { it.iter().map(|(k, _)| **k).collect() };
        for (lo, hi) in [(0, 100), (7, 8), (50, 250), (299, 300), (100, 100)] {
            assert_eq!(
                collect(map.range(lo..hi).collect()),
                collect(model.range(lo..hi).collect()),
                "[{lo}, {hi}) diverged"
            );
            assert_eq!(
                collect(map.range(lo..=hi).collect()),
                collect(model.range(lo..=hi).collect()),
                "[{lo}, {hi}] diverged"
            );
        }
        assert_eq!(collect(map.range(..).collect()), collect(model.range(..).collect()));
        assert_eq!(map.iter().len(), model.len());
    }

    #[test]
    fn every_backend_serves_a_map() {
        for backend in Backend::ALL {
            let mut map: LabelMap<u32, u32> =
                ListBuilder::new().backend(backend).seed(13).label_map();
            for k in (0..300u32).rev() {
                map.insert(k, k * 2);
            }
            assert_eq!(map.len(), 300, "{}", backend.name());
            assert_eq!(map.get(&123), Some(&246), "{}", backend.name());
            let keys: Vec<u32> = map.keys().copied().collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{} unsorted", backend.name());
        }
    }

    #[test]
    fn from_iterator_and_extend() {
        let map: LabelMap<i32, i32> = (0..50).map(|k| (k, -k)).collect();
        assert_eq!(map.len(), 50);
        assert_eq!(map.get(&30), Some(&-30));
    }
}
