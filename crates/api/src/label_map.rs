//! [`LabelMap`]: a keyed sorted map over a list-labeling backend — the
//! database-index application the paper opens with (list labeling was
//! proposed for database indexing at PODS '99; packed-memory arrays power
//! cache-friendly indexes because a range scan is a contiguous sweep of
//! one physical array).
//!
//! Keys are kept physically sorted in the backend's slot array. Point
//! operations binary-search ranks over the labels (O(log n) comparisons,
//! each an O(log m) rank→element lookup); range scans walk consecutive
//! ranks, which the backend lays out left-to-right in memory.

use crate::backend::{ErasedList, ListBuilder, RawList};
use crate::cursor::MapCursor;
use crate::persist::{Codec, ContainerKind, Header, SnapshotError};
use lll_core::growable::Handle;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::ops::{Bound, RangeBounds};

/// A dynamically sized sorted map with `BTreeMap`-shaped point operations
/// and PMA-backed range scans.
///
/// ```
/// use lll_api::LabelMap;
///
/// let mut map = LabelMap::new();
/// map.insert(3, "c");
/// map.insert(1, "a");
/// map.insert(2, "b");
/// assert_eq!(map.get(&2), Some(&"b"));
/// let scanned: Vec<i32> = map.range(2..).map(|(k, _)| *k).collect();
/// assert_eq!(scanned, [2, 3]);
/// assert_eq!(map.remove(&1), Some("a"));
/// assert_eq!(map.len(), 2);
/// ```
pub struct LabelMap<K: Ord, V, L: RawList = ErasedList> {
    list: L,
    entry: HashMap<Handle, (K, V)>,
}

impl<K: Ord, V> LabelMap<K, V> {
    /// An empty map on the default backend (Corollary 11, erased).
    pub fn new() -> Self {
        ListBuilder::new().label_map()
    }

    /// Build a map from entries **already sorted ascending by key** in one
    /// bulk load: the whole run lands in the backend as a single
    /// evenly-spread sweep (one rebuild epoch, ~one move per element)
    /// instead of `n` point insertions through the doubling cascade —
    /// O(n) ingest instead of O(n · polylog n).
    ///
    /// Equal adjacent keys collapse to the last occurrence (the
    /// `BTreeMap`-shaped "last write wins"). Panics if a key is smaller
    /// than its predecessor; use `collect()` for unordered input, which
    /// detects sortedness and falls back to point insertion when absent.
    ///
    /// ```
    /// use lll_api::LabelMap;
    ///
    /// let map = LabelMap::from_sorted_iter((0..1000).map(|k| (k, k * 2)));
    /// assert_eq!(map.len(), 1000);
    /// assert_eq!(map.get(&720), Some(&1440));
    /// ```
    pub fn from_sorted_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        map.extend_sorted(iter.into_iter().collect());
        map
    }
}

impl<K: Ord, V> Default for LabelMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V, L: RawList> LabelMap<K, V, L> {
    /// Wrap an already-built backend — erased ([`ListBuilder::build`]) or
    /// concrete ([`ListBuilder::build_growable`]) for static dispatch.
    ///
    /// Panics if the backend is non-empty.
    pub fn with_backend(list: L) -> Self {
        assert!(list.is_empty(), "LabelMap requires an empty backend");
        Self { list, entry: HashMap::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The underlying algorithm's name.
    pub fn backend_name(&self) -> &'static str {
        self.list.backend_name()
    }

    /// Total element moves the backend has performed (the paper's cost
    /// model, surfaced for accounting).
    pub fn total_moves(&self) -> u64 {
        self.list.total_moves()
    }

    /// Growth/shrink rebuild statistics of the backend.
    pub fn grow_stats(&self) -> lll_core::growable::GrowableStats {
        self.list.grow_stats()
    }

    /// The backend's rebuild epoch (see [`RawList::epoch`]): bumped by
    /// every growth/shrink rebuild. `lll-sharded` folds its advance into
    /// each shard's concurrency epoch, so optimistic readers observe
    /// rebuilds as churn.
    pub fn rebuild_epoch(&self) -> u64 {
        self.list.epoch()
    }

    /// The backend's observability handle: counters, move/rebalance
    /// histograms, and the structural trace ring (see
    /// [`lll_core::metrics::ListMetrics`]).
    pub fn metrics(&self) -> lll_core::metrics::MetricsHandle {
        self.list.metrics_handle()
    }

    fn pair_at_rank(&self, rank: usize) -> &(K, V) {
        &self.entry[&self.list.handle_at_rank(rank)]
    }

    pub(crate) fn pair_of(&self, h: Handle) -> &(K, V) {
        &self.entry[&h]
    }

    /// Read-only access to the underlying backend (cost counters, labels,
    /// slot-array introspection).
    pub fn backend(&self) -> &L {
        &self.list
    }

    /// The key of rank `rank` (0-based, sorted order).
    ///
    /// **Panics** if `rank >= len`; [`get_key_at_rank`](Self::get_key_at_rank)
    /// is the checked variant.
    pub fn key_at_rank(&self, rank: usize) -> &K {
        &self.pair_at_rank(rank).0
    }

    /// The key of rank `rank`, or `None` if `rank >= len` — the checked
    /// form of [`key_at_rank`](Self::key_at_rank).
    pub fn get_key_at_rank(&self, rank: usize) -> Option<&K> {
        (rank < self.len()).then(|| self.key_at_rank(rank))
    }

    /// The rank of the first key ≥ `key` (== `len` if no such key).
    pub fn lower_bound<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at_rank(mid).borrow() < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The rank of the first key > `key` (== `len` if no such key).
    pub fn upper_bound<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at_rank(mid).borrow() <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The rank of `key` if present. Like `BTreeMap`, equality is judged
    /// by `Ord::cmp` alone (never `PartialEq`), so keys whose `Eq`
    /// disagrees with their ordering still behave consistently.
    fn rank_of_key<Q>(&self, key: &Q) -> Option<usize>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let r = self.lower_bound(key);
        (r < self.len() && self.key_at_rank(r).borrow().cmp(key).is_eq()).then_some(r)
    }

    /// Insert `key → value`. Returns the previous value if the key was
    /// present (like `BTreeMap`, the entry keeps its position, handle, and
    /// originally stored key).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let rank = self.lower_bound(&key);
        if rank < self.len() && self.key_at_rank(rank).cmp(&key).is_eq() {
            let h = self.list.handle_at_rank(rank);
            let entry = self.entry.get_mut(&h).expect("entry for live handle");
            return Some(std::mem::replace(&mut entry.1, value));
        }
        let h = self.list.insert(rank);
        self.entry.insert(h, (key, value));
        None
    }

    /// The value of `key`. Accepts any borrowed form of the key type
    /// (`&str` for `String` keys, like `BTreeMap`).
    ///
    /// ```
    /// use lll_api::LabelMap;
    ///
    /// let mut map: LabelMap<String, u32> = LabelMap::new();
    /// map.insert("ten".to_string(), 10);
    /// assert_eq!(map.get("ten"), Some(&10));
    /// assert!(map.contains_key("ten"));
    /// ```
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.rank_of_key(key).map(|r| &self.pair_at_rank(r).1)
    }

    /// Mutable access to the value of `key`.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let r = self.rank_of_key(key)?;
        let h = self.list.handle_at_rank(r);
        self.entry.get_mut(&h).map(|(_, v)| v)
    }

    /// True if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.rank_of_key(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let rank = self.rank_of_key(key)?;
        let h = self.list.delete(rank);
        self.entry.remove(&h).map(|(_, v)| v)
    }

    /// The smallest entry.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        (!self.is_empty()).then(|| {
            let (k, v) = self.pair_at_rank(0);
            (k, v)
        })
    }

    /// The largest entry.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        (!self.is_empty()).then(|| {
            let (k, v) = self.pair_at_rank(self.len() - 1);
            (k, v)
        })
    }

    /// Remove and return the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, V)> {
        if self.is_empty() {
            return None;
        }
        let h = self.list.delete(0);
        self.entry.remove(&h)
    }

    /// Remove and return the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, V)> {
        if self.is_empty() {
            return None;
        }
        let h = self.list.delete(self.len() - 1);
        self.entry.remove(&h)
    }

    /// Remove every entry, keeping the backend (and its cost counters)
    /// alive. Deletions run back-to-front — removal is free in the paper's
    /// cost model, so this is O(n) plus at most O(n) shrink-rebuild moves.
    pub fn clear(&mut self) {
        while !self.is_empty() {
            let h = self.list.delete(self.len() - 1);
            self.entry.remove(&h);
        }
    }

    /// Consume the map into its entries, sorted ascending by key — the
    /// shard **export** hook: the receiving side replays the run through
    /// [`from_sorted_iter`](LabelMap::from_sorted_iter) /
    /// [`extend_sorted`](LabelMap::extend_sorted) in one O(n) sweep.
    pub fn into_sorted_vec(self) -> Vec<(K, V)> {
        self.into_iter().collect()
    }

    /// Drain the entries of ranks `at..len` (the upper part of the key
    /// space), returning them sorted ascending. The retained prefix keeps
    /// its handles and layout. This is the shard **split** hook: the caller
    /// lands the returned run in a fresh map via
    /// [`extend_sorted`](LabelMap::extend_sorted), making a split O(shard)
    /// total.
    ///
    /// Panics if `at > len`.
    pub fn split_off_at_rank(&mut self, at: usize) -> Vec<(K, V)> {
        assert!(at <= self.len(), "split_off_at_rank {at} > len {}", self.len());
        let mut tail = Vec::with_capacity(self.len() - at);
        while self.len() > at {
            let h = self.list.delete(at);
            tail.push(self.entry.remove(&h).expect("entry for live handle"));
        }
        tail
    }

    /// Drain every entry with key ≥ `key`, returning them sorted ascending
    /// (the key-addressed form of
    /// [`split_off_at_rank`](Self::split_off_at_rank), shaped like
    /// `BTreeMap::split_off`).
    pub fn split_off<Q>(&mut self, key: &Q) -> Vec<(K, V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let at = self.lower_bound(key);
        self.split_off_at_rank(at)
    }

    /// Move every entry of `other` into `self`, leaving `other` empty — the
    /// shard **merge** hook. Runs of `other`'s keys that fall between
    /// `self`'s keys land as single backend splices (equal keys replace the
    /// value, last write wins, as with sequential inserts).
    pub fn append<M: RawList>(&mut self, other: &mut LabelMap<K, V, M>) {
        let drained = other.split_off_at_rank(0);
        self.extend_sorted(drained);
    }

    /// Iterate the entries with keys in `range`, in ascending key order —
    /// physically, a left-to-right sweep of the backend's slot array. The
    /// bounds accept any borrowed form of the key type.
    ///
    /// Unlike `BTreeMap::range`, an inverted range (start > end) yields an
    /// empty iterator instead of panicking.
    pub fn range<Q, R>(&self, range: R) -> Range<'_, K, V, L>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
        R: RangeBounds<Q>,
    {
        let start = match range.start_bound() {
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(k) => self.upper_bound(k),
            Bound::Excluded(k) => self.lower_bound(k),
            Bound::Unbounded => self.len(),
        };
        Range { map: self, next: start, end: end.max(start) }
    }

    /// Iterate all entries in ascending key order — a label-to-label walk
    /// of the backend's occupancy structure, allocating nothing and
    /// resolving no ranks per step (unlike [`range`](Self::range), which
    /// resolves ranks lazily so it can stay cheap on small sub-ranges).
    pub fn iter(&self) -> Iter<'_, K, V, L> {
        Iter { map: self, label: self.list.first_label(), remaining: self.len() }
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// A read-only cursor parked on the smallest entry (or exhausted if the
    /// map is empty). Cursors step through the backend's occupancy
    /// structure label-to-label — no per-step rank→label resolution.
    pub fn cursor_front(&self) -> MapCursor<'_, K, V, L> {
        MapCursor::new(self, self.list.first_label())
    }

    /// A read-only cursor parked on the largest entry.
    pub fn cursor_back(&self) -> MapCursor<'_, K, V, L> {
        MapCursor::new(self, self.list.last_label())
    }

    /// A read-only cursor parked on the first entry with key ≥ `key`
    /// (exhausted if every key is smaller). One rank→label resolution at
    /// creation; stepping is label-native from there.
    pub fn cursor_at<Q>(&self, key: &Q) -> MapCursor<'_, K, V, L>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let rank = self.lower_bound(key);
        let label = (rank < self.len()).then(|| self.list.label_of_rank(rank));
        MapCursor::new(self, label)
    }

    /// Merge a batch of entries **sorted ascending by key** in bulk: runs of
    /// new keys that land in the same gap between existing keys become one
    /// backend splice (one evenly-spread sweep) instead of per-key
    /// insertions. Keys equal to existing ones replace the value in place;
    /// equal adjacent batch keys collapse to the last occurrence.
    ///
    /// This is the engine under [`from_sorted_iter`](LabelMap::from_sorted_iter)
    /// and sorted [`extend`](Extend::extend); call it directly when you
    /// already hold a sorted `Vec`. Panics if the batch is not ascending.
    pub fn extend_sorted(&mut self, mut batch: Vec<(K, V)>) {
        assert!(
            batch.windows(2).all(|w| w[0].0.cmp(&w[1].0).is_le()),
            "extend_sorted requires keys in ascending order"
        );
        // Last write wins among equal batch keys, as with sequential inserts.
        batch.dedup_by(|next, kept| {
            if next.0.cmp(&kept.0).is_eq() {
                std::mem::swap(next, kept);
                true
            } else {
                false
            }
        });
        let mut pending: Vec<(K, V)> = Vec::new();
        let mut pending_rank = 0usize;
        for (k, v) in batch {
            if !pending.is_empty() {
                // Still strictly below the successor of the open gap?
                let continues =
                    pending_rank >= self.len() || k.cmp(self.key_at_rank(pending_rank)).is_lt();
                if continues {
                    pending.push((k, v));
                    continue;
                }
                self.splice_pending(pending_rank, &mut pending);
            }
            let rank = self.lower_bound(&k);
            if rank < self.len() && self.key_at_rank(rank).cmp(&k).is_eq() {
                // Existing key: replace the value, keep position and handle.
                let h = self.list.handle_at_rank(rank);
                self.entry.get_mut(&h).expect("entry for live handle").1 = v;
            } else {
                pending_rank = rank;
                pending.push((k, v));
            }
        }
        if !pending.is_empty() {
            self.splice_pending(pending_rank, &mut pending);
        }
    }

    /// Land an accumulated run of brand-new keys as one backend splice.
    fn splice_pending(&mut self, rank: usize, run: &mut Vec<(K, V)>) {
        let (handles, _) = self.list.splice_reported(rank, run.len());
        debug_assert_eq!(handles.len(), run.len());
        for (h, kv) in handles.into_iter().zip(run.drain(..)) {
            self.entry.insert(h, kv);
        }
    }
}

impl<K: Ord + Codec, V: Codec> LabelMap<K, V> {
    /// Write a durable snapshot of the map: the versioned header (backend,
    /// seed, η, entry count) followed by every `(key, value)` pair in
    /// ascending key order — one label-to-label sweep of the slot array,
    /// no intermediate buffers. Labels themselves are **not** persisted:
    /// they are ephemeral artifacts of the rebalancing scheme, and only
    /// rank order is semantic (see the [`persist`](crate::persist) module
    /// docs).
    ///
    /// Writing to a `File`? Wrap it in a [`std::io::BufWriter`] — the
    /// encoder issues one small write per field.
    ///
    /// ```
    /// use lll_api::LabelMap;
    ///
    /// let map = LabelMap::from_sorted_iter((0..100u64).map(|k| (k, k * 2)));
    /// let mut buf = Vec::new();
    /// map.write_snapshot(&mut buf).unwrap();
    /// let back: LabelMap<u64, u64> = LabelMap::read_snapshot(&mut buf.as_slice()).unwrap();
    /// assert_eq!(back.len(), 100);
    /// assert_eq!(back.get(&42), Some(&84));
    /// ```
    pub fn write_snapshot<W: Write + ?Sized>(&self, w: &mut W) -> Result<(), SnapshotError> {
        Header::new(ContainerKind::LabelMap, self.list.config(), self.len() as u64).write_to(w)?;
        for (k, v) in self.iter() {
            k.encode(w)?;
            v.encode(w)?;
        }
        Ok(())
    }

    /// Restore a map from a snapshot written by
    /// [`write_snapshot`](Self::write_snapshot): rebuild the recorded
    /// backend (same algorithm, seed, and η), then land the decoded sorted
    /// run through the O(n) bulk-load sweep — exactly one move per element,
    /// no per-op replay, regardless of the backend's per-operation movement
    /// bound.
    ///
    /// Never panics on bad input: truncated, corrupted, version- or
    /// container-mismatched streams return the matching
    /// [`SnapshotError`] variant (keys out of order are
    /// [`SnapshotError::Corrupt`]). Reading from a `File`? Wrap it in a
    /// [`std::io::BufReader`].
    pub fn read_snapshot<R: Read + ?Sized>(r: &mut R) -> Result<Self, SnapshotError> {
        let header = Header::read_expecting(r, ContainerKind::LabelMap)?;
        let count = usize::try_from(header.count)
            .map_err(|_| SnapshotError::Corrupt("entry count exceeds host width".into()))?;
        let entries = crate::persist::decode_sorted_run::<K, V, R>(r, count, "LabelMap")?;
        let mut map: Self = ListBuilder::from_config(header.config()).label_map();
        map.extend_sorted(entries);
        Ok(map)
    }
}

impl<K: Ord, V, L: RawList> Extend<(K, V)> for LabelMap<K, V, L> {
    /// Bulk-aware extension: the input is buffered, and if it arrives
    /// sorted ascending by key it is merged via the O(n) bulk path
    /// ([`extend_sorted`](LabelMap::extend_sorted)); unsorted input falls
    /// back to per-key insertion.
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        let batch: Vec<(K, V)> = iter.into_iter().collect();
        if batch.windows(2).all(|w| w[0].0.cmp(&w[1].0).is_le()) {
            self.extend_sorted(batch);
        } else {
            for (k, v) in batch {
                self.insert(k, v);
            }
        }
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for LabelMap<K, V> {
    /// Collects through the bulk-load path when the input is sorted (see
    /// [`Extend::extend`]).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        map.extend(iter);
        map
    }
}

impl<'a, K: Ord, V, L: RawList> IntoIterator for &'a LabelMap<K, V, L> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V, L>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over all entries of a [`LabelMap`] in ascending key order (see
/// [`LabelMap::iter`]): a label-to-label occupancy walk, O(1) space.
pub struct Iter<'a, K: Ord, V, L: RawList> {
    map: &'a LabelMap<K, V, L>,
    label: Option<usize>,
    remaining: usize,
}

impl<'a, K: Ord, V, L: RawList> Iterator for Iter<'a, K, V, L> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let l = self.label?;
        let h = self.map.list.handle_at_label(l)?;
        self.label = self.map.list.next_label_after(l);
        self.remaining -= 1;
        let (k, v) = self.map.pair_of(h);
        Some((k, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: Ord, V, L: RawList> ExactSizeIterator for Iter<'_, K, V, L> {}

impl<K: Ord, V, L: RawList> IntoIterator for LabelMap<K, V, L> {
    type Item = (K, V);
    type IntoIter = IntoIter<K, V, L>;

    /// Consume the map, yielding owned entries in ascending key order —
    /// the same O(1)-space occupancy walk as [`LabelMap::iter`], over the
    /// moved-in backend.
    fn into_iter(self) -> Self::IntoIter {
        let label = self.list.first_label();
        IntoIter { list: self.list, label, entry: self.entry }
    }
}

/// Owning iterator over a [`LabelMap`]'s entries in ascending key order.
pub struct IntoIter<K, V, L: RawList = ErasedList> {
    list: L,
    label: Option<usize>,
    entry: HashMap<Handle, (K, V)>,
}

impl<K, V, L: RawList> Iterator for IntoIter<K, V, L> {
    type Item = (K, V);

    fn next(&mut self) -> Option<Self::Item> {
        let l = self.label?;
        let h = self.list.handle_at_label(l)?;
        self.label = self.list.next_label_after(l);
        self.entry.remove(&h)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.entry.len(), Some(self.entry.len()))
    }
}

impl<K, V, L: RawList> ExactSizeIterator for IntoIter<K, V, L> {}

impl<K: Ord + fmt::Debug, V: fmt::Debug, L: RawList> fmt::Debug for LabelMap<K, V, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Iterator over a key range of a [`LabelMap`], in ascending key order.
pub struct Range<'a, K: Ord, V, L: RawList> {
    map: &'a LabelMap<K, V, L>,
    next: usize,
    end: usize,
}

impl<'a, K: Ord, V, L: RawList> Iterator for Range<'a, K, V, L> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let (k, v) = self.map.pair_at_rank(self.next);
        self.next += 1;
        Some((k, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl<K: Ord, V, L: RawList> ExactSizeIterator for Range<'_, K, V, L> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use std::collections::BTreeMap;

    #[test]
    fn point_ops_match_btreemap() {
        let mut map: LabelMap<u64, u64> = LabelMap::new();
        let mut model = BTreeMap::new();
        // deterministic mixed workload with duplicate keys
        let mut x = 9u64;
        for i in 0..800u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 200;
            match x % 3 {
                0 | 1 => {
                    assert_eq!(map.insert(k, i), model.insert(k, i), "insert({k}) diverged");
                }
                _ => {
                    assert_eq!(map.remove(&k), model.remove(&k), "remove({k}) diverged");
                }
            }
            assert_eq!(map.len(), model.len());
        }
        for k in 0..200 {
            assert_eq!(map.get(&k), model.get(&k), "get({k}) diverged");
        }
        assert_eq!(map.first_key_value(), model.first_key_value());
        assert_eq!(map.last_key_value(), model.last_key_value());
    }

    #[test]
    fn range_scans_match_btreemap() {
        let mut map: LabelMap<u32, String> = LabelMap::new();
        let mut model = BTreeMap::new();
        for k in (0..300).step_by(3) {
            map.insert(k, format!("v{k}"));
            model.insert(k, format!("v{k}"));
        }
        let collect =
            |it: Vec<(&u32, &String)>| -> Vec<u32> { it.iter().map(|(k, _)| **k).collect() };
        for (lo, hi) in [(0, 100), (7, 8), (50, 250), (299, 300), (100, 100)] {
            assert_eq!(
                collect(map.range(lo..hi).collect()),
                collect(model.range(lo..hi).collect()),
                "[{lo}, {hi}) diverged"
            );
            assert_eq!(
                collect(map.range(lo..=hi).collect()),
                collect(model.range(lo..=hi).collect()),
                "[{lo}, {hi}] diverged"
            );
        }
        assert_eq!(collect(map.range(..).collect()), collect(model.range(..).collect()));
        assert_eq!(map.iter().len(), model.len());
    }

    #[test]
    fn every_backend_serves_a_map() {
        for backend in Backend::ALL {
            let mut map: LabelMap<u32, u32> =
                ListBuilder::new().backend(backend).seed(13).label_map();
            for k in (0..300u32).rev() {
                map.insert(k, k * 2);
            }
            assert_eq!(map.len(), 300, "{}", backend.name());
            assert_eq!(map.get(&123), Some(&246), "{}", backend.name());
            let keys: Vec<u32> = map.keys().copied().collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{} unsorted", backend.name());
        }
    }

    #[test]
    fn from_iterator_and_extend() {
        let map: LabelMap<i32, i32> = (0..50).map(|k| (k, -k)).collect();
        assert_eq!(map.len(), 50);
        assert_eq!(map.get(&30), Some(&-30));
        // Unsorted input still collects correctly (per-key fallback).
        let map: LabelMap<i32, i32> = (0..50).rev().map(|k| (k, -k)).collect();
        assert_eq!(map.len(), 50);
        assert_eq!(map.get(&30), Some(&-30));
    }

    #[test]
    fn borrowed_key_lookups() {
        let mut map: LabelMap<String, u32> = LabelMap::new();
        for (i, name) in ["ash", "beech", "cedar", "elm", "oak"].iter().enumerate() {
            map.insert(name.to_string(), i as u32);
        }
        assert_eq!(map.get("cedar"), Some(&2));
        assert!(map.contains_key("oak"));
        assert!(!map.contains_key("yew"));
        *map.get_mut("elm").unwrap() += 10;
        assert_eq!(map.get("elm"), Some(&13));
        assert_eq!(map.lower_bound("c"), 2);
        assert_eq!(map.upper_bound("cedar"), 3);
        // Unsized-key ranges take the tuple-of-bounds form, as with BTreeMap.
        let bounds = (Bound::Included("beech"), Bound::Excluded("oak"));
        let mid: Vec<&str> = map.range::<str, _>(bounds).map(|(k, _)| k.as_str()).collect();
        assert_eq!(mid, ["beech", "cedar", "elm"]);
        assert_eq!(map.remove("ash"), Some(0));
        assert_eq!(map.remove("ash"), None);
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn from_sorted_iter_matches_btreemap_with_fewer_moves() {
        let n = 3000u32;
        let bulk: LabelMap<u32, u32> = LabelMap::from_sorted_iter((0..n).map(|k| (k, k * 7)));
        let mut inc: LabelMap<u32, u32> = LabelMap::new();
        let mut model = BTreeMap::new();
        for k in 0..n {
            inc.insert(k, k * 7);
            model.insert(k, k * 7);
        }
        assert_eq!(bulk.len(), model.len());
        assert!(bulk.iter().map(|(k, v)| (*k, *v)).eq(model.iter().map(|(k, v)| (*k, *v))));
        assert!(
            bulk.total_moves() < inc.total_moves(),
            "bulk {} !< incremental {}",
            bulk.total_moves(),
            inc.total_moves()
        );
    }

    #[test]
    fn from_sorted_iter_duplicates_last_write_wins() {
        let map = LabelMap::from_sorted_iter([(1, "a"), (1, "b"), (2, "c"), (2, "d"), (2, "e")]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&1), Some(&"b"));
        assert_eq!(map.get(&2), Some(&"e"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_sorted_iter_rejects_descending_input() {
        let _ = LabelMap::from_sorted_iter([(3, ()), (1, ())]);
    }

    #[test]
    fn extend_sorted_merges_into_existing_map() {
        let mut map: LabelMap<u32, &str> = LabelMap::new();
        let mut model = BTreeMap::new();
        for k in (0..400).step_by(4) {
            map.insert(k, "old");
            model.insert(k, "old");
        }
        // Sorted batch: interleaving new keys, existing keys (replaced),
        // head and tail extensions.
        let batch: Vec<(u32, &str)> = (0..500).filter(|k| k % 3 == 0).map(|k| (k, "new")).collect();
        map.extend(batch.clone());
        model.extend(batch);
        assert_eq!(map.len(), model.len());
        assert!(map.iter().map(|(k, v)| (*k, *v)).eq(model.iter().map(|(k, v)| (*k, *v))));
    }

    #[test]
    fn checked_rank_accessor() {
        let map = LabelMap::from_sorted_iter((0..5).map(|k| (k, ())));
        assert_eq!(map.get_key_at_rank(0), Some(&0));
        assert_eq!(map.get_key_at_rank(4), Some(&4));
        assert_eq!(map.get_key_at_rank(5), None);
        let empty: LabelMap<u8, ()> = LabelMap::new();
        assert_eq!(empty.get_key_at_rank(0), None);
    }

    #[test]
    fn owned_iteration_and_debug() {
        let map = LabelMap::from_sorted_iter((0..10).map(|k| (k, k * k)));
        assert_eq!(
            format!("{:?}", map.range(0..3).collect::<Vec<_>>()),
            "[(0, 0), (1, 1), (2, 4)]"
        );
        let dbg = format!("{map:?}");
        assert!(dbg.starts_with('{') && dbg.contains("3: 9"), "unexpected Debug: {dbg}");
        let by_ref: Vec<(i32, i32)> = (&map).into_iter().map(|(k, v)| (*k, *v)).collect();
        let owned: Vec<(i32, i32)> = map.into_iter().collect();
        assert_eq!(owned, by_ref);
        assert_eq!(owned.len(), 10);
        assert!(owned.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn pop_clear_and_export_hooks() {
        let mut map = LabelMap::from_sorted_iter((0..100u32).map(|k| (k, k * 3)));
        assert_eq!(map.pop_first(), Some((0, 0)));
        assert_eq!(map.pop_last(), Some((99, 297)));
        assert_eq!(map.len(), 98);
        // split_off drains the suffix sorted, keeping the prefix intact.
        let tail = map.split_off(&50);
        assert_eq!(tail.first(), Some(&(50, 150)));
        assert_eq!(tail.last(), Some(&(98, 294)));
        assert!(tail.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(map.len(), 49);
        assert_eq!(map.last_key_value(), Some((&49, &147)));
        // append moves everything back (bulk path), last write wins.
        let mut other = LabelMap::from_sorted_iter(tail);
        other.insert(10, 9999); // overlaps the retained prefix
        map.append(&mut other);
        assert!(other.is_empty());
        assert_eq!(map.len(), 98);
        assert_eq!(map.get(&10), Some(&9999));
        assert_eq!(map.get(&98), Some(&294));
        // into_sorted_vec is the full export.
        let dump = map.into_sorted_vec();
        assert_eq!(dump.len(), 98);
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0));
        // clear empties but keeps the map usable.
        let mut map = LabelMap::from_sorted_iter((0..500u32).map(|k| (k, ())));
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.pop_first(), None);
        assert_eq!(map.pop_last(), None);
        map.insert(7, ());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn iter_walks_labels_without_rank_resolution_or_snapshot_allocs() {
        use lll_classic::ClassicBuilder;
        let mut map: LabelMap<u32, u32, _> =
            LabelMap::with_backend(ListBuilder::new().build_growable(ClassicBuilder));
        for k in 0..500 {
            map.insert(k * 2, k);
        }
        let before = map.backend().rank_resolutions();
        let collected: Vec<(u32, u32)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected.len(), 500);
        assert!(collected.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(
            map.backend().rank_resolutions(),
            before,
            "iter must walk labels, not resolve ranks"
        );
        // ExactSizeIterator stays honest mid-walk.
        let mut it = map.iter();
        assert_eq!(it.len(), 500);
        it.next();
        it.next();
        assert_eq!(it.len(), 498);
        // The owning iterator walks the same way.
        let owned: Vec<(u32, u32)> = map.into_iter().collect();
        assert_eq!(owned, collected);
    }

    #[test]
    fn snapshot_roundtrip_preserves_entries_and_order() {
        for backend in Backend::ALL {
            let mut map: LabelMap<u64, String> =
                ListBuilder::new().backend(backend).seed(21).label_map();
            for k in 0..300u64 {
                map.insert(k * 7 % 1024, format!("v{k}"));
            }
            let mut buf = Vec::new();
            map.write_snapshot(&mut buf).unwrap();
            let back: LabelMap<u64, String> = LabelMap::read_snapshot(&mut buf.as_slice()).unwrap();
            assert_eq!(back.len(), map.len(), "{backend}");
            assert_eq!(back.backend_name(), map.backend_name(), "{backend}");
            assert!(back.iter().eq(map.iter()), "{backend} iteration diverged");
        }
    }

    #[test]
    fn snapshot_of_empty_map_roundtrips() {
        let map: LabelMap<u8, u8> = LabelMap::new();
        let mut buf = Vec::new();
        map.write_snapshot(&mut buf).unwrap();
        let back: LabelMap<u8, u8> = LabelMap::read_snapshot(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.iter().len(), 0);
    }

    #[test]
    fn map_cursor_walks_and_seeks() {
        let map = LabelMap::from_sorted_iter((0..300).filter(|k| k % 3 == 0).map(|k| (k, k + 1)));
        // Full forward walk == iter().
        let mut cur = map.cursor_front();
        let mut walked = Vec::new();
        while let Some((k, v)) = cur.entry() {
            walked.push((*k, *v));
            cur.move_next();
        }
        assert!(walked.iter().copied().eq(map.iter().map(|(k, v)| (*k, *v))));
        // Walking off the back is recoverable.
        assert!(cur.move_next().is_none());
        assert_eq!(cur.move_prev(), Some((&297, &298)));
        // Seek lands on the lower bound.
        assert_eq!(map.cursor_at(&100).key(), Some(&102));
        assert_eq!(map.cursor_at(&102).key(), Some(&102));
        assert!(map.cursor_at(&298).entry().is_none());
        assert_eq!(map.cursor_back().key(), Some(&297));
        // Backward walk mirrors forward.
        let mut cur = map.cursor_back();
        let mut rev = Vec::new();
        while let Some((k, v)) = cur.entry() {
            rev.push((*k, *v));
            cur.move_prev();
        }
        rev.reverse();
        assert_eq!(rev, walked);
    }
}
