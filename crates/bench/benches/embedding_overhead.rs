//! E4/E13: the constant-factor overhead of one embedding layer — F alone
//! versus F ⊳ R on the same workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lll_adaptive::AdaptiveBuilder;
use lll_classic::ClassicBuilder;
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_embedding::EmbedBuilder;
use lll_workloads::uniform_random_inserts;

fn bench_overhead(c: &mut Criterion) {
    let n = 1 << 12;
    let w = uniform_random_inserts(n, 3);
    let mut g = c.benchmark_group("embedding_overhead");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("adaptive_alone", n), &w, |bch, w| {
        bch.iter_batched(
            || AdaptiveBuilder::default().build_default(w.peak),
            |mut s| {
                for &op in &w.ops {
                    criterion::black_box(s.apply(op).cost());
                }
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_with_input(BenchmarkId::new("adaptive_in_classic", n), &w, |bch, w| {
        bch.iter_batched(
            || EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder).build_default(w.peak),
            |mut s| {
                for &op in &w.ops {
                    criterion::black_box(s.apply(op).cost());
                }
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
