//! E5/E13 wall-clock throughput of Corollary 11's layered structure.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_embedding::corollary11_builder;
use lll_workloads::{hammer_inserts, uniform_random_inserts};

fn bench_layered(c: &mut Criterion) {
    let n = 1 << 11;
    let mut g = c.benchmark_group("layered");
    g.sample_size(10);
    for w in [uniform_random_inserts(n, 7), hammer_inserts(n, 0)] {
        g.bench_with_input(BenchmarkId::new("corollary11", &w.name), &w, |bch, w| {
            bch.iter_batched(
                || corollary11_builder(42).build_default(w.peak),
                |mut s| {
                    for &op in &w.ops {
                        criterion::black_box(s.apply(op).cost());
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_layered);
criterion_main!(benches);
