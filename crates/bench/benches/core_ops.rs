//! `core_ops` — machine-readable physical-layer benchmark.
//!
//! Measures, per backend: point-insert throughput (random ranks, filling a
//! fixed-capacity structure), rank→label `get` throughput, range-scan
//! throughput, moves per insert (the paper's cost model), and bytes per
//! slot of the physical representation. Results are printed as JSON and —
//! in full mode — written to `BENCH_core_ops.json` at the repo root, which
//! is committed so subsequent PRs have a perf baseline to diff against.
//!
//! Modes:
//!
//! * full (default): `cargo bench -p lll-bench --bench core_ops`
//!   — n = 2^20 for the PMA-skeleton backends, 2^17 for the layered
//!   embeddings; writes the JSON file.
//! * smoke (CI): `cargo bench -p lll-bench --bench core_ops -- --smoke`
//!   — n = 2^14 everywhere, JSON to stdout only (a liveness check, not a
//!   measurement).
//! * overhead gate (CI):
//!   `cargo bench -p lll-bench --bench core_ops -- --overhead-gate`
//!   — runs *only* the metrics-overhead check: best-of-3 classic insert
//!   runs with `ListMetrics` recording on vs off, exiting non-zero if the
//!   instrumented run is more than 5% slower. This pins the "metrics are
//!   cheap enough to leave on" claim from `docs/observability.md`.
//!
//! Reference point recorded before the bitmap slot-array landed (same
//! machine class, release, classic backend, n = 2^20 random inserts):
//! 97_457 inserts/s at 5.06 moves/op — the O(m)-scan-per-rebalance regime
//! this bench exists to keep buried.

use lll_api::{Backend, ListBuilder};
use rand::Rng;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    n: usize,
    insert_ops_per_sec: f64,
    moves_per_op: f64,
    get_ops_per_sec: f64,
    range_elems_per_sec: f64,
    bytes_per_slot: f64,
    num_slots: usize,
}

fn bench_backend(backend: Backend, n: usize, seed: u64) -> Row {
    let mut s = ListBuilder::new().seed(seed).backend(backend).build_fixed(n);
    let mut rng = lll_core::rng::rng_from_seed(seed ^ 0xC0DE);

    // Point inserts at random ranks, empty → full, through the
    // zero-allocation reporting path (one reused report buffer).
    let mut rep = lll_core::report::OpReport::default();
    let t = Instant::now();
    for len in 0..n {
        let rank = rng.gen_range(0..=len);
        s.insert_into(rank, &mut rep);
        std::hint::black_box(rep.cost());
    }
    let insert_secs = t.elapsed().as_secs_f64();
    let moves_per_op = s.slots().lifetime_moves() as f64 / n as f64;

    // Rank → label queries (the O(log m) navigation workload).
    let gets = (n / 2).max(1 << 12);
    let t = Instant::now();
    let mut acc = 0usize;
    for _ in 0..gets {
        acc = acc.wrapping_add(s.label_of_rank(rng.gen_range(0..n)));
    }
    std::hint::black_box(acc);
    let get_secs = t.elapsed().as_secs_f64();

    // Full range scan (physically contiguous sweep), several passes.
    let passes = 4;
    let t = Instant::now();
    let mut seen = 0usize;
    for _ in 0..passes {
        seen += s.iter_range(0, n).count();
    }
    std::hint::black_box(seen);
    let range_secs = t.elapsed().as_secs_f64();

    Row {
        name: backend.name(),
        n,
        insert_ops_per_sec: n as f64 / insert_secs,
        moves_per_op,
        get_ops_per_sec: gets as f64 / get_secs,
        range_elems_per_sec: seen as f64 / range_secs,
        bytes_per_slot: s.slots().memory_bytes() as f64 / s.slots().num_slots() as f64,
        num_slots: s.slots().num_slots(),
    }
}

/// Wall-clock seconds for `n` random-rank classic inserts with metrics
/// recording on or off (same seeds either way, so the work is identical).
fn classic_insert_secs(n: usize, metrics: bool, salt: u64) -> f64 {
    let mut s =
        ListBuilder::new().seed(7).backend(Backend::Classic).metrics(metrics).build_fixed(n);
    let mut rng = lll_core::rng::rng_from_seed(0xC0DE ^ salt);
    let mut rep = lll_core::report::OpReport::default();
    let t = Instant::now();
    for len in 0..n {
        let rank = rng.gen_range(0..=len);
        s.insert_into(rank, &mut rep);
        std::hint::black_box(rep.cost());
    }
    t.elapsed().as_secs_f64()
}

/// The metrics-overhead gate: best-of-`REPS` instrumented vs
/// uninstrumented classic insert runs, interleaved so thermal drift hits
/// both sides equally. True iff the overhead is within the budget.
fn overhead_gate() -> bool {
    const N: usize = 1 << 17;
    const REPS: usize = 3;
    const MAX_OVERHEAD: f64 = 0.05;
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for salt in 0..REPS as u64 {
        off = off.min(classic_insert_secs(N, false, salt));
        on = on.min(classic_insert_secs(N, true, salt));
    }
    let overhead = on / off - 1.0;
    eprintln!(
        "overhead-gate: classic n={N}: metrics-off {:.1}ms, metrics-on {:.1}ms, \
         overhead {:+.2}% (budget {:.0}%)",
        off * 1e3,
        on * 1e3,
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    overhead <= MAX_OVERHEAD
}

fn main() {
    if std::env::args().any(|a| a == "--overhead-gate") {
        if !overhead_gate() {
            eprintln!("overhead-gate: FAIL — metrics recording regressed the insert hot path");
            std::process::exit(1);
        }
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rows = Vec::new();
    for backend in Backend::ALL {
        let n = if smoke {
            1 << 14
        } else {
            match backend {
                // The layered embeddings run every op through three
                // structures; a smaller n keeps the full run under a
                // minute without losing the asymptotic regime.
                Backend::Corollary11 | Backend::Corollary12 => 1 << 17,
                _ => 1 << 20,
            }
        };
        eprintln!("core_ops: {} n={n} ...", backend.name());
        rows.push(bench_backend(backend, n, 7));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"core_ops\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    json.push_str("  \"reference_pre_bitmap_classic_insert_ops_per_sec_n1m\": 97457,\n");
    json.push_str("  \"backends\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"insert_ops_per_sec\": {:.0}, \
             \"moves_per_op\": {:.3}, \"get_ops_per_sec\": {:.0}, \
             \"range_elems_per_sec\": {:.0}, \"bytes_per_slot\": {:.3}, \"num_slots\": {}}}",
            r.name,
            r.n,
            r.insert_ops_per_sec,
            r.moves_per_op,
            r.get_ops_per_sec,
            r.range_elems_per_sec,
            r.bytes_per_slot,
            r.num_slots
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core_ops.json");
        std::fs::write(path, &json).expect("write BENCH_core_ops.json");
        eprintln!("core_ops: wrote {path}");
    }
}
