//! `server_throughput` — machine-readable network-service benchmark.
//!
//! Drives an in-process `lll-server` on an ephemeral loopback port with
//! N blocking client connections running a mixed get/insert/range
//! workload, and reports sustained ops/s plus p50/p99 per-request
//! latency. A second phase measures the per-shard write-batching path:
//! `batch_insert` of a sorted 100k-key run versus the same 100k keys as
//! per-op `insert` round trips — the ratio is the point of the batching
//! verb (one network frame + O(piece) bulk sweeps per shard, against
//! 100k round trips of per-op work).
//!
//! Results are printed as JSON and — in full mode — written to
//! `BENCH_server.json` at the repo root, committed so subsequent PRs can
//! diff serving performance.
//!
//! Acceptance (ISSUE 6): the batch path must measurably beat per-op
//! round trips (full mode asserts ≥ 5×; in practice it is orders of
//! magnitude), and the mixed workload must report a finite p99.
//!
//! Modes:
//!
//! * full (default): `cargo bench -p lll-bench --bench server_throughput`
//!   — 4 connections × 25k mixed ops, 100k-key batch acceptance, writes
//!   the JSON file.
//! * smoke (CI): `... -- --smoke` — 2 connections × 2k ops, 10k-key
//!   batch, JSON to stdout only, no wall-clock assertion (shared
//!   runners).

use lll_server::{Client, Server, ServerConfig};
use lll_sharded::ShardedBuilder;
use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// SplitMix64 — deterministic uniform keys, distinct across threads.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key_bytes(k: u64) -> Vec<u8> {
    // Big-endian so byte-lexicographic order equals numeric order.
    k.to_be_bytes().to_vec()
}

fn start_server() -> lll_server::ServerHandle {
    let map = Arc::new(ShardedBuilder::new().backend(lll_api::Backend::Classic).seed(3).build());
    Server::start(map, ServerConfig::default()).expect("bind ephemeral port")
}

struct MixedResult {
    conns: usize,
    ops_per_conn: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Mixed workload: 50% get / 40% insert / 10% range(limit 32), per-op
/// latency sampled on every request.
fn run_mixed(conns: usize, ops_per_conn: usize) -> MixedResult {
    let mut server = start_server();
    let addr = server.local_addr();
    let start = Instant::now();
    let mut all_lat: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = (0..conns as u64)
            .map(|tid| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(ops_per_conn);
                    for i in 0..ops_per_conn as u64 {
                        let k = key_bytes(mix((tid << 40) | i) % 1_000_000);
                        let t = Instant::now();
                        match i % 10 {
                            0..=4 => {
                                let _ = client.get(&k).expect("get");
                            }
                            5..=8 => {
                                let _ = client.insert(&k, &i.to_le_bytes()).expect("insert");
                            }
                            _ => {
                                let _ = client.range(Some(&k), None, 32).expect("range");
                            }
                        }
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    all_lat.sort_unstable();
    let pct = |p: f64| all_lat[((all_lat.len() - 1) as f64 * p) as usize] as f64 / 1_000.0;
    MixedResult {
        conns,
        ops_per_conn,
        ops_per_sec: (conns * ops_per_conn) as f64 / secs,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

struct BatchResult {
    n: usize,
    batch_ops_per_sec: f64,
    per_op_ops_per_sec: f64,
    speedup: f64,
}

/// The batching acceptance: land `n` sorted keys via one `batch_insert`
/// frame versus `n` per-op `insert` round trips, on fresh servers.
fn run_batch_vs_per_op(n: usize) -> BatchResult {
    let entries = |base: u64| -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n as u64).map(|k| (key_bytes(base + k * 2), k.to_le_bytes().to_vec())).collect()
    };

    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let batch = entries(0);
    let t = Instant::now();
    let landed = client.batch_insert(batch).expect("batch_insert");
    let batch_secs = t.elapsed().as_secs_f64();
    assert_eq!(landed as usize, n, "batch must land every unique key");
    let stats = client.stats().expect("stats");
    assert!(stats.shards > 1, "a {n}-key batch must shard the map");
    assert_eq!(stats.len as usize, n);
    server.shutdown();

    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let t = Instant::now();
    for (k, v) in entries(0) {
        client.insert(&k, &v).expect("insert");
    }
    let per_op_secs = t.elapsed().as_secs_f64();
    let health = client.health().expect("health");
    assert_eq!(health.len as usize, n);
    server.shutdown();

    BatchResult {
        n,
        batch_ops_per_sec: n as f64 / batch_secs,
        per_op_ops_per_sec: n as f64 / per_op_secs,
        speedup: per_op_secs / batch_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (conns, ops, batch_n) = if smoke { (2, 2_000, 10_000) } else { (4, 25_000, 100_000) };

    eprintln!("server_throughput: mixed workload, {conns} connections x {ops} ops ...");
    let mixed = run_mixed(conns, ops);
    eprintln!("server_throughput: batch_insert vs per-op, n={batch_n} ...");
    let batch = run_batch_vs_per_op(batch_n);

    if !smoke {
        assert!(
            batch.speedup >= 5.0,
            "batch_insert only {:.1}x per-op round trips (need >= 5x)",
            batch.speedup
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"server_throughput\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    json.push_str(
        "  \"acceptance\": \"sustained mixed ops/s + p99 over N connections; \
         100k-key batch_insert >= 5x per-op inserts\",\n",
    );
    let _ = writeln!(
        json,
        "  \"mixed\": {{\"connections\": {}, \"ops_per_conn\": {}, \"ops_per_sec\": {:.0}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        mixed.conns, mixed.ops_per_conn, mixed.ops_per_sec, mixed.p50_us, mixed.p99_us
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{\"n\": {}, \"batch_keys_per_sec\": {:.0}, \
         \"per_op_keys_per_sec\": {:.0}, \"batch_speedup\": {:.1}}}",
        batch.n, batch.batch_ops_per_sec, batch.per_op_ops_per_sec, batch.speedup
    );
    json.push_str("}\n");

    println!("{json}");
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
        std::fs::write(path, &json).expect("write BENCH_server.json");
        eprintln!("server_throughput: wrote {path}");
    }
}
