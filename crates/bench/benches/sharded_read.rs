//! `sharded_read` — machine-readable read-scaling benchmark for the
//! lock-free reader path.
//!
//! Measures `ShardedMap::get` throughput for 1/2/4/8 reader threads,
//! each configuration twice: quiescent (no writer) and with one
//! *churning* writer running insert/remove waves that force shard
//! splits, merges, and directory growth under the readers. Reports
//! sustained reads/s, the per-configuration scaling factor versus the
//! single reader, and the optimistic hit ratio (hits / (hits +
//! fallbacks)) from the map's own read-path counters.
//!
//! A third phase pins the single-reader overhead story: one reader on
//! `ShardedMap` (RCU load + epoch-validated probe) versus one reader on
//! a plain `Mutex<LabelMap>` (uncontended lock, the cheapest possible
//! baseline on one thread) over the same warm keyset. The acceptance
//! target is that the optimistic machinery costs < 5% versus what a
//! single-threaded map would pay — on the lock-free path there is no
//! atomic RMW, only loads.
//!
//! Results are printed as JSON and — in full mode — written to
//! `BENCH_sharded_read.json` at the repo root, committed so subsequent
//! PRs can diff read-path performance.
//!
//! Acceptance (lock-free reader ISSUE): 8 readers with a churning
//! writer should sustain ≥ 4× the 1-reader ops/s — a *parallelism*
//! claim that requires ≥ 8 hardware threads to observe. On fewer cores
//! the run prints the measured factor with an INFO caveat instead of
//! failing: time-sliced readers cannot scale, and pretending otherwise
//! would just pin a lie into the JSON. The hit-ratio bar (> 90%
//! optimistic under churn) is core-count-independent and is asserted in
//! full mode on any machine.
//!
//! Modes:
//!
//! * full (default): `cargo bench -p lll-bench --bench sharded_read`
//!   — 200k reads/thread, 100k-key map, writes the JSON file.
//! * smoke (CI): `... -- --smoke` — 20k reads/thread, 10k-key map,
//!   JSON to stdout only, no ratio assertions (shared runners).

use lll_api::{Backend, LabelMap, ListBuilder};
use lll_sharded::{ShardedBuilder, ShardedMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// SplitMix64 — deterministic uniform keys, distinct across threads.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_map(keyspace: u64) -> Arc<ShardedMap<u64, u64>> {
    let map =
        Arc::new(ShardedBuilder::new().backend(Backend::Classic).seed(29).build::<u64, u64>());
    for k in 0..keyspace {
        map.insert(k, k ^ 0xFF);
    }
    map
}

struct ReadResult {
    readers: u64,
    ops_per_sec: f64,
    hit_ratio: f64,
    writer_waves: u64,
}

/// `readers` threads × `reads_per` random point reads over `keyspace`
/// warm keys; when `churn` is set, one extra thread runs insert/remove
/// waves (keys above the read range, so reads stay deterministic) until
/// every reader finishes.
fn run_readers(keyspace: u64, readers: u64, reads_per: u64, churn: bool) -> ReadResult {
    let map = build_map(keyspace);
    let before = map.stats();
    let stop = AtomicBool::new(false);
    let mut writer_waves = 0u64;
    let start = Instant::now();
    thread::scope(|s| {
        let writer = churn.then(|| {
            let map = Arc::clone(&map);
            let stop = &stop;
            s.spawn(move || {
                let mut waves = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..keyspace / 4 {
                        map.insert(keyspace + k, k);
                    }
                    for k in 0..keyspace / 4 {
                        map.remove(&(keyspace + k));
                    }
                    waves += 1;
                }
                waves
            })
        });
        let handles: Vec<_> = (0..readers)
            .map(|tid| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut acc = 0u64;
                    for i in 0..reads_per {
                        let k = mix((tid << 40) | i) % keyspace;
                        acc ^= map.get(&k).expect("warm key present");
                    }
                    acc
                })
            })
            .collect();
        let mut acc = 0u64;
        for h in handles {
            acc ^= h.join().expect("reader thread");
        }
        std::hint::black_box(acc);
        stop.store(true, Ordering::Relaxed);
        if let Some(w) = writer {
            writer_waves = w.join().expect("writer thread");
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = map.stats();
    let hits = stats.read_optimistic_hits - before.read_optimistic_hits;
    let falls = stats.read_lock_fallbacks - before.read_lock_fallbacks;
    ReadResult {
        readers,
        ops_per_sec: (readers * reads_per) as f64 / secs,
        hit_ratio: hits as f64 / (hits + falls).max(1) as f64,
        writer_waves,
    }
}

/// Single-reader overhead: reads/s on the sharded optimistic path versus
/// an uncontended `Mutex<LabelMap>` over the same warm keys.
fn run_overhead(keyspace: u64, reads: u64) -> (f64, f64) {
    let map = build_map(keyspace);
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..reads {
        acc ^= map.get(&(mix(i) % keyspace)).expect("warm key");
    }
    std::hint::black_box(acc);
    let sharded = reads as f64 / t.elapsed().as_secs_f64();

    let base: Mutex<LabelMap<u64, u64>> =
        Mutex::new(ListBuilder::new().backend(Backend::Classic).seed(29).label_map());
    for k in 0..keyspace {
        base.lock().unwrap().insert(k, k ^ 0xFF);
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..reads {
        acc ^= base.lock().unwrap().get(&(mix(i) % keyspace)).copied().expect("warm key");
    }
    std::hint::black_box(acc);
    let locked = reads as f64 / t.elapsed().as_secs_f64();
    (sharded, locked)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (keyspace, reads_per) = if smoke { (10_000u64, 20_000u64) } else { (100_000, 200_000) };
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "sharded_read: {cores} core(s); the >= 4x 8-reader scaling target needs >= 8 \
         hardware threads — fewer cores report measured factors with an INFO caveat"
    );

    let mut quiescent = Vec::new();
    let mut churned = Vec::new();
    for readers in [1u64, 2, 4, 8] {
        eprintln!("sharded_read: {readers} reader(s), quiescent ...");
        quiescent.push(run_readers(keyspace, readers, reads_per, false));
        eprintln!("sharded_read: {readers} reader(s), churning writer ...");
        churned.push(run_readers(keyspace, readers, reads_per, true));
    }
    eprintln!("sharded_read: single-reader overhead vs Mutex<LabelMap> ...");
    let (sharded_1r, locked_1r) = run_overhead(keyspace, reads_per);
    let overhead_pct = (locked_1r / sharded_1r - 1.0) * 100.0;

    let scale8 = churned[3].ops_per_sec / churned[0].ops_per_sec;
    let verdict = if cores >= 8 {
        if scale8 >= 4.0 {
            "ACCEPTANCE -> PASS"
        } else {
            "ACCEPTANCE -> FAIL"
        }
    } else {
        "INFO (insufficient cores for the parallelism claim)"
    };
    println!(
        "{verdict}: 8 readers + churning writer = {scale8:.2}x the 1-reader throughput \
         (bar: >= 4x with >= 8 cores); single-reader overhead vs uncontended \
         Mutex<LabelMap>: {overhead_pct:+.1}%"
    );
    if !smoke {
        for r in &churned {
            assert!(
                r.hit_ratio > 0.9,
                "{} readers under churn: only {:.1}% optimistic",
                r.readers,
                r.hit_ratio * 100.0
            );
        }
        if cores >= 8 {
            assert!(scale8 >= 4.0, "8-reader scaling {scale8:.2}x under the 4x bar");
        }
    }

    let fmt_runs = |runs: &[ReadResult]| {
        runs.iter()
            .map(|r| {
                format!(
                    "{{\"readers\": {}, \"ops_per_sec\": {:.0}, \"scale_vs_1\": {:.2}, \
                     \"optimistic_hit_ratio\": {:.4}, \"writer_waves\": {}}}",
                    r.readers,
                    r.ops_per_sec,
                    r.ops_per_sec / runs[0].ops_per_sec,
                    r.hit_ratio,
                    r.writer_waves
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ")
    };
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"sharded_read\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"acceptance\": \"8 readers + churning writer >= 4x 1-reader ops/s (needs >= 8 \
         cores; on fewer the scaling factors are time-sliced and reported as-is); > 90% \
         optimistic hit ratio under churn; single-reader overhead vs uncontended \
         Mutex<LabelMap> < 5%\",\n",
    );
    let _ = writeln!(json, "  \"keyspace\": {keyspace}, \"reads_per_thread\": {reads_per},");
    let _ = writeln!(json, "  \"quiescent\": [\n    {}\n  ],", fmt_runs(&quiescent));
    let _ = writeln!(json, "  \"with_churning_writer\": [\n    {}\n  ],", fmt_runs(&churned));
    let _ = writeln!(
        json,
        "  \"single_reader\": {{\"sharded_reads_per_sec\": {:.0}, \
         \"mutex_labelmap_reads_per_sec\": {:.0}, \"overhead_vs_mutex_pct\": {:.1}}}",
        sharded_1r, locked_1r, overhead_pct
    );
    json.push_str("}\n");

    println!("{json}");
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded_read.json");
        std::fs::write(path, &json).expect("write BENCH_sharded_read.json");
        eprintln!("sharded_read: wrote {path}");
    }
}
