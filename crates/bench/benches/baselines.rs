//! E13 wall-clock throughput of the base algorithms (Criterion), plus the
//! bulk-ingest comparison for the production API.
//!
//! Cost-model experiments live in the `experiments` binary; these benches
//! measure operations per second of each structure on two canonical
//! workloads (uniform random inserts and hammer inserts), and compare
//! `LabelMap::from_sorted_iter` (one evenly-spread sweep per batch) against
//! key-at-a-time insertion of the same pre-sorted data.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lll_adaptive::AdaptiveBuilder;
use lll_api::{Backend, LabelMap, ListBuilder};
use lll_classic::ClassicBuilder;
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_deamortized::DeamortizedBuilder;
use lll_randomized::RandomizedBuilder;
use lll_workloads::{hammer_inserts, uniform_random_inserts, Workload};

fn run_workload_bench<B: LabelingBuilder>(b: &B, w: &Workload) {
    let mut s = b.build_default(w.peak);
    for &op in &w.ops {
        criterion::black_box(s.apply(op).cost());
    }
}

fn bench_baselines(c: &mut Criterion) {
    let n = 1 << 12;
    let workloads = [uniform_random_inserts(n, 7), hammer_inserts(n, 0)];
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    for w in &workloads {
        g.bench_with_input(BenchmarkId::new("classic", &w.name), w, |bch, w| {
            bch.iter_batched(
                || (),
                |_| run_workload_bench(&ClassicBuilder, w),
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("adaptive", &w.name), w, |bch, w| {
            bch.iter_batched(
                || (),
                |_| run_workload_bench(&AdaptiveBuilder::default(), w),
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("randomized", &w.name), w, |bch, w| {
            bch.iter_batched(
                || (),
                |_| run_workload_bench(&RandomizedBuilder::with_seed(1), w),
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("deamortized", &w.name), w, |bch, w| {
            bch.iter_batched(
                || (),
                |_| run_workload_bench(&DeamortizedBuilder::default(), w),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

/// Bulk vs incremental ingest of a pre-sorted key set through `LabelMap`,
/// on the default layered backend and the classical PMA.
fn bench_bulk_load(c: &mut Criterion) {
    let n: u64 = 1 << 14;
    let mut g = c.benchmark_group("bulk_load");
    g.sample_size(10);
    for backend in [Backend::Corollary11, Backend::Classic] {
        g.bench_with_input(BenchmarkId::new("bulk", backend.name()), &n, |bch, &n| {
            bch.iter_batched(
                || (),
                |_| {
                    let mut map: LabelMap<u64, u64> =
                        ListBuilder::new().backend(backend).seed(7).label_map();
                    map.extend_sorted((0..n).map(|k| (k, k)).collect());
                    criterion::black_box(map.total_moves())
                },
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("incremental", backend.name()), &n, |bch, &n| {
            bch.iter_batched(
                || (),
                |_| {
                    let mut map: LabelMap<u64, u64> =
                        ListBuilder::new().backend(backend).seed(7).label_map();
                    for k in 0..n {
                        map.insert(k, k);
                    }
                    criterion::black_box(map.total_moves())
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_baselines, bench_bulk_load);
criterion_main!(benches);
