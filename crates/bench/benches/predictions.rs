//! E6/E13: learning-augmented PMA throughput across prediction error η.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_predictions::{PredictedBuilder, VecPredictor};
use lll_workloads::{descending_inserts, with_predictions};

fn bench_predictions(c: &mut Criterion) {
    let n = 1 << 12;
    let mut g = c.benchmark_group("predictions");
    g.sample_size(10);
    for eta in [0usize, 16, 256] {
        let pw = with_predictions(descending_inserts(n), eta, 5);
        g.bench_with_input(BenchmarkId::new("predicted_pma", eta), &pw, |bch, pw| {
            bch.iter_batched(
                || {
                    PredictedBuilder {
                        eta: pw.eta.max(1),
                        predictor: VecPredictor::new(pw.predictions.clone()),
                    }
                    .build_default(pw.workload.peak)
                },
                |mut s| {
                    for &op in &pw.workload.ops {
                        criterion::black_box(s.apply(op).cost());
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predictions);
criterion_main!(benches);
