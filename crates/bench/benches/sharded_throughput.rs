//! Multi-writer insert throughput: `ShardedMap` versus one mutex-guarded
//! `LabelMap` (the whole-map coarse lock a caller would otherwise reach
//! for), on a uniform-random keyed workload.
//!
//! The acceptance bar for the sharded subsystem is printed explicitly:
//! 4 writers on `ShardedMap` must beat a single `Mutex<LabelMap>` fed by
//! the same 4 writers by ≥ 2×. Two effects stack in the shards' favor:
//!
//! * **independence** — writers on different rebalance domains never
//!   contend (only visible with > 1 core), and
//! * **bounded domains** — each shard's rebalance and rank-search costs
//!   stay at O(polylog shard) while the monolithic map's grow with the
//!   total n, so the ratio *widens* as the map grows even on one core.
//!
//! Run with `cargo bench --bench sharded_throughput` (release codegen).

use lll_api::{Backend, LabelMap, ListBuilder};
use lll_sharded::{ShardedBuilder, ShardedMap};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// SplitMix64 — uniform pseudo-random keys, deterministic per slot, and a
/// bijection (distinct inputs, distinct keys).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn keys_for(tid: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| mix((tid << 32) | i)).collect()
}

/// Ops/second for `threads` writers inserting into one `Mutex<LabelMap>`.
fn run_mutex(backend: Backend, threads: u64, n_per: usize) -> f64 {
    let map: Arc<Mutex<LabelMap<u64, u64>>> =
        Arc::new(Mutex::new(ListBuilder::new().backend(backend).seed(1).label_map()));
    let start = Instant::now();
    thread::scope(|s| {
        for tid in 0..threads {
            let map = Arc::clone(&map);
            s.spawn(move || {
                for (i, k) in keys_for(tid, n_per).into_iter().enumerate() {
                    map.lock().unwrap().insert(k, i as u64);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as usize * n_per) as f64 / secs
}

/// Ops/second for `threads` writers inserting into one `ShardedMap`.
fn run_sharded(map: &Arc<ShardedMap<u64, u64>>, threads: u64, n_per: usize) -> f64 {
    let start = Instant::now();
    thread::scope(|s| {
        for tid in 0..threads {
            let map = Arc::clone(map);
            s.spawn(move || {
                for (i, k) in keys_for(tid, n_per).into_iter().enumerate() {
                    map.insert(k, i as u64);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total = threads as usize * n_per;
    assert_eq!(map.len(), total, "all inserts must land (keys are distinct)");
    total as f64 / secs
}

fn bench_backend(backend: Backend, builder: &ShardedBuilder, n_per: usize, acceptance: bool) {
    println!("== {} backend, {} inserts/writer, uniform-random u64 keys ==", backend.name(), n_per);
    for threads in [1u64, 2, 4] {
        let map = Arc::new(builder.build::<u64, u64>());
        let sharded = run_sharded(&map, threads, n_per);
        let stats = map.stats();
        println!(
            "sharded_throughput/{}/sharded/{threads}w: {sharded:>9.0} ops/s \
             ({} shards, {} splits)",
            backend.name(),
            stats.shards,
            stats.splits
        );
    }
    let mutex1 = run_mutex(backend, 1, n_per);
    let mutex4 = run_mutex(backend, 4, n_per);
    println!("sharded_throughput/{}/mutex/1w:   {mutex1:>9.0} ops/s", backend.name());
    println!("sharded_throughput/{}/mutex/4w:   {mutex4:>9.0} ops/s", backend.name());
    let map = Arc::new(builder.build::<u64, u64>());
    let sharded4 = run_sharded(&map, 4, n_per);
    let vs_contended = sharded4 / mutex4;
    println!(
        "{} {}: 4-writer ShardedMap = {:.2}x the 4-writer Mutex<LabelMap>, \
         {:.2}x the 1-writer Mutex<LabelMap>{}",
        if acceptance { "ACCEPTANCE" } else { "INFO" },
        backend.name(),
        vs_contended,
        sharded4 / mutex1,
        if acceptance {
            if vs_contended >= 2.0 {
                " (bar: >= 2x) -> PASS"
            } else {
                " (bar: >= 2x) -> FAIL"
            }
        } else {
            ""
        }
    );
}

fn main() {
    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "{cores} core(s) available; with 1 core all speedups below come from bounded \
         rebalance domains alone, with >= 4 the per-shard lock independence stacks on top"
    );
    // Acceptance workload: the classic PMA has the lightest per-insert
    // constant of the six backends, making the coarse-locked baseline as
    // fast as it can be — the hardest case for the sharded map to beat.
    bench_backend(
        Backend::Classic,
        &ShardedBuilder::new().backend(Backend::Classic),
        150_000,
        true,
    );
    // The production-default layered backend: its amortized cost barely
    // grows with n (that is Corollary 11's point), so bounded domains win
    // less on one core; shards are kept larger because its per-shard
    // rebuild constants are heavier.
    bench_backend(
        Backend::Corollary11,
        &ShardedBuilder::new().backend(Backend::Corollary11).max_shard_len(16_384),
        75_000,
        false,
    );
}
