//! `wal` — machine-readable durability benchmark.
//!
//! Measures, against the same 8-byte-key workload:
//!
//! * **append throughput per fsync policy** — `Never` (OS-buffered),
//!   `EveryMillis(5)` (timed batching), and `Always` under concurrent
//!   committers (group commit: every ack is fsync-durable, one fsync
//!   amortized over the whole batch) — versus the naive baseline the
//!   group-commit design exists to beat: one `fsync` per record.
//! * **recovery throughput** — replaying the whole log through
//!   [`DurableMap::open`] versus restoring from a checkpoint written at
//!   the log's tip (snapshot restore + zero records replayed).
//!
//! Results are printed as JSON and — in full mode — written to
//! `BENCH_wal.json` at the repo root, committed so subsequent PRs can
//! diff durability performance.
//!
//! Acceptance (ISSUE 10): group-committed `Always` throughput must be
//! ≥ 5× the fsync-per-record baseline. Enforced in full mode; smoke
//! runs are too small for stable wall-clock ratios on shared runners.
//!
//! Modes:
//!
//! * full (default): `cargo bench -p lll-bench --bench wal`
//!   — 20_000 records per policy, 32 committer threads, 100_000-record
//!   replay corpus; writes the JSON file and enforces the 5× bound.
//! * smoke (CI): `cargo bench -p lll-bench --bench wal -- --smoke`
//!   — 500 records, 2_000-record replay corpus, JSON to stdout only.
//!
//! Scratch directories live under `target/bench-wal/` so the benchmark
//! exercises the real filesystem (fsync on tmpfs is free and would
//! flatter every row equally).

use lll_sharded::ShardedBuilder;
use lll_wal::{DurableMap, DurableOptions, FsyncPolicy, Wal, WalOptions};
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const PAYLOAD_LEN: usize = 64;

fn scratch(name: &str) -> PathBuf {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench-wal"));
    let dir = root.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Row {
    name: &'static str,
    records: u64,
    threads: usize,
    records_per_sec: f64,
    fsyncs: u64,
    records_per_fsync: f64,
}

/// The baseline group commit exists to beat: append a frame, fsync, ack.
fn bench_fsync_per_record(records: u64) -> Row {
    let dir = scratch("fsync-per-record");
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(dir.join("naive.log"))
        .expect("create naive log");
    let payload = [0x5Au8; PAYLOAD_LEN];
    let t = Instant::now();
    for _ in 0..records {
        file.write_all(&payload).expect("append");
        file.sync_data().expect("fsync");
    }
    let secs = t.elapsed().as_secs_f64();
    Row {
        name: "fsync_per_record",
        records,
        threads: 1,
        records_per_sec: records as f64 / secs,
        fsyncs: records,
        records_per_fsync: 1.0,
    }
}

fn bench_policy(name: &'static str, policy: FsyncPolicy, records: u64, threads: usize) -> Row {
    let dir = scratch(name);
    let opts = WalOptions { fsync: policy, segment_bytes: 64 << 20 };
    let (wal, _) = Wal::open(&dir, opts).expect("open wal");
    let wal = Arc::new(wal);
    let payload = [0x5Au8; PAYLOAD_LEN];
    let per_thread = records / threads as u64;

    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let wal = Arc::clone(&wal);
            s.spawn(move || {
                for _ in 0..per_thread {
                    wal.append_durable(&payload).expect("append");
                }
            });
        }
    });
    // `Never` acks from the buffer; charge the final flush so the rows
    // compare durable-on-disk to durable-on-disk.
    wal.sync().expect("final sync");
    let secs = t.elapsed().as_secs_f64();

    let done = per_thread * threads as u64;
    let fsyncs = wal.metrics().fsyncs.get();
    Row {
        name,
        records: done,
        threads,
        records_per_sec: done as f64 / secs,
        fsyncs,
        records_per_fsync: done as f64 / fsyncs.max(1) as f64,
    }
}

struct RecoveryRow {
    name: &'static str,
    entries: u64,
    replayed: u64,
    entries_per_sec: f64,
}

/// Build a `DurableMap` corpus, then time recovery twice: pure log
/// replay, and checkpoint restore with an empty log suffix.
fn bench_recovery(entries: u64) -> (RecoveryRow, RecoveryRow) {
    let opts = || DurableOptions {
        wal: WalOptions { fsync: FsyncPolicy::Never, segment_bytes: 64 << 20 },
        ..DurableOptions::default()
    };
    let key = |i: u64| i.to_be_bytes().to_vec();
    let value = |i: u64| vec![(i & 0xFF) as u8; PAYLOAD_LEN];

    // Replay corpus: every entry is a log record, no checkpoint.
    let dir = scratch("recover-replay");
    {
        let (map, _) = DurableMap::<Vec<u8>, Vec<u8>>::open(&dir, opts(), &ShardedBuilder::new())
            .expect("open");
        for i in 0..entries {
            map.insert(key(i), value(i)).expect("insert");
        }
    }
    let t = Instant::now();
    let (map, rec) =
        DurableMap::<Vec<u8>, Vec<u8>>::open(&dir, opts(), &ShardedBuilder::new()).expect("reopen");
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(rec.replayed, entries, "replay corpus must recover from the log");
    assert_eq!(map.map().len() as u64, entries);
    drop(map);

    // Checkpoint corpus: same entries, snapshot at the tip, log truncated.
    let dir = scratch("recover-checkpoint");
    {
        let (map, _) = DurableMap::<Vec<u8>, Vec<u8>>::open(&dir, opts(), &ShardedBuilder::new())
            .expect("open");
        for i in 0..entries {
            map.insert(key(i), value(i)).expect("insert");
        }
        map.checkpoint().expect("checkpoint");
    }
    let t = Instant::now();
    let (map, rec) =
        DurableMap::<Vec<u8>, Vec<u8>>::open(&dir, opts(), &ShardedBuilder::new()).expect("reopen");
    let restore_secs = t.elapsed().as_secs_f64();
    assert_eq!(rec.replayed, 0, "checkpoint corpus must not replay");
    assert_eq!(map.map().len() as u64, entries);
    drop(map);

    (
        RecoveryRow {
            name: "log_replay",
            entries,
            replayed: entries,
            entries_per_sec: entries as f64 / replay_secs,
        },
        RecoveryRow {
            name: "checkpoint_restore",
            entries,
            replayed: 0,
            entries_per_sec: entries as f64 / restore_secs,
        },
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let records: u64 = if smoke { 500 } else { 20_000 };
    let replay_entries: u64 = if smoke { 2_000 } else { 100_000 };

    eprintln!("wal: fsync_per_record records={records} ...");
    let baseline = bench_fsync_per_record(records);
    eprintln!("wal: group_commit_always records={records} ...");
    let always = bench_policy("group_commit_always", FsyncPolicy::Always, records, 32);
    eprintln!("wal: every_millis_5 records={records} ...");
    let timed = bench_policy("every_millis_5", FsyncPolicy::EveryMillis(5), records, 1);
    eprintln!("wal: never records={records} ...");
    let never = bench_policy("never", FsyncPolicy::Never, records, 1);
    let rows = [&baseline, &always, &timed, &never];

    let speedup = always.records_per_sec / baseline.records_per_sec;
    if !smoke {
        assert!(
            speedup >= 5.0,
            "group commit only {speedup:.1}x over fsync-per-record (need >= 5x)"
        );
    }

    eprintln!("wal: recovery entries={replay_entries} ...");
    let (replay, restore) = bench_recovery(replay_entries);
    let recovery_rows = [&replay, &restore];

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"wal\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    json.push_str("  \"acceptance\": \"group-committed Always >= 5x fsync-per-record\",\n");
    let _ = writeln!(json, "  \"group_commit_speedup\": {speedup:.1},");
    json.push_str("  \"append\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"records\": {}, \"threads\": {}, \
             \"records_per_sec\": {:.0}, \"fsyncs\": {}, \"records_per_fsync\": {:.1}}}",
            r.name, r.records, r.threads, r.records_per_sec, r.fsyncs, r.records_per_fsync
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recovery_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"entries\": {}, \"replayed\": {}, \
             \"entries_per_sec\": {:.0}}}",
            r.name, r.entries, r.replayed, r.entries_per_sec
        );
        json.push_str(if i + 1 < recovery_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
        std::fs::write(path, &json).expect("write BENCH_wal.json");
        eprintln!("wal: wrote {path}");
    }
}
