//! `snapshot` — machine-readable persistence benchmark.
//!
//! Measures, per backend: snapshot write throughput, **restore throughput**
//! (`LabelMap::read_snapshot`, the O(n) bulk sweep), and the cost of the
//! alternative a snapshot exists to avoid — replaying the same keys
//! through per-op `insert`. Results are printed as JSON and — in full
//! mode — written to `BENCH_snapshot.json` at the repo root, committed so
//! subsequent PRs can diff restore performance.
//!
//! Acceptance (ISSUE 5): restoring a 1M-key `LabelMap` performs exactly
//! one element move per key (asserted against the backend's move counter)
//! and is ≥ 10× faster than the per-op replay. Both are checked here, in
//! the n = 2^20 classic row; the layered backend is additionally held to
//! the O(n) restore bound (≤ 2 moves/key across its layers).
//!
//! Modes:
//!
//! * full (default): `cargo bench -p lll-bench --bench snapshot`
//!   — n = 2^20 for classic, 2^17 for the layered default; writes the
//!   JSON file and enforces the acceptance bounds.
//! * smoke (CI): `cargo bench -p lll-bench --bench snapshot -- --smoke`
//!   — n = 2^14, JSON to stdout only; still asserts the move-count bounds
//!   (they are size-independent), skips the wall-clock ratio (noisy at
//!   small n on shared runners).

use lll_api::{Backend, LabelMap, ListBuilder};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    n: usize,
    snapshot_bytes: usize,
    write_keys_per_sec: f64,
    restore_keys_per_sec: f64,
    replay_keys_per_sec: f64,
    restore_speedup: f64,
    restore_moves_per_key: f64,
}

fn bench_backend(backend: Backend, n: usize, enforce_speedup: bool) -> Row {
    let mut map: LabelMap<u64, u64> = ListBuilder::new().backend(backend).seed(11).label_map();
    map.extend_sorted((0..n as u64).map(|k| (k * 2, k)).collect());

    let mut buf = Vec::new();
    let t = Instant::now();
    map.write_snapshot(&mut buf).expect("write snapshot");
    let write_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let restored: LabelMap<u64, u64> =
        LabelMap::read_snapshot(&mut buf.as_slice()).expect("read snapshot");
    let restore_secs = t.elapsed().as_secs_f64();
    assert_eq!(restored.len(), n, "restore lost entries");
    let moves_per_key = restored.total_moves() as f64 / n as f64;
    match backend {
        // The PMA-skeleton backends land the run in one merge sweep:
        // exactly one placement per element.
        Backend::Classic => {
            assert_eq!(restored.total_moves(), n as u64, "restore must be exactly 1 move/element")
        }
        // The layered embeddings mirror the splice through their shells:
        // still O(n), bounded by 2 moves per element.
        _ => assert!(
            restored.total_moves() <= 2 * n as u64,
            "restore is not O(n): {} moves for {n} keys",
            restored.total_moves()
        ),
    }

    // The road not taken: replay every key through a point insert.
    let mut replay: LabelMap<u64, u64> = ListBuilder::new().backend(backend).seed(11).label_map();
    let t = Instant::now();
    for k in 0..n as u64 {
        replay.insert(k * 2, k);
    }
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(replay.len(), n);

    let speedup = replay_secs / restore_secs;
    if enforce_speedup {
        assert!(
            speedup >= 10.0,
            "{}: restore only {speedup:.1}x faster than replay (need >= 10x)",
            backend.name()
        );
    }
    Row {
        name: backend.name(),
        n,
        snapshot_bytes: buf.len(),
        write_keys_per_sec: n as f64 / write_secs,
        restore_keys_per_sec: n as f64 / restore_secs,
        replay_keys_per_sec: n as f64 / replay_secs,
        restore_speedup: speedup,
        restore_moves_per_key: moves_per_key,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rows = Vec::new();
    for backend in [Backend::Classic, Backend::Corollary11] {
        let n = if smoke {
            1 << 14
        } else {
            match backend {
                Backend::Classic => 1 << 20,
                _ => 1 << 17,
            }
        };
        eprintln!("snapshot: {} n={n} ...", backend.name());
        // The wall-clock acceptance bound applies to the full-mode 1M-key
        // row; small smoke runs only pin the move counts.
        rows.push(bench_backend(backend, n, !smoke && n >= 1 << 20));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"snapshot\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    json.push_str("  \"acceptance\": \"1M-key restore: exactly 1 move/key, >= 10x replay\",\n");
    json.push_str("  \"backends\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"snapshot_bytes\": {}, \
             \"write_keys_per_sec\": {:.0}, \"restore_keys_per_sec\": {:.0}, \
             \"replay_keys_per_sec\": {:.0}, \"restore_speedup\": {:.1}, \
             \"restore_moves_per_key\": {:.3}}}",
            r.name,
            r.n,
            r.snapshot_bytes,
            r.write_keys_per_sec,
            r.restore_keys_per_sec,
            r.replay_keys_per_sec,
            r.restore_speedup,
            r.restore_moves_per_key
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
        std::fs::write(path, &json).expect("write BENCH_snapshot.json");
        eprintln!("snapshot: wrote {path}");
    }
}
