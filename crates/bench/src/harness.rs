//! Workload execution and measurement.

use lll_core::cost::{CostSeries, CostStats};
use lll_core::traits::ListLabeling;
use lll_workloads::Workload;
use std::time::Instant;

/// The measured outcome of running one workload on one structure.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Structure name.
    pub structure: String,
    /// Workload name.
    pub workload: String,
    /// Aggregate cost statistics (element moves per operation).
    pub stats: CostStats,
    /// Full per-operation cost series (for tails and window checks).
    pub series: CostSeries,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
}

impl RunResult {
    /// Amortized element moves per operation.
    pub fn amortized(&self) -> f64 {
        self.stats.amortized()
    }

    /// Worst single-operation cost.
    pub fn max_op(&self) -> u64 {
        self.stats.max()
    }

    /// Operations per second (wall clock).
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.stats.ops() as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Verify the light-amortization shape: for every window length `w` in
    /// `windows`, check `max_window_total(w) ≤ c·(w·C + n)` and return the
    /// worst ratio `max_window_total / (w·C + n)` observed.
    pub fn light_amortization_ratio(&self, per_op: f64, n: usize, windows: &[usize]) -> f64 {
        windows
            .iter()
            .map(|&w| {
                let bound = w as f64 * per_op + n as f64;
                self.series.max_window_total(w) as f64 / bound
            })
            .fold(0.0, f64::max)
    }
}

/// Run `workload` on `structure`, recording per-operation costs.
pub fn run_workload<L: ListLabeling>(structure: &mut L, workload: &Workload) -> RunResult {
    assert!(
        structure.capacity() >= workload.peak,
        "structure capacity {} < workload peak {}",
        structure.capacity(),
        workload.peak
    );
    let mut stats = CostStats::new();
    let mut series = CostSeries::new();
    let start = Instant::now();
    for &op in &workload.ops {
        let cost = structure.apply(op).cost();
        stats.record(cost);
        series.push(cost);
    }
    RunResult {
        structure: structure.name().to_string(),
        workload: workload.name.clone(),
        stats,
        series,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_classic::ClassicBuilder;
    use lll_core::traits::LabelingBuilder;
    use lll_workloads::uniform_random_inserts;

    #[test]
    fn run_collects_costs() {
        let w = uniform_random_inserts(200, 1);
        let mut pma = ClassicBuilder.build(w.peak, w.peak * 13 / 10);
        let r = run_workload(&mut pma, &w);
        assert_eq!(r.stats.ops(), 200);
        assert_eq!(r.series.len(), 200);
        assert!(r.amortized() >= 1.0);
        assert!(r.max_op() >= 1);
    }

    #[test]
    fn light_amortization_ratio_is_finite() {
        let w = uniform_random_inserts(300, 2);
        let mut pma = ClassicBuilder.build(w.peak, w.peak * 13 / 10);
        let r = run_workload(&mut pma, &w);
        let ratio = r.light_amortization_ratio(10.0, w.peak, &[10, 50, 100]);
        assert!(ratio.is_finite() && ratio >= 0.0);
    }
}
