//! # lll-bench — the experiment harness
//!
//! Regenerates every quantitative claim of the paper (see EXPERIMENTS.md
//! for the experiment ↔ paper-claim index). The [`experiments`] module
//! contains one function per experiment; the `experiments` binary runs them
//! and prints paper-style tables (optionally writing CSV next to the
//! binary's working directory under `results/`).
//!
//! Cost model note: all "cost" columns are **element moves** (the paper's
//! cost measure), derived from the structures' move logs. Wall-clock
//! throughput is measured separately by the Criterion benches in
//! `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{run_workload, RunResult};
pub use table::Table;
