//! One function per experiment (see EXPERIMENTS.md for the index).
//!
//! Each function returns one or more [`Table`]s; the `experiments` binary
//! prints them and optionally writes CSV. `quick` mode shrinks sizes so the
//! whole suite runs in seconds (used by integration tests); full mode is
//! what EXPERIMENTS.md records.

use crate::harness::{run_workload, RunResult};
use crate::table::{fmt_f, Table};
use lll_adaptive::AdaptiveBuilder;
use lll_classic::{ClassicBuilder, ShiftArrayBuilder};
use lll_core::testkit::fit_log_exponent;
use lll_core::traits::LabelingBuilder;
use lll_deamortized::DeamortizedBuilder;
use lll_embedding::{corollary11_builder, corollary12_builder, EmbedBuilder, EmbedConfig};
use lll_predictions::{PredictedBuilder, VecPredictor};
use lll_randomized::RandomizedBuilder;
use lll_workloads as wl;
use lll_workloads::Workload;

/// Experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Shrink sizes for fast runs (integration tests).
    pub quick: bool,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { quick: false, seed: 0xC0FFEE }
    }
}

impl ExpConfig {
    fn main_n(&self) -> usize {
        if self.quick {
            1 << 10
        } else {
            1 << 14
        }
    }

    fn sweep_ns(&self) -> Vec<usize> {
        if self.quick {
            vec![1 << 9, 1 << 10, 1 << 11]
        } else {
            vec![1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15]
        }
    }
}

fn run_built<B: LabelingBuilder>(b: &B, label: &str, w: &Workload) -> (RunResult, B::Structure) {
    let mut s = b.build_default(w.peak);
    let mut r = run_workload(&mut s, w);
    r.structure = label.to_string();
    (r, s)
}

fn push_result(t: &mut Table, r: &RunResult) {
    t.row(vec![
        r.workload.clone(),
        r.structure.clone(),
        fmt_f(r.amortized()),
        r.max_op().to_string(),
        fmt_f(r.ops_per_sec() / 1000.0),
    ]);
}

/// E10 — baseline scaling: amortized cost per structure per workload, plus
/// the fitted exponent p in cost ≈ c·(log n)^p on head-inserts (classical
/// should fit p ≈ 2; the shift-array anchor is linear in n).
pub fn e10_baselines(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let mut t = Table::new(
        format!("E10 baselines (n={n}): amortized moves/op by workload"),
        &["workload", "structure", "amortized", "max/op", "kops/s"],
    );
    for w in wl::standard_suite(n, cfg.seed) {
        let (r, _) = run_built(&ClassicBuilder, "classic", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&AdaptiveBuilder::default(), "adaptive", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&RandomizedBuilder::with_seed(cfg.seed ^ 1), "randomized", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&DeamortizedBuilder::default(), "deamortized", &w);
        push_result(&mut t, &r);
        if n <= 1 << 12 {
            let (r, _) = run_built(&ShiftArrayBuilder, "naive-shift", &w);
            push_result(&mut t, &r);
        }
    }

    let mut shape = Table::new(
        "E10 shape fit: exponent p in cost/op ~ (log n)^p on head inserts",
        &["structure", "p", "points (n: cost)"],
    );
    let ns = cfg.sweep_ns();
    let fit_for = |name: &str, f: &dyn Fn(usize) -> f64| -> Vec<String> {
        let pts: Vec<(usize, f64)> = ns.iter().map(|&n| (n, f(n))).collect();
        let p = fit_log_exponent(&pts);
        let desc =
            pts.iter().map(|(n, c)| format!("{}:{}", n, fmt_f(*c))).collect::<Vec<_>>().join(" ");
        vec![name.to_string(), fmt_f(p), desc]
    };
    shape.rows.push(fit_for("classic", &|n| {
        let w = wl::descending_inserts(n);
        run_built(&ClassicBuilder, "classic", &w).0.amortized()
    }));
    shape.rows.push(fit_for("adaptive", &|n| {
        let w = wl::descending_inserts(n);
        run_built(&AdaptiveBuilder::default(), "adaptive", &w).0.amortized()
    }));
    shape.rows.push(fit_for("randomized", &|n| {
        let w = wl::descending_inserts(n);
        run_built(&RandomizedBuilder::with_seed(cfg.seed ^ 2), "randomized", &w).0.amortized()
    }));
    shape.rows.push(fit_for("deamortized", &|n| {
        let w = wl::descending_inserts(n);
        run_built(&DeamortizedBuilder::default(), "deamortized", &w).0.amortized()
    }));
    vec![t, shape]
}

/// E11 — tail profile: the randomized structure's per-op cost distribution
/// has a heavy tail (cost ≥ k·mean for non-trivial fractions), while the
/// deamortized structure is capped; the layered structure inherits the cap.
pub fn e11_tails(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let w = wl::hammer_inserts(n, 0);
    let mut t = Table::new(
        format!("E11 tails on hammer (n={n}): fraction of ops with cost > k·mean"),
        &["structure", "mean", "max", ">4x", ">16x", ">64x"],
    );
    let mut add = |r: &RunResult| {
        let mean = r.amortized();
        t.row(vec![
            r.structure.clone(),
            fmt_f(mean),
            r.max_op().to_string(),
            fmt_f(r.series.tail_fraction((4.0 * mean) as u32)),
            fmt_f(r.series.tail_fraction((16.0 * mean) as u32)),
            fmt_f(r.series.tail_fraction((64.0 * mean) as u32)),
        ]);
    };
    let (r, _) = run_built(&RandomizedBuilder::with_seed(cfg.seed ^ 3), "randomized (Y)", &w);
    add(&r);
    let (r, _) = run_built(&DeamortizedBuilder::default(), "deamortized (Z)", &w);
    add(&r);
    let (r, _) = run_built(&ClassicBuilder, "classic", &w);
    add(&r);
    let (r, _) = run_built(&corollary11_builder(cfg.seed), "X>(Y>Z) layered", &w);
    add(&r);
    vec![t]
}

/// E4 — Theorem 2: the single embedding `F ⊳ R` (adaptive into classic)
/// compared with its components across workloads: good-case cost tracks F,
/// worst-case stays bounded, general cost tracks R.
pub fn e4_theorem2(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let mut t = Table::new(
        format!("E4 Theorem 2 (n={n}): F=adaptive, R=classic, F>R vs parts"),
        &["workload", "structure", "amortized", "max/op", "kops/s"],
    );
    let embed_b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
    for w in [
        wl::hammer_inserts(n, 0),
        wl::uniform_random_inserts(n, cfg.seed),
        wl::adversarial_packed(n, cfg.seed ^ 4),
    ] {
        let (r, _) = run_built(&AdaptiveBuilder::default(), "F alone (adaptive)", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&ClassicBuilder, "R alone (classic)", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&embed_b, "F>R embed", &w);
        push_result(&mut t, &r);
    }
    vec![t]
}

/// E5 — Theorem 3 / Corollary 11: the triple composition cherry-picks the
/// best column of each row: adaptive cost on hammer, randomized-style cost
/// on random input, deamortized-style per-op cap everywhere.
pub fn e5_corollary11(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let mut t = Table::new(
        format!("E5 Corollary 11 (n={n}): X=adaptive, Y=randomized, Z=deamortized"),
        &["workload", "structure", "amortized", "max/op", "kops/s"],
    );
    for w in [
        wl::hammer_inserts(n, 0),
        wl::uniform_random_inserts(n, cfg.seed),
        wl::adversarial_packed(n, cfg.seed ^ 5),
    ] {
        let (r, _) = run_built(&AdaptiveBuilder::default(), "X alone (adaptive)", &w);
        push_result(&mut t, &r);
        let (r, _) =
            run_built(&RandomizedBuilder::with_seed(cfg.seed ^ 6), "Y alone (randomized)", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&DeamortizedBuilder::default(), "Z alone (deamortized)", &w);
        push_result(&mut t, &r);
        let (r, _) = run_built(&corollary11_builder(cfg.seed), "X>(Y>Z) layered", &w);
        push_result(&mut t, &r);
    }

    // n-sweep of the layered structure on hammer: adaptivity is retained
    // through two layers of embedding (amortized should grow ~log n, not
    // log² n — compare the classic column).
    let mut sweep = Table::new(
        "E5 sweep: layered amortized cost on hammer vs n",
        &["n", "layered", "classic", "ratio"],
    );
    for nn in cfg.sweep_ns() {
        let w = wl::hammer_inserts(nn, 0);
        let (rl, _) = run_built(&corollary11_builder(cfg.seed), "layered", &w);
        let (rc, _) = run_built(&ClassicBuilder, "classic", &w);
        sweep.row(vec![
            nn.to_string(),
            fmt_f(rl.amortized()),
            fmt_f(rc.amortized()),
            fmt_f(rl.amortized() / rc.amortized()),
        ]);
    }
    vec![t, sweep]
}

/// E6 — Corollary 12: learning-augmented layered structure; amortized cost
/// grows with the predictor error η (≈ log² η) and the layered version
/// keeps the randomized/deamortized fallbacks.
pub fn e6_corollary12(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let mut t = Table::new(
        format!("E6 Corollary 12 (n={n}, descending workload): cost vs prediction error"),
        &["eta", "predicted alone", "layered X>(Y>Z)", "layered max/op"],
    );
    let base = wl::descending_inserts(n);
    let mut etas = vec![0usize, 4, 16, 64, 256];
    if !cfg.quick {
        etas.push(n / 8);
    }
    for eta in etas {
        let pw = wl::with_predictions(base.clone(), eta, cfg.seed ^ 7);
        let b_alone = PredictedBuilder {
            eta: eta.max(1),
            predictor: VecPredictor::new(pw.predictions.clone()),
        };
        let (ra, _) = run_built(&b_alone, "predicted", &pw.workload);
        let b_layered = corollary12_builder(eta.max(1), pw.predictions.clone(), cfg.seed ^ 8);
        let (rl, _) = run_built(&b_layered, "layered", &pw.workload);
        t.row(vec![
            eta.to_string(),
            fmt_f(ra.amortized()),
            fmt_f(rl.amortized()),
            rl.max_op().to_string(),
        ]);
    }
    // classical reference
    let (rc, _) = run_built(&ClassicBuilder, "classic", &base);
    t.row(vec!["(classic ref)".into(), fmt_f(rc.amortized()), "-".into(), "-".into()]);
    vec![t]
}

/// E2+E7 — Figure 2 / Lemma 5: per-element deadweight histogram and the
/// embedding's cost decomposition (every deadweight move is one crossed
/// buffered element: total cost = emulator + shell + placements).
pub fn e7_lemma5(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let mut t = Table::new(
        format!("E7 Lemma 5 (n={n}): deadweight moves per element (must be <= 4)"),
        &["workload", "max", "hist 0..=8"],
    );
    let mut decomp = Table::new(
        "E2 Figure 2 accounting: embedding cost decomposition",
        &[
            "workload",
            "total moves",
            "r-shell",
            "deadweight",
            "incorporations",
            "fast ops",
            "slow ops",
        ],
    );
    for w in [
        wl::hammer_inserts(n, 0),
        wl::uniform_churn(n / 2, n, cfg.seed ^ 9),
        wl::adversarial_packed(n, cfg.seed ^ 10),
    ] {
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut s = b.build_default(w.peak);
        let r = run_workload(&mut s, &w);
        let st = s.stats();
        t.row(vec![
            w.name.clone(),
            st.max_deadweight.to_string(),
            format!("{:?}", st.deadweight_hist),
        ]);
        decomp.row(vec![
            w.name.clone(),
            r.stats.total().to_string(),
            st.r_shell_moves.to_string(),
            st.deadweight_moves.to_string(),
            st.incorporations.to_string(),
            st.fast_ops.to_string(),
            st.slow_ops.to_string(),
        ]);
        assert!(st.max_deadweight <= 4, "Lemma 5 violated: {}", st.max_deadweight);
    }
    vec![t, decomp]
}

/// E8 — Lemma 6: rebuild spans are o(n): max ops spanned by one rebuild,
/// and the normalized ratio span·log₂(n)/n (bounded by a constant if spans
/// are ≤ c·n/log n).
pub fn e8_lemma6(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E8 Lemma 6: max rebuild span (ops) vs n on hammer inserts",
        &["n", "max span", "span*log2(n)/n", "rebuilds"],
    );
    for n in cfg.sweep_ns() {
        let w = wl::hammer_inserts(n, 0);
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut s = b.build_default(w.peak);
        let _ = run_workload(&mut s, &w);
        let st = s.stats();
        let ratio = st.max_rebuild_span as f64 * (n as f64).log2() / n as f64;
        t.row(vec![
            n.to_string(),
            st.max_rebuild_span.to_string(),
            fmt_f(ratio),
            st.rebuilds_completed.to_string(),
        ]);
    }
    vec![t]
}

/// E9 — Lemma 7: buffer occupancy is o(n) and the halting condition never
/// fires.
pub fn e9_lemma7(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E9 Lemma 7: max buffered elements vs n (hammer inserts)",
        &["n", "max buffered", "buffered/n", "forced catchups"],
    );
    for n in cfg.sweep_ns() {
        let w = wl::hammer_inserts(n, 0);
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut s = b.build_default(w.peak);
        let _ = run_workload(&mut s, &w);
        let st = s.stats();
        t.row(vec![
            n.to_string(),
            st.max_buffered.to_string(),
            fmt_f(st.max_buffered as f64 / n as f64),
            st.forced_catchups.to_string(),
        ]);
        assert_eq!(st.forced_catchups, 0, "halting condition fired at n={n}");
    }
    vec![t]
}

/// E12 — ablation: the embedding's tuning knobs (ε, rebuild multiplier,
/// E_R multiplier) vs cost, buffering and worst case.
pub fn e12_ablation(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let w = wl::hammer_inserts(n, 0);
    let mut t = Table::new(
        format!("E12 ablation (n={n}, hammer): embedding knobs"),
        &["epsilon", "er_mult", "rebuild_mult", "amortized", "max/op", "max buffered"],
    );
    for &epsilon in &[1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0] {
        for &(er_mult, rebuild_mult) in
            &[(1.0, 1.0), (1.0, 2.0), (1.0, 4.0), (0.5, 2.0), (2.0, 2.0)]
        {
            let b = EmbedBuilder {
                f: AdaptiveBuilder::default(),
                r: ClassicBuilder,
                cfg: EmbedConfig { epsilon, er_mult, rebuild_mult },
            };
            let mut s = b.build_default(w.peak);
            let r = run_workload(&mut s, &w);
            let st = s.stats();
            t.row(vec![
                fmt_f(epsilon),
                fmt_f(er_mult),
                fmt_f(rebuild_mult),
                fmt_f(r.amortized()),
                r.max_op().to_string(),
                st.max_buffered.to_string(),
            ]);
        }
    }
    vec![t]
}

/// E4b — light amortization: verify the subsequence-cost shape that
/// Theorem 2's proof machinery needs from R (and that the composed
/// structure exhibits): max window totals stay within a constant of
/// `w·C + n`.
pub fn e4b_light_amortization(cfg: &ExpConfig) -> Vec<Table> {
    let n = cfg.main_n();
    let w = wl::uniform_churn(n / 2, n, cfg.seed ^ 11);
    let windows = [16usize, 64, 256, 1024];
    let mut t = Table::new(
        format!("E4b light amortization (n={}): max-window-ratio vs w*C+n", n / 2),
        &["structure", "amortized C", "worst ratio (<= O(1))"],
    );
    let mut add = |label: &str, r: &RunResult| {
        let c = r.amortized();
        t.row(vec![
            label.to_string(),
            fmt_f(c),
            fmt_f(r.light_amortization_ratio(c, n / 2, &windows)),
        ]);
    };
    let (r, _) = run_built(&ClassicBuilder, "classic", &w);
    add("classic", &r);
    let (r, _) = run_built(&DeamortizedBuilder::default(), "deamortized", &w);
    add("deamortized", &r);
    let (r, _) = run_built(&RandomizedBuilder::with_seed(cfg.seed ^ 12), "randomized", &w);
    add("randomized", &r);
    let (r, _) = run_built(&corollary11_builder(cfg.seed), "layered", &w);
    add("layered", &r);
    vec![t]
}

/// All experiments in EXPERIMENTS.md order.
pub fn all_experiments(cfg: &ExpConfig) -> Vec<(&'static str, Vec<Table>)> {
    vec![
        ("e4", e4_theorem2(cfg)),
        ("e4b", e4b_light_amortization(cfg)),
        ("e5", e5_corollary11(cfg)),
        ("e6", e6_corollary12(cfg)),
        ("e7", e7_lemma5(cfg)),
        ("e8", e8_lemma6(cfg)),
        ("e9", e9_lemma7(cfg)),
        ("e10", e10_baselines(cfg)),
        ("e11", e11_tails(cfg)),
        ("e12", e12_ablation(cfg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig { quick: true, seed: 7 }
    }

    #[test]
    fn e4_runs_quick() {
        let tables = e4_theorem2(&quick());
        assert!(!tables[0].rows.is_empty());
    }

    #[test]
    fn e5_layered_tracks_adaptive_on_hammer() {
        let cfg = quick();
        let n = cfg.main_n();
        let w = wl::hammer_inserts(n, 0);
        let (rx, _) = run_built(&AdaptiveBuilder::default(), "x", &w);
        let (rl, _) = run_built(&corollary11_builder(cfg.seed), "layered", &w);
        // The layered structure must stay within a constant of X on X's
        // best workload (Theorem 3's good-case guarantee). Constant chosen
        // loosely: composition overheads are real but bounded.
        assert!(
            rl.amortized() < 40.0 * rx.amortized().max(1.0),
            "layered {} vs adaptive {}",
            rl.amortized(),
            rx.amortized()
        );
    }

    #[test]
    fn e7_asserts_lemma5_internally() {
        let _ = e7_lemma5(&quick());
    }

    #[test]
    fn e9_asserts_lemma7_internally() {
        let _ = e9_lemma7(&quick());
    }

    #[test]
    fn e6_cost_increases_with_eta() {
        let tables = e6_corollary12(&quick());
        let rows = &tables[0].rows;
        // first row eta=0 (perfect), later rows larger eta: predicted-alone
        // column should not decrease drastically
        let first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = rows[rows.len() - 2][1].parse().unwrap();
        assert!(last >= first * 0.8, "eta sweep shape broken: {first} -> {last}");
    }
}
