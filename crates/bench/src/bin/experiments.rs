//! Experiment driver: regenerates every table/figure-level claim of the
//! paper (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments [--quick] [--csv DIR] [--seed N] [e4 e5 ...]
//!
//! With no experiment ids, runs the whole suite. `--quick` shrinks sizes
//! (CI smoke run); full mode is what EXPERIMENTS.md records. Run in
//! release mode: `cargo run -p lll-bench --release --bin experiments`.

#![forbid(unsafe_code)]

use lll_bench::experiments::{all_experiments, ExpConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = ExpConfig::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv needs a directory")));
            }
            "--seed" => {
                cfg.seed = args.next().expect("--seed needs a value").parse().expect("seed u64");
            }
            "--help" | "-h" => {
                println!("usage: experiments [--quick] [--csv DIR] [--seed N] [e4 e4b e5 e6 e7 e8 e9 e10 e11 e12 ...]");
                return;
            }
            other => wanted.push(other.to_ascii_lowercase()),
        }
    }
    println!(
        "layered-list-labeling experiments (mode: {}, seed: {})\n",
        if cfg.quick { "quick" } else { "full" },
        cfg.seed
    );
    let started = std::time::Instant::now();
    for (id, tables) in all_experiments(&cfg) {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        for t in tables {
            t.print();
            if let Some(dir) = &csv_dir {
                if let Err(e) = t.write_csv(dir) {
                    eprintln!("csv write failed: {e}");
                }
            }
        }
    }
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
}
