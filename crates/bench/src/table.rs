//! Minimal table formatting (stdout + CSV) for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A printable results table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV to `dir/<slug>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(csv, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        fs::write(dir.join(format!("{slug}.csv")), csv)
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("lll_table_test");
        let mut t = Table::new("csv demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "2".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("csv_demo.csv")).unwrap();
        assert!(content.contains("\"x,y\""));
    }

    #[test]
    fn fmt_variants() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(3.21159), "3.21");
        assert_eq!(fmt_f(42.42), "42.4");
        assert_eq!(fmt_f(12345.6), "12346");
    }
}
