//! The embedding `F ⊳ R` (paper §3) and its analysis instrumentation.
//!
//! `Embed<F, R>` runs a **simulated copy** of `F` (the planner: it processes
//! every operation at its true time, which is what makes Lemma 4's
//! input-independence hold), an **R-shell** `R` whose elements are the
//! array's non-white slots, and a physical tagged array holding the real
//! elements. Operations take the paper's fast path (mirror the simulation)
//! or slow path (buffer the element in an R-shell buffer slot and perform
//! Θ(E_R) of checkpointed rebuild work), with the Figure-2 move mechanics
//! translating F-emulator moves into physical moves whose extra cost is
//! exactly the *deadweight* the paper analyzes (Lemma 5 bounds it at 4
//! moves per element; `EmbedStats` records the realized histogram).
//!
//! `Embed<F, R>` itself implements [`ListLabeling`], so Theorem 3's double
//! embedding is literally `Embed<X, Embed<Y, Z>>` — see
//! [`crate::layered`].

use crate::tag_array::{SlotTag, TagArray};
use lll_core::fenwick::Fenwick;
use lll_core::ids::{ElemId, IdGen};
use lll_core::report::{BulkReport, OpReport};
use lll_core::slot_array::SlotArray;
use lll_core::traits::{LabelingBuilder, ListLabeling};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Where a live element physically lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// In the F-emulator's array, at this F-coordinate.
    F(usize),
    /// Buffered in the R-shell, at this physical position.
    Buffer(usize),
}

/// Tuning parameters of the embedding.
#[derive(Clone, Copy, Debug)]
pub struct EmbedConfig {
    /// The paper's ε: the F-emulator gets `(1+ε)n` slots, the shell `εn`
    /// buffer slots and `εn` free slots.
    pub epsilon: f64,
    /// Scales R's `expected_cost_hint` into the fast/slow-path threshold
    /// `E_R`.
    pub er_mult: f64,
    /// Rebuild work per slow-path operation, as a multiple of `E_R`
    /// (the paper's "Θ(E_R) rebuild work").
    pub rebuild_mult: f64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self { epsilon: 1.0 / 3.0, er_mult: 1.0, rebuild_mult: 2.0 }
    }
}

/// Observable counters for the paper's lemma-level experiments.
#[derive(Clone, Debug, Default)]
pub struct EmbedStats {
    /// Operations that took the fast path.
    pub fast_ops: u64,
    /// Operations that took the slow path.
    pub slow_ops: u64,
    /// Rebuilds started / completed (checkpoints).
    pub rebuilds_started: u64,
    /// Rebuilds completed.
    pub rebuilds_completed: u64,
    /// Max elements simultaneously buffered in the R-shell (Lemma 7).
    pub max_buffered: usize,
    /// Max operations spanned by one rebuild (Lemma 6).
    pub max_rebuild_span: u64,
    /// Histogram of total deadweight moves per element, recorded at
    /// incorporation/deletion: index d counts elements that suffered d
    /// deadweight moves (last bucket = "that many or more"). Lemma 5 says
    /// everything lands in buckets 0..=4.
    pub deadweight_hist: [u64; 9],
    /// Maximum deadweight moves suffered by any single element (Lemma 5
    /// bounds this by 4).
    pub max_deadweight: u32,
    /// Physical moves caused by mirroring R-shell rebalances.
    pub r_shell_moves: u64,
    /// Deadweight moves (buffered elements displaced by emulator motion).
    pub deadweight_moves: u64,
    /// Buffered elements incorporated into the F-emulator.
    pub incorporations: u64,
    /// Emergency full catch-ups because no dummy buffer slot was available
    /// (the paper's Lemma 7 halting condition; should stay 0).
    pub forced_catchups: u64,
    /// R-shell cost of the Θ(n) initialization inserts (reported separately,
    /// as the paper's light-amortization argument requires).
    pub init_cost: u64,
}

impl EmbedStats {
    fn record_deadweight(&mut self, d: u32) {
        self.max_deadweight = self.max_deadweight.max(d);
        let idx = (d as usize).min(self.deadweight_hist.len() - 1);
        self.deadweight_hist[idx] += 1;
    }
}

/// One interval `I_j` of a rebuild (Figure 3), with its two-phase cursor
/// (Figure 4).
#[derive(Clone, Debug)]
struct IntervalJob {
    f_hi: usize,
    /// Target layout within the interval: `(f_index, element)` ascending.
    targets: Vec<(usize, ElemId)>,
    target_set: HashSet<ElemId>,
    /// 0 = left-align (pack), 1 = rightward placement (descending),
    /// 2 = deferred leftward incorporations (ascending).
    phase: u8,
    /// Phase-0 read cursor (next F-index to examine).
    scan: usize,
    /// Phase-0 write cursor (next packed F-index).
    pack_next: usize,
    /// Phase-1 progress (targets placed, from the right).
    placed: usize,
    /// Buffered elements whose slot lies right of their target, deferred
    /// out of the descending pass (pushed in descending target order) and
    /// incorporated in ascending order — under which no deadweight element
    /// is crossed twice (see `run_checkpoint`).
    deferred: Vec<(usize, ElemId)>,
    /// Phase-2 progress (deferred entries placed, from the back = ascending).
    placed2: usize,
}

/// A pending rebuild: transform the physical F-layout into the frozen
/// checkpoint `C(t) = F(t₀)`.
#[derive(Clone, Debug)]
struct Checkpoint {
    jobs: Vec<IntervalJob>,
    job_idx: usize,
}

impl Checkpoint {
    /// Upper-bound estimate of the moves left (each unplaced target costs
    /// ≤ 1 pack move + 1 placement move, modulo deadweight).
    fn planned_remaining(&self) -> u64 {
        self.jobs[self.job_idx..]
            .iter()
            .map(|j| {
                2 * (j.targets.len() - j.placed) as u64 + 2 * (j.deferred.len() - j.placed2) as u64
            })
            .sum()
    }
}

/// The embedding `F ⊳ R` of a fast structure `F` into a reliable structure
/// `R` (paper §3, Theorem 2).
pub struct Embed<F: ListLabeling, R: ListLabeling> {
    capacity: usize,
    tags: TagArray,
    /// The simulated copy of F (processes every operation immediately).
    sim: F,
    /// The R-shell (its elements are the non-white slots of the array).
    shell: R,
    /// sim's element ids → embedding element ids (sim ids are dense).
    sim2emb: Vec<ElemId>,
    /// The physical F-layout, in F-coordinates, including ghosts.
    cur_f: Vec<Option<ElemId>>,
    /// Occupancy index over `cur_f`.
    fen_curf: Fenwick,
    /// Live elements → location.
    elem_loc: HashMap<ElemId, Loc>,
    /// Deleted elements still present in `cur_f` (ghosts) → F-coordinate.
    ghosts: HashMap<ElemId, usize>,
    /// Deadweight counters for currently buffered elements.
    deadweight: HashMap<ElemId, u32>,
    /// The element of the in-flight insertion, between its simulation
    /// insert and its physical placement. A checkpoint created in that
    /// window (e.g. by a forced catch-up inside `buffer_insert`) must not
    /// treat it as deleted.
    pending_insert: Option<ElemId>,
    /// F-coordinates touched by the simulation since the last completed
    /// rebuild — the diff candidates for the next checkpoint.
    dirty: BTreeSet<usize>,
    checkpoint: Option<Checkpoint>,
    /// The fast/slow threshold E_R.
    er_budget: f64,
    /// Rebuild moves per slow-path op (Θ(E_R)).
    rebuild_budget: u64,
    ids: IdGen,
    stats: EmbedStats,
    /// Operations since the pending rebuild started (Lemma 6 metric).
    rebuild_span: u64,
    /// Optional trace of the operation sequence fed to the R-shell
    /// (`(is_insert, slot_rank)`), for Lemma 4 experiments: this sequence
    /// must be identical across different R random tapes.
    shell_trace: Option<Vec<(bool, usize)>>,
    /// Reusable buffer for the simulation's per-op reports (the mirror
    /// path replays them move by move; reusing the buffer keeps
    /// steady-state operations allocation-free on the logging side).
    sim_scratch: OpReport,
    /// Reusable buffer for the R-shell's per-op reports (buffer-slot
    /// rotation on the slow path).
    shell_scratch: OpReport,
}

impl<F: ListLabeling, R: ListLabeling> Embed<F, R> {
    /// Assemble an embedding from an (empty) simulated F and an (empty)
    /// R-shell. `sim.num_slots()` is the F-emulator size `(1+ε)n`;
    /// `shell.capacity() - sim.num_slots()` buffer slots are created.
    /// Performs the Θ(n) R-shell initialization the paper describes.
    pub fn new(capacity: usize, sim: F, shell: R, er_budget: f64, rebuild_mult: f64) -> Self {
        let f_count = sim.num_slots();
        let r_cap = shell.capacity();
        let m = shell.num_slots();
        assert!(r_cap > f_count, "shell must hold F-slots plus buffer slots");
        assert!(m > r_cap, "shell needs free slots");
        assert!(sim.is_empty() && shell.is_empty(), "sim and shell must start empty");
        let buf_count = r_cap - f_count;
        let mut this = Self {
            capacity,
            tags: TagArray::new(m),
            sim,
            shell,
            sim2emb: Vec::with_capacity(capacity),
            cur_f: vec![None; f_count],
            fen_curf: Fenwick::new(f_count),
            elem_loc: HashMap::new(),
            ghosts: HashMap::new(),
            deadweight: HashMap::new(),
            pending_insert: None,
            dirty: BTreeSet::new(),
            checkpoint: None,
            er_budget: er_budget.max(1.0),
            rebuild_budget: ((er_budget * rebuild_mult).ceil() as u64).max(1),
            ids: IdGen::new(),
            stats: EmbedStats::default(),
            rebuild_span: 0,
            shell_trace: None,
            sim_scratch: OpReport::default(),
            shell_scratch: OpReport::default(),
        };
        // Initialize the R-shell with all F-slots and buffer slots, evenly
        // interleaved by slot rank: the i-th slot is a buffer slot when the
        // scaled counter crosses an integer. The whole population enters
        // through one bulk splice (one evenly-spread sweep when R has a
        // native bulk path) and is mirrored in stream order: the k-th
        // placement is the slot of rank k, and later in-batch moves carry
        // a placed slot's tag along with it.
        let bulk = this.shell.splice(0, r_cap);
        this.stats.init_cost += bulk.cost();
        let mut placed_idx = 0usize;
        for mv in &bulk.moves {
            if mv.from == mv.to {
                let i = placed_idx;
                placed_idx += 1;
                let is_buffer = ((i + 1) * buf_count) / r_cap != (i * buf_count) / r_cap;
                let tag = if is_buffer { SlotTag::Buf } else { SlotTag::F };
                this.tags.retag(mv.from as usize, tag);
            } else {
                this.tags.move_slot(mv.from as usize, mv.to as usize);
            }
        }
        debug_assert_eq!(placed_idx, r_cap, "init placements out of order");
        debug_assert_eq!(this.tags.f_count(), f_count);
        debug_assert_eq!(this.tags.buf_count(), buf_count);
        this
    }

    /// The instrumentation counters.
    pub fn stats(&self) -> &EmbedStats {
        &self.stats
    }

    /// Currently buffered elements (Lemma 7 metric).
    pub fn buffered(&self) -> usize {
        self.tags.buffered_real_count()
    }

    /// Is a rebuild pending?
    pub fn rebuild_pending(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// The fast/slow threshold E_R in use.
    pub fn er_budget(&self) -> f64 {
        self.er_budget
    }

    /// The simulated copy of F (read-only).
    pub fn sim(&self) -> &F {
        &self.sim
    }

    /// The R-shell (read-only).
    pub fn shell(&self) -> &R {
        &self.shell
    }

    /// The tagged array (read-only; used by the views renderer).
    pub fn tag_array(&self) -> &TagArray {
        &self.tags
    }

    /// Start recording the operation sequence fed to the R-shell. Lemma 4
    /// of the paper says this sequence is fully determined by the input and
    /// rand(F) — independent of rand(R); `shell_trace()` lets tests verify
    /// it operationally.
    pub fn enable_shell_trace(&mut self) {
        self.shell_trace = Some(Vec::new());
    }

    /// The recorded R-shell operation sequence (empty if not enabled).
    pub fn shell_trace(&self) -> &[(bool, usize)] {
        self.shell_trace.as_deref().unwrap_or(&[])
    }

    // ----- emulator motion (Figure 2) ---------------------------------------

    /// Record one deadweight displacement of buffered element `e`, now at
    /// position `pos`.
    fn note_deadweight(&mut self, e: ElemId, pos: usize) {
        self.elem_loc.insert(e, Loc::Buffer(pos));
        *self.deadweight.entry(e).or_insert(0) += 1;
        self.stats.deadweight_moves += 1;
    }

    /// Move the real element at `start` rightward so it becomes the content
    /// of F-slot `dst_fidx` — the coalesced Figure-2 mechanics. Every
    /// buffered real element strictly inside the span moves exactly once
    /// (its deadweight move) into the span's tail `(q, p_dst]`; x lands at
    /// the pivot slot `q`; O(a₁) retags keep every F-index outside the span
    /// (and x's landing index) exact. Total cost `1 + a₁`.
    fn emulator_move_right(&mut self, start: usize, dst_fidx: usize) {
        let p_dst = self.tags.f_pos(dst_fidx);
        debug_assert!(start < p_dst, "not a rightward move");
        let a1 = self.tags.buffered_reals_in(start, p_dst);
        if a1 == 0 {
            self.tags.move_content(start, p_dst);
            return;
        }
        let f_total = self.cur_f.len();
        // The pivot q: exactly a1 non-white slots lie in (q, p_dst].
        let q = self.tags.slot_pos(self.tags.slot_rank(p_dst) - a1);
        debug_assert!(q > start, "span too small for its blocking reals");
        // 1. Relocate the span's reals into the a1 tail slots (q, p_dst],
        //    order-preserving: the i-th real (by position) goes to the i-th
        //    tail slot. Right-to-left; rightward-or-stay moves only. Tail
        //    slots that were (free) F-slots become buffer slots.
        let first_real = self.tags.buffered_reals_before(start + 1);
        let tail_rank0 = self.tags.slot_rank(q) + 1;
        for i in (0..a1).rev() {
            let p = self.tags.buffered_real_pos(first_real + i).expect("real vanished");
            let slot = self.tags.slot_pos(tail_rank0 + i);
            debug_assert!(slot >= p);
            if slot != p {
                if self.tags.tag(slot) == SlotTag::F {
                    debug_assert!(!self.tags.contents.is_occupied(slot));
                    self.tags.retag(slot, SlotTag::Buf);
                }
                let e = self.tags.move_content(p, slot);
                self.note_deadweight(e, slot);
            }
        }
        // 2. Move x to the pivot; the pivot becomes an F-slot.
        self.tags.move_content(start, q);
        if self.tags.tag(q) != SlotTag::F {
            self.tags.retag(q, SlotTag::F);
        }
        // 3. Restore the F-count on dummies strictly inside (start, q):
        //    this simultaneously fixes x's landing index (= #F-tags before
        //    q) and every F-index outside the span.
        while self.tags.f_count() < f_total {
            let k = self.tags.dummies_before(q);
            debug_assert!(k > 0, "no dummy available to restore F-count");
            let dpos = self.tags.dummy_pos(k - 1).expect("dummy rank valid");
            debug_assert!(dpos > start, "restore slot outside span");
            self.tags.retag(dpos, SlotTag::F);
        }
        debug_assert_eq!(self.tags.f_count(), f_total);
        debug_assert_eq!(self.tags.f_index_of(q), dst_fidx, "landing index off");
    }

    /// Mirror image of [`Self::emulator_move_right`]: reals compact into the
    /// span's head `[p_dst, q)`, x lands at the pivot `q`, and the F-count
    /// is restored on dummies strictly inside `(q, start)`.
    fn emulator_move_left(&mut self, start: usize, dst_fidx: usize) {
        let p_dst = self.tags.f_pos(dst_fidx);
        debug_assert!(p_dst < start, "not a leftward move");
        let a1 = self.tags.buffered_reals_in(p_dst, start);
        if a1 == 0 {
            self.tags.move_content(start, p_dst);
            return;
        }
        let f_total = self.cur_f.len();
        // The pivot q: exactly a1 non-white slots lie in [p_dst, q).
        let q = self.tags.slot_pos(self.tags.slot_rank(p_dst) + a1);
        debug_assert!(q < start);
        // 1. Relocate the span's reals into the a1 head slots [p_dst, q),
        //    order-preserving, left-to-right; leftward-or-stay moves only.
        let first_real = self.tags.buffered_reals_before(p_dst);
        let head_rank0 = self.tags.slot_rank(p_dst);
        for i in 0..a1 {
            let p = self.tags.buffered_real_pos(first_real + i).expect("real vanished");
            let slot = self.tags.slot_pos(head_rank0 + i);
            debug_assert!(slot <= p);
            if slot != p {
                if self.tags.tag(slot) == SlotTag::F {
                    debug_assert!(!self.tags.contents.is_occupied(slot));
                    self.tags.retag(slot, SlotTag::Buf);
                }
                let e = self.tags.move_content(p, slot);
                self.note_deadweight(e, slot);
            }
        }
        // 2. Move x to the pivot; the pivot becomes an F-slot. (#F-tags
        //    before q is now exactly dst_fidx: the head retags removed the
        //    span's below-q F-tags, including p_dst's.)
        self.tags.move_content(start, q);
        if self.tags.tag(q) != SlotTag::F {
            self.tags.retag(q, SlotTag::F);
        }
        // 3. Restore the F-count on dummies strictly inside (q, start):
        //    above the pivot so x's landing index stays exact, inside the
        //    span so outside F-indices are unchanged.
        while self.tags.f_count() < f_total {
            let k = self.tags.dummies_before(q + 1);
            let dpos = self.tags.dummy_pos(k).expect("no dummy right of the pivot");
            debug_assert!(dpos < start || self.tags.tag(start) == SlotTag::Buf);
            debug_assert!(dpos <= start, "restore slot outside span");
            self.tags.retag(dpos, SlotTag::F);
        }
        debug_assert_eq!(self.tags.f_count(), f_total);
        debug_assert_eq!(self.tags.f_index_of(q), dst_fidx, "landing index off");
    }

    /// Relocate the `cur_f` occupant of `from_fidx` to the empty F-slot
    /// `to_fidx`: physically for live elements, bookkeeping-only for ghosts.
    fn emulator_relocate(&mut self, from_fidx: usize, to_fidx: usize) {
        if from_fidx == to_fidx {
            return;
        }
        let e = self.cur_f[from_fidx].take().expect("relocate from empty F-slot");
        self.fen_curf.add(from_fidx, -1);
        debug_assert!(self.cur_f[to_fidx].is_none(), "relocate into occupied F-slot");
        if let Some(g) = self.ghosts.get_mut(&e) {
            debug_assert_eq!(*g, from_fidx);
            *g = to_fidx;
        } else {
            let src = self.tags.f_pos(from_fidx);
            let dst = self.tags.f_pos(to_fidx);
            if src < dst {
                self.emulator_move_right(src, to_fidx);
            } else {
                self.emulator_move_left(src, to_fidx);
            }
            self.elem_loc.insert(e, Loc::F(to_fidx));
        }
        self.cur_f[to_fidx] = Some(e);
        self.fen_curf.add(to_fidx, 1);
    }

    /// Mirror the simulated copy's moves onto the physical array (fast path
    /// only: the physical F-layout matches the simulation's pre-op state).
    fn mirror_sim_moves(&mut self, rep: &OpReport) {
        for mv in &rep.moves {
            if mv.from == mv.to {
                continue; // placement, handled by the caller
            }
            self.emulator_relocate(mv.from as usize, mv.to as usize);
        }
    }

    /// Record the simulation's touched F-coordinates for the next diff.
    fn note_dirty(&mut self, rep: &OpReport) {
        for mv in &rep.moves {
            self.dirty.insert(mv.from as usize);
            self.dirty.insert(mv.to as usize);
        }
        if let Some((_, p)) = rep.placed {
            self.dirty.insert(p as usize);
        }
        if let Some((_, p)) = rep.removed {
            self.dirty.insert(p as usize);
        }
    }

    // ----- R-shell interaction ----------------------------------------------

    /// Mirror an R-shell report in stream order. Slot moves relocate tags
    /// and contents; when the report contains a placement, the placed slot
    /// is retagged `placed_tag` at its position in the stream (later moves
    /// may relocate the new slot, e.g. when the shell is itself an
    /// embedding doing rebuild work after buffering).
    /// Returns the *final* position of the placed slot (the shell may move
    /// a freshly placed slot again within the same operation, e.g. when the
    /// shell is itself an embedding doing rebuild work after buffering).
    fn mirror_shell(&mut self, rep: &OpReport, placed_tag: Option<SlotTag>) -> Option<usize> {
        let pid = rep.placed.map(|(id, _)| id);
        let mut placed_pos: Option<usize> = None;
        for mv in &rep.moves {
            if mv.from == mv.to {
                if let (Some(tag), Some(pid)) = (placed_tag, pid) {
                    if mv.elem == pid {
                        self.tags.retag(mv.from as usize, tag);
                        placed_pos = Some(mv.from as usize);
                    }
                }
                continue;
            }
            if let Some(e) = self.tags.move_slot(mv.from as usize, mv.to as usize) {
                self.stats.r_shell_moves += 1;
                if self.tags.tag(mv.to as usize) == SlotTag::Buf {
                    self.elem_loc.insert(e, Loc::Buffer(mv.to as usize));
                }
            }
            if placed_pos == Some(mv.from as usize) {
                placed_pos = Some(mv.to as usize);
            }
        }
        if let (Some(tag), Some((_, ppos))) = (placed_tag, rep.placed) {
            // Only if the placement entry never appeared in the stream
            // (all ListLabeling impls log placements; this is a fallback).
            if placed_pos.is_none() {
                self.tags.retag(ppos as usize, tag);
                placed_pos = Some(ppos as usize);
            }
        }
        placed_pos
    }

    /// Mirror an R-shell *delete* report. The shell may move the doomed
    /// slot before removing it and may move other slots into the vacated
    /// position afterwards, so the white-out is sequenced by tracking the
    /// doomed slot's position through the stream.
    fn mirror_shell_delete(&mut self, rep: &OpReport, dummy_start: usize) {
        let mut dpos = dummy_start;
        let mut whitened = false;
        for mv in &rep.moves {
            if mv.from == mv.to {
                continue;
            }
            let (from, to) = (mv.from as usize, mv.to as usize);
            if !whitened && from == dpos {
                // The doomed slot itself is being relocated (pre-removal).
                self.tags.move_slot(from, to);
                dpos = to;
                continue;
            }
            if !whitened && to == dpos {
                // Someone moves into the doomed position: the removal must
                // have happened before this move.
                self.tags.retag(dpos, SlotTag::White);
                whitened = true;
            }
            if let Some(e) = self.tags.move_slot(from, to) {
                self.stats.r_shell_moves += 1;
                if self.tags.tag(to) == SlotTag::Buf {
                    self.elem_loc.insert(e, Loc::Buffer(to));
                }
            }
        }
        if !whitened {
            debug_assert_eq!(rep.removed.map(|(_, p)| p as usize), Some(dpos));
            self.tags.retag(dpos, SlotTag::White);
        }
    }

    /// Slow-path part (a): buffer a new element in the R-shell at `rank`.
    fn buffer_insert(&mut self, rank: usize, emb_id: ElemId) -> usize {
        // (i) delete an arbitrary (nearest) dummy buffer slot via R.
        let anchor = if rank > 0 { self.tags.contents.select(rank - 1) } else { 0 };
        let dummy = match self.tags.nearest_dummy(anchor) {
            Some(d) => d,
            None => {
                // Lemma 7 says this cannot happen asymptotically; as an
                // engineering safety valve we force a full catch-up, which
                // incorporates every buffered element.
                self.stats.forced_catchups += 1;
                self.force_catch_up();
                self.tags.nearest_dummy(anchor).expect("no dummy even after full catch-up")
            }
        };
        let dummy_rank = self.tags.slot_rank(dummy);
        if let Some(t) = &mut self.shell_trace {
            t.push((false, dummy_rank));
        }
        let mut rep_d = std::mem::take(&mut self.shell_scratch);
        self.shell.delete_into(dummy_rank, &mut rep_d);
        self.mirror_shell_delete(&rep_d, dummy);
        self.shell_scratch = rep_d;
        // (ii) insert a fresh buffer slot at x's slot rank via R.
        let slot_rank = if rank == 0 {
            0
        } else {
            self.tags.slot_rank(self.tags.contents.select(rank - 1)) + 1
        };
        if let Some(t) = &mut self.shell_trace {
            t.push((true, slot_rank));
        }
        let mut rep_i = std::mem::take(&mut self.shell_scratch);
        self.shell.insert_into(slot_rank, &mut rep_i);
        let p_new = self.mirror_shell(&rep_i, Some(SlotTag::Buf)).expect("shell insert must place");
        self.shell_scratch = rep_i;
        debug_assert_eq!(self.tags.tag(p_new), SlotTag::Buf);
        // (iii) put x into the new buffer slot.
        self.tags.place_content(p_new, emb_id);
        self.elem_loc.insert(emb_id, Loc::Buffer(p_new));
        self.deadweight.insert(emb_id, 0);
        self.stats.max_buffered = self.stats.max_buffered.max(self.buffered());
        p_new
    }

    // ----- checkpoints and rebuilds (Figures 3–4) ----------------------------

    /// The embedding's element at the simulation's F-coordinate `fidx`.
    fn sim_emb_at(&self, fidx: usize) -> Option<ElemId> {
        self.sim.slots().get(fidx).map(|sid| self.sim2emb[sid.0 as usize])
    }

    /// If no rebuild is pending but the physical layout diverged from the
    /// simulation, freeze a new checkpoint (Figure 3's interval
    /// decomposition, computed from the dirty set).
    fn ensure_checkpoint(&mut self) {
        if self.checkpoint.is_some() || self.dirty.is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty);
        let mut q: Vec<usize> = Vec::with_capacity(dirty.len());
        for d in dirty {
            if self.cur_f[d] != self.sim_emb_at(d) {
                q.push(d);
            }
        }
        if q.is_empty() {
            return;
        }
        // Group dirty positions into maximal intervals separated by fixed
        // (blocking) elements.
        let mut jobs: Vec<IntervalJob> = Vec::new();
        let mut lo = q[0];
        let mut hi = q[0];
        for &d in &q[1..] {
            let blocked = self.fen_curf.range(hi + 1, d) > 0;
            if blocked {
                jobs.push(self.make_job(lo, hi));
                lo = d;
            }
            hi = d;
        }
        jobs.push(self.make_job(lo, hi));
        self.checkpoint = Some(Checkpoint { jobs, job_idx: 0 });
        self.stats.rebuilds_started += 1;
        self.rebuild_span = 0;
    }

    /// Freeze the target layout of one interval.
    fn make_job(&self, f_lo: usize, f_hi: usize) -> IntervalJob {
        let occ = self.sim.slots().occ();
        let mut targets = Vec::new();
        let mut k = occ.prefix(f_lo);
        while let Some(pos) = occ.select(k) {
            if pos > f_hi {
                break;
            }
            let e = self.sim_emb_at(pos).expect("occupied sim slot");
            targets.push((pos, e));
            k += 1;
        }
        let target_set = targets.iter().map(|&(_, e)| e).collect();
        IntervalJob {
            f_hi,
            targets,
            target_set,
            phase: 0,
            scan: f_lo,
            pack_next: f_lo,
            placed: 0,
            deferred: Vec::new(),
            placed2: 0,
        }
    }

    /// Execute pending rebuild work, spending at most `budget` physical
    /// moves (deadweight included, as the paper specifies). Completes the
    /// checkpoint and immediately freezes the next one when done.
    fn run_checkpoint(&mut self, budget: u64) {
        let Some(mut cp) = self.checkpoint.take() else { return };
        let start = self.tags.contents.lifetime_moves();
        while cp.job_idx < cp.jobs.len() {
            if self.tags.contents.lifetime_moves() - start >= budget {
                break;
            }
            let job = &mut cp.jobs[cp.job_idx];
            if job.phase == 0 {
                if job.scan > job.f_hi {
                    job.phase = 1;
                    continue;
                }
                let i = job.scan;
                job.scan += 1;
                if let Some(e) = self.cur_f[i] {
                    let dead = !self.elem_loc.contains_key(&e);
                    if dead && !job.target_set.contains(&e) {
                        // Drop a ghost that the checkpoint no longer holds.
                        self.cur_f[i] = None;
                        self.fen_curf.add(i, -1);
                        self.ghosts.remove(&e);
                        continue;
                    }
                    let dest = job.pack_next;
                    job.pack_next += 1;
                    let _ = job;
                    self.emulator_relocate(i, dest);
                }
            } else if job.phase == 1 {
                if job.placed >= job.targets.len() {
                    job.phase = 2;
                    continue;
                }
                let idx = job.targets.len() - 1 - job.placed;
                let (t_fidx, e) = job.targets[idx];
                job.placed += 1;
                // Defer buffered elements whose slot is right of their
                // target: incorporating them leftward now would park their
                // crossed deadweight into the path of the next leftward
                // incorporation (re-crossing). They run in ascending order
                // in phase 2 instead.
                if let Some(Loc::Buffer(pos)) = self.elem_loc.get(&e).copied() {
                    if pos > self.tags.f_pos(t_fidx) {
                        job.deferred.push((t_fidx, e));
                        continue;
                    }
                }
                let _ = job;
                self.place_target(t_fidx, e);
            } else {
                if job.placed2 >= job.deferred.len() {
                    cp.job_idx += 1;
                    continue;
                }
                // deferred was pushed in descending target order; consume
                // from the back for ascending incorporation.
                let idx = job.deferred.len() - 1 - job.placed2;
                let (t_fidx, e) = job.deferred[idx];
                job.placed2 += 1;
                let _ = job;
                self.place_target(t_fidx, e);
            }
        }
        if cp.job_idx >= cp.jobs.len() {
            self.stats.rebuilds_completed += 1;
            self.stats.max_rebuild_span = self.stats.max_rebuild_span.max(self.rebuild_span);
            self.checkpoint = None;
            // Paper step (b)(iii): freeze the next checkpoint immediately.
            self.ensure_checkpoint();
        } else {
            self.checkpoint = Some(cp);
        }
    }

    /// Phase-1 placement of one checkpoint target (rightward placement /
    /// incorporation of Figure 4).
    fn place_target(&mut self, t_fidx: usize, e: ElemId) {
        match self.elem_loc.get(&e).copied() {
            Some(Loc::F(fidx)) => {
                self.emulator_relocate(fidx, t_fidx);
            }
            Some(Loc::Buffer(pos)) => {
                // Incorporation: the buffer slot stays a buffer slot (it
                // becomes a dummy); the element enters A_F.
                let p_dst = self.tags.f_pos(t_fidx);
                if pos < p_dst {
                    self.emulator_move_right(pos, t_fidx);
                } else {
                    self.emulator_move_left(pos, t_fidx);
                }
                self.elem_loc.insert(e, Loc::F(t_fidx));
                debug_assert!(self.cur_f[t_fidx].is_none());
                self.cur_f[t_fidx] = Some(e);
                self.fen_curf.add(t_fidx, 1);
                self.stats.incorporations += 1;
                if let Some(d) = self.deadweight.remove(&e) {
                    self.stats.record_deadweight(d);
                }
            }
            None => {
                if self.pending_insert == Some(e) {
                    // The in-flight insertion: it exists in the simulation
                    // but has no physical slot yet. Leave its target to the
                    // next checkpoint (re-mark it dirty so that checkpoint
                    // is created).
                    self.dirty.insert(t_fidx);
                    return;
                }
                // Deleted element that the frozen checkpoint still contains.
                if let Some(&g) = self.ghosts.get(&e) {
                    self.emulator_relocate(g, t_fidx);
                } else {
                    // Deleted while buffered: materialize as a ghost.
                    debug_assert!(self.cur_f[t_fidx].is_none());
                    self.cur_f[t_fidx] = Some(e);
                    self.fen_curf.add(t_fidx, 1);
                    self.ghosts.insert(e, t_fidx);
                    if let Some(d) = self.deadweight.remove(&e) {
                        self.stats.record_deadweight(d);
                    }
                }
            }
        }
    }

    /// Slow-path part (b): Θ(E_R) rebuild work, plus the paper's steps
    /// (ii)–(iv) (finish rebuilds that have < E_R work left, so a pending
    /// rebuild always has Ω(E_R) work remaining).
    fn rebuild_work(&mut self) {
        self.ensure_checkpoint();
        self.run_checkpoint(self.rebuild_budget);
        for _ in 0..4 {
            match &self.checkpoint {
                Some(cp) if (cp.planned_remaining() as f64) < self.er_budget => {
                    self.run_checkpoint(u64::MAX);
                }
                _ => break,
            }
        }
    }

    /// Complete every pending rebuild (and the next, which incorporates all
    /// still-buffered elements).
    fn force_catch_up(&mut self) {
        self.ensure_checkpoint();
        self.run_checkpoint(u64::MAX);
        self.ensure_checkpoint();
        self.run_checkpoint(u64::MAX);
        debug_assert_eq!(self.buffered(), 0, "catch-up left buffered elements");
    }

    /// Test/diagnostic invariant audit (O(m); not used on hot paths).
    pub fn check_invariants(&self) {
        self.tags.check_consistent();
        // Physical F contents agree with cur_f minus ghosts.
        for fidx in 0..self.cur_f.len() {
            let pos = self.tags.f_pos(fidx);
            let phys = self.tags.contents.get(pos);
            match self.cur_f[fidx] {
                Some(e) if self.ghosts.contains_key(&e) => {
                    assert_eq!(phys, None, "ghost slot {fidx} has physical content");
                }
                Some(e) => {
                    assert_eq!(phys, Some(e), "F-slot {fidx} content mismatch");
                    assert_eq!(self.elem_loc.get(&e), Some(&Loc::F(fidx)));
                }
                None => assert_eq!(phys, None, "free F-slot {fidx} has content"),
            }
        }
        // Buffered elements agree with elem_loc.
        for (&e, &loc) in &self.elem_loc {
            if let Loc::Buffer(pos) = loc {
                assert_eq!(self.tags.contents.get(pos), Some(e));
                assert_eq!(self.tags.tag(pos), SlotTag::Buf);
            }
        }
        // No pending rebuild ⟹ fully caught up (Lemma 10's precondition).
        if self.checkpoint.is_none() && self.dirty.is_empty() {
            assert_eq!(self.buffered(), 0, "caught up but elements still buffered");
            assert!(self.ghosts.is_empty(), "caught up but ghosts remain");
        }
    }
}

impl<F: ListLabeling, R: ListLabeling> ListLabeling for Embed<F, R> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_slots(&self) -> usize {
        self.tags.num_slots()
    }

    fn len(&self) -> usize {
        self.tags.contents.len()
    }

    fn insert(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.insert_into(rank, &mut out);
        out
    }

    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank <= len, "insert rank {rank} > len {len}");
        assert!(len < self.capacity, "at capacity");
        if self.checkpoint.is_some() {
            self.rebuild_span += 1;
        }
        let mut sim_rep = std::mem::take(&mut self.sim_scratch);
        self.sim.insert_into(rank, &mut sim_rep);
        let c_e = sim_rep.cost();
        let (sim_id, sim_fidx) = sim_rep.placed.expect("sim insert must place");
        debug_assert_eq!(sim_id.0 as usize, self.sim2emb.len(), "sim ids must be dense");
        let emb_id = self.ids.fresh();
        self.sim2emb.push(emb_id);
        let placed_pos;
        if self.checkpoint.is_none() && (c_e as f64) <= self.er_budget {
            // Fast path: emulate F directly, interleaving the placement at
            // its position in the simulation's move stream (a simulated F
            // that is itself an embedding places mid-operation and may move
            // the new element again before the operation ends).
            self.stats.fast_ops += 1;
            debug_assert_eq!(self.buffered(), 0);
            let mut placed = false;
            for mv in &sim_rep.moves {
                if mv.from == mv.to {
                    if mv.elem == sim_id {
                        let fidx = mv.from as usize;
                        let pos = self.tags.f_pos(fidx);
                        self.tags.place_content(pos, emb_id);
                        self.cur_f[fidx] = Some(emb_id);
                        self.fen_curf.add(fidx, 1);
                        self.elem_loc.insert(emb_id, Loc::F(fidx));
                        placed = true;
                    }
                    continue;
                }
                self.emulator_relocate(mv.from as usize, mv.to as usize);
            }
            if !placed {
                // Fallback for simulations that do not log placements.
                let fidx = sim_fidx as usize;
                let pos = self.tags.f_pos(fidx);
                self.tags.place_content(pos, emb_id);
                self.cur_f[fidx] = Some(emb_id);
                self.fen_curf.add(fidx, 1);
                self.elem_loc.insert(emb_id, Loc::F(fidx));
            }
            let fidx_now = match self.elem_loc[&emb_id] {
                Loc::F(f) => f,
                Loc::Buffer(_) => unreachable!("fast path cannot buffer"),
            };
            placed_pos = self.tags.f_pos(fidx_now);
        } else {
            // Slow path: buffer in the R-shell, then do rebuild work. The
            // rebuild may incorporate the fresh element immediately, so the
            // reported placement is its final slot at the end of the op.
            self.stats.slow_ops += 1;
            self.note_dirty(&sim_rep);
            self.pending_insert = Some(emb_id);
            self.buffer_insert(rank, emb_id);
            self.pending_insert = None;
            self.rebuild_work();
            placed_pos = match self.elem_loc[&emb_id] {
                Loc::F(f) => self.tags.f_pos(f),
                Loc::Buffer(p) => p,
            };
        }
        self.sim_scratch = sim_rep;
        self.tags.contents.drain_log_into(&mut out.moves);
        out.placed = Some((emb_id, placed_pos as u32));
    }

    /// Native bulk insert: complete any pending rebuild so the physical
    /// array mirrors the simulation exactly (the fast-path precondition),
    /// run the simulation's own [`splice`](ListLabeling::splice) — one
    /// evenly-spread sweep when `F` is a PMA skeleton — and mirror its
    /// move log 1:1, exactly as the fast path does per operation. With no
    /// buffered elements there is no deadweight, so the physical cost
    /// equals the simulation's: the batch inherits `F`'s O(1)-per-element
    /// bulk bound instead of paying `count` full operations.
    fn splice(&mut self, rank: usize, count: usize) -> BulkReport {
        let len = self.len();
        assert!(rank <= len, "splice rank {rank} > len {len}");
        assert!(len + count <= self.capacity, "splice of {count} overflows capacity");
        if count == 0 {
            return BulkReport::default();
        }
        if count == 1 {
            let mut bulk = BulkReport::default();
            bulk.absorb_op(self.insert(rank));
            return bulk;
        }
        // Catch-up moves are part of the batch: they are drained into the
        // same report below.
        self.force_catch_up();
        debug_assert_eq!(self.buffered(), 0);
        debug_assert!(self.ghosts.is_empty());
        let sim_bulk = self.sim.splice(rank, count);
        self.stats.fast_ops += count as u64;
        for mv in &sim_bulk.moves {
            if mv.from == mv.to {
                // Placement of a new simulation element (sim ids are dense).
                debug_assert_eq!(mv.elem.0 as usize, self.sim2emb.len());
                let fidx = mv.from as usize;
                let emb_id = self.ids.fresh();
                self.sim2emb.push(emb_id);
                let pos = self.tags.f_pos(fidx);
                self.tags.place_content(pos, emb_id);
                self.cur_f[fidx] = Some(emb_id);
                self.fen_curf.add(fidx, 1);
                self.elem_loc.insert(emb_id, Loc::F(fidx));
            } else {
                self.emulator_relocate(mv.from as usize, mv.to as usize);
            }
        }
        let placed = sim_bulk.placed.iter().map(|sid| self.sim2emb[sid.0 as usize]).collect();
        BulkReport { moves: self.tags.contents.drain_log(), placed }
    }

    fn delete(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.delete_into(rank, &mut out);
        out
    }

    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank < len, "delete rank {rank} >= len {len}");
        if self.checkpoint.is_some() {
            self.rebuild_span += 1;
        }
        let pos = self.tags.contents.select(rank);
        let e = self.tags.contents.get(pos).expect("selected slot empty");
        let mut sim_rep = std::mem::take(&mut self.sim_scratch);
        self.sim.delete_into(rank, &mut sim_rep);
        let c_e = sim_rep.cost();
        debug_assert_eq!(
            sim_rep.removed.map(|(sid, _)| self.sim2emb[sid.0 as usize]),
            Some(e),
            "sim deleted a different element"
        );
        let loc = self.elem_loc.remove(&e).expect("deleting unknown element");
        if self.checkpoint.is_none() && (c_e as f64) <= self.er_budget {
            // Fast path.
            self.stats.fast_ops += 1;
            let Loc::F(fidx) = loc else { unreachable!("buffered element on fast path") };
            self.tags.remove_content(pos);
            self.cur_f[fidx] = None;
            self.fen_curf.add(fidx, -1);
            self.mirror_sim_moves(&sim_rep);
        } else {
            // Slow path: remove physically, leave a ghost if it was in A_F.
            self.stats.slow_ops += 1;
            self.note_dirty(&sim_rep);
            self.tags.remove_content(pos);
            match loc {
                Loc::F(fidx) => {
                    self.ghosts.insert(e, fidx);
                }
                Loc::Buffer(_) => {
                    if let Some(d) = self.deadweight.remove(&e) {
                        self.stats.record_deadweight(d);
                    }
                }
            }
            self.rebuild_work();
        }
        self.sim_scratch = sim_rep;
        self.tags.contents.drain_log_into(&mut out.moves);
        out.removed = Some((e, pos as u32));
    }

    fn slots(&self) -> &SlotArray {
        &self.tags.contents
    }

    fn set_metrics(&mut self, metrics: lll_core::metrics::MetricsHandle) {
        // One handle observes the whole composition: the physical tag
        // array plus both constituent structures (Theorem 3 nests another
        // Embed here, so the install recurses through every layer).
        self.tags.contents.set_metrics(metrics.clone());
        self.sim.set_metrics(metrics.clone());
        self.shell.set_metrics(metrics);
    }

    fn name(&self) -> &'static str {
        "embed"
    }
}

/// Builder for [`Embed`], wiring the paper's §3 slot budgets: the
/// F-emulator gets `(1+ε)n` slots, the shell capacity `(1+2ε)n` on all
/// `m ≥ (1+3ε)n` slots.
#[derive(Clone, Debug)]
pub struct EmbedBuilder<FB, RB> {
    /// Builder for the fast structure F.
    pub f: FB,
    /// Builder for the reliable structure R.
    pub r: RB,
    /// Embedding parameters.
    pub cfg: EmbedConfig,
}

impl<FB: LabelingBuilder, RB: LabelingBuilder> EmbedBuilder<FB, RB> {
    /// Builder with default configuration.
    pub fn new(f: FB, r: RB) -> Self {
        Self { f, r, cfg: EmbedConfig::default() }
    }
}

impl<FB: LabelingBuilder, RB: LabelingBuilder> LabelingBuilder for EmbedBuilder<FB, RB> {
    type Structure = Embed<FB::Structure, RB::Structure>;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        let eps_n = ((capacity as f64 * self.cfg.epsilon).ceil() as usize).max(1);
        // F gets (1+ε)n slots, or more if F itself needs extra slack (e.g.
        // when F is another embedding).
        let f_slots =
            (capacity + eps_n).max((capacity as f64 * self.f.min_slack()).ceil() as usize + 1);
        let r_cap = f_slots + eps_n;
        assert!(
            num_slots >= r_cap + eps_n,
            "embedding needs ≥ {} slots for n={capacity}, ε={}: got m={num_slots}",
            r_cap + eps_n,
            self.cfg.epsilon
        );
        let sim = self.f.build(capacity, f_slots);
        let shell = self.r.build(r_cap, num_slots);
        let er = self.r.expected_cost_hint(r_cap) * self.cfg.er_mult;
        Embed::new(capacity, sim, shell, er, self.cfg.rebuild_mult)
    }

    fn min_slack(&self) -> f64 {
        // F's slot share (≥ 1+ε), plus a buffer and a free share of ε each,
        // and enough total room for R's own slack at capacity (1+2ε)n.
        let eps = self.cfg.epsilon;
        let f_share = (1.0 + eps).max(self.f.min_slack() + 0.01);
        let own = f_share + 2.0 * eps;
        let r_need = self.r.min_slack() * (f_share + eps);
        own.max(r_need) + 0.02
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        // The embedding's good-case guarantee tracks F (Theorem 2); when the
        // result is used as an R, its lightly-amortized expected cost is
        // F's input-independent bound.
        self.f.expected_cost_hint(capacity)
    }

    fn worst_case_hint(&self, capacity: usize) -> f64 {
        // Worst case tracks R (Theorem 2), plus the Θ(E_R) rebuild work.
        self.r.worst_case_hint(capacity)
            + self.cfg.rebuild_mult * self.r.expected_cost_hint(capacity)
    }
}
