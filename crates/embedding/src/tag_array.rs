//! The embedding's slot taxonomy (Figure 1 of the paper).
//!
//! The physical array `A` of the embedding `F ⊳ R` has three kinds of
//! slots:
//!
//! * **F-slots** (blue) — the slots of the F-emulator's array `A_F`. The
//!   i-th F-slot (in position order) is F-coordinate `i`. May be occupied
//!   or free; from the R-shell's view they are always occupied.
//! * **Buffer slots** (green) — R-shell slots holding either a buffered
//!   real element or a *buffer dummy*. Also always occupied in R's view.
//! * **R-empty slots** (white) — the only slots R considers free.
//!
//! [`TagArray`] maintains the tags, the real-element contents (a
//! [`SlotArray`], so every physical move is order-checked and cost-logged),
//! and four Fenwick indexes for O(log m) navigation between the three
//! coordinate systems (positions, F-indices, R-slot-ranks).

use lll_core::fenwick::Fenwick;
use lll_core::ids::ElemId;
use lll_core::slot_array::SlotArray;

/// A slot's tag in the embedding's taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotTag {
    /// R-empty (white): free from the R-shell's perspective.
    White,
    /// F-emulator slot (blue).
    F,
    /// R-shell buffer slot (green).
    Buf,
}

/// The tagged physical array of the embedding.
#[derive(Clone, Debug)]
pub struct TagArray {
    tags: Vec<SlotTag>,
    /// Real-element contents; all physical motion flows through this.
    pub contents: SlotArray,
    /// Marked ⟺ tag ≠ White.
    fen_nonwhite: Fenwick,
    /// Marked ⟺ tag == F.
    fen_f: Fenwick,
    /// Marked ⟺ tag == Buf and the slot holds a real element.
    fen_bufreal: Fenwick,
    /// Marked ⟺ tag == Buf and the slot is a dummy.
    fen_bufdummy: Fenwick,
}

impl TagArray {
    /// All-white array of `m` slots.
    pub fn new(m: usize) -> Self {
        Self {
            tags: vec![SlotTag::White; m],
            contents: SlotArray::new(m),
            fen_nonwhite: Fenwick::new(m),
            fen_f: Fenwick::new(m),
            fen_bufreal: Fenwick::new(m),
            fen_bufdummy: Fenwick::new(m),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.tags.len()
    }

    /// The tag at `pos`.
    #[inline]
    pub fn tag(&self, pos: usize) -> SlotTag {
        self.tags[pos]
    }

    /// Count of F-slots.
    pub fn f_count(&self) -> usize {
        self.fen_f.total() as usize
    }

    /// Count of buffer slots (dummy + real).
    pub fn buf_count(&self) -> usize {
        (self.fen_bufreal.total() + self.fen_bufdummy.total()) as usize
    }

    /// Count of buffer slots holding real elements.
    pub fn buffered_real_count(&self) -> usize {
        self.fen_bufreal.total() as usize
    }

    /// Count of dummy buffer slots.
    pub fn buf_dummy_count(&self) -> usize {
        self.fen_bufdummy.total() as usize
    }

    // ----- coordinate translations -----------------------------------------

    /// Physical position of F-coordinate `fidx`.
    #[inline]
    pub fn f_pos(&self, fidx: usize) -> usize {
        self.fen_f.select(fidx as u64).expect("F-index out of range")
    }

    /// F-coordinate of the F-slot at `pos` (which must be an F-slot).
    #[inline]
    pub fn f_index_of(&self, pos: usize) -> usize {
        debug_assert_eq!(self.tags[pos], SlotTag::F);
        self.fen_f.prefix(pos) as usize
    }

    /// Number of F-slots at positions strictly before `pos`.
    #[inline]
    pub fn f_tags_before(&self, pos: usize) -> usize {
        self.fen_f.prefix(pos) as usize
    }

    /// R-slot-rank of the non-white slot at `pos` (number of non-white
    /// slots strictly before it).
    #[inline]
    pub fn slot_rank(&self, pos: usize) -> usize {
        self.fen_nonwhite.prefix(pos) as usize
    }

    /// Position of the slot with R-slot-rank `rank`.
    #[inline]
    pub fn slot_pos(&self, rank: usize) -> usize {
        self.fen_nonwhite.select(rank as u64).expect("slot rank out of range")
    }

    /// First buffered real element strictly inside `(a, b)`, if any.
    pub fn first_buffered_real_in(&self, a: usize, b: usize) -> Option<usize> {
        if a + 1 >= b {
            return None;
        }
        let before = self.fen_bufreal.prefix(a + 1);
        let pos = self.fen_bufreal.select(before)?;
        (pos < b).then_some(pos)
    }

    /// Last buffered real element strictly inside `(a, b)`, if any.
    pub fn last_buffered_real_in(&self, a: usize, b: usize) -> Option<usize> {
        if a + 1 >= b {
            return None;
        }
        let upto = self.fen_bufreal.prefix(b);
        if upto == 0 {
            return None;
        }
        let pos = self.fen_bufreal.select(upto - 1)?;
        (pos > a).then_some(pos)
    }

    /// Count of buffered real elements strictly inside `(a, b)`.
    pub fn buffered_reals_in(&self, a: usize, b: usize) -> usize {
        if a + 1 >= b {
            return 0;
        }
        self.fen_bufreal.range(a + 1, b) as usize
    }

    /// Number of dummy buffer slots at positions strictly before `pos`.
    #[inline]
    pub fn dummies_before(&self, pos: usize) -> usize {
        self.fen_bufdummy.prefix(pos) as usize
    }

    /// Position of the `k`-th (0-based) dummy buffer slot.
    #[inline]
    pub fn dummy_pos(&self, k: usize) -> Option<usize> {
        self.fen_bufdummy.select(k as u64)
    }

    /// Number of buffered real elements at positions strictly before `pos`.
    #[inline]
    pub fn buffered_reals_before(&self, pos: usize) -> usize {
        self.fen_bufreal.prefix(pos) as usize
    }

    /// Position of the `k`-th (0-based) buffered real element.
    #[inline]
    pub fn buffered_real_pos(&self, k: usize) -> Option<usize> {
        self.fen_bufreal.select(k as u64)
    }

    /// The dummy buffer slot nearest to `pos` **in slot-rank (truncated
    /// state) distance**, if any.
    ///
    /// The distance must be measured in the space of non-white slots, not
    /// physical slots: physical gaps depend on where the R-shell keeps its
    /// free slots, i.e. on rand(R). Choosing by physical distance would
    /// leak R's randomness back into the operation sequence fed to R,
    /// violating Lemma 4 (the embedding's tests verify this operationally).
    pub fn nearest_dummy(&self, pos: usize) -> Option<usize> {
        let total = self.fen_bufdummy.total();
        if total == 0 {
            return None;
        }
        let k = self.fen_bufdummy.prefix(pos);
        let right = if k < total { self.fen_bufdummy.select(k) } else { None };
        let left = if k > 0 { self.fen_bufdummy.select(k - 1) } else { None };
        match (left, right) {
            (Some(l), Some(r)) => {
                let sr = self.slot_rank(pos);
                let dl = sr - self.slot_rank(l); // left dummy is before pos
                let dr = self.slot_rank(r) - sr;
                Some(if dl <= dr { l } else { r })
            }
            (l, r) => l.or(r),
        }
    }

    /// Next non-white position strictly after `pos`.
    #[inline]
    pub fn next_nonwhite(&self, pos: usize) -> Option<usize> {
        self.fen_nonwhite.next_marked_at_or_after(pos + 1)
    }

    /// Previous non-white position strictly before `pos`.
    #[inline]
    pub fn prev_nonwhite(&self, pos: usize) -> Option<usize> {
        if pos == 0 {
            None
        } else {
            self.fen_nonwhite.prev_marked_at_or_before(pos - 1)
        }
    }

    // ----- mutations ---------------------------------------------------------

    /// Change the tag at `pos`, updating all indexes. The slot's content (if
    /// any) is untouched; callers must keep content/tag compatible (real
    /// content on White is illegal).
    pub fn retag(&mut self, pos: usize, new: SlotTag) {
        let old = self.tags[pos];
        if old == new {
            return;
        }
        let occupied = self.contents.is_occupied(pos);
        match old {
            SlotTag::White => {}
            SlotTag::F => {
                self.fen_f.add(pos, -1);
                self.fen_nonwhite.add(pos, -1);
            }
            SlotTag::Buf => {
                self.fen_nonwhite.add(pos, -1);
                if occupied {
                    self.fen_bufreal.add(pos, -1);
                } else {
                    self.fen_bufdummy.add(pos, -1);
                }
            }
        }
        match new {
            SlotTag::White => {
                debug_assert!(!occupied, "cannot whiten an occupied slot");
            }
            SlotTag::F => {
                self.fen_f.add(pos, 1);
                self.fen_nonwhite.add(pos, 1);
            }
            SlotTag::Buf => {
                self.fen_nonwhite.add(pos, 1);
                if occupied {
                    self.fen_bufreal.add(pos, 1);
                } else {
                    self.fen_bufdummy.add(pos, 1);
                }
            }
        }
        self.tags[pos] = new;
    }

    /// Move a whole slot (tag + content) from `from` to the white slot `to`
    /// — this is what mirroring an R-shell move does. Returns the moved
    /// element if the slot was occupied (cost 1) or `None` (dummy/free slot,
    /// cost 0).
    pub fn move_slot(&mut self, from: usize, to: usize) -> Option<ElemId> {
        debug_assert_ne!(self.tags[from], SlotTag::White, "moving a white slot");
        debug_assert_eq!(self.tags[to], SlotTag::White, "target of slot move not white");
        let tag = self.tags[from];
        let elem = if self.contents.is_occupied(from) {
            // The content move is order-safe: R only moves its elements
            // across its own free (white) slots, which hold no content.
            Some(self.contents.move_elem(from, to))
        } else {
            None
        };
        // The content has left `from`; reconcile the buffered-real index
        // before retagging (retag reads current occupancy).
        if tag == SlotTag::Buf && elem.is_some() {
            self.fen_bufreal.add(from, -1);
            self.fen_bufdummy.add(from, 1);
        }
        self.retag(from, SlotTag::White);
        self.retag(to, tag);
        elem
    }

    /// Move real content between two non-white slots (emulator motion).
    /// Fenwick indexes for buffered-real/dummy tracking are updated from
    /// the tags at both endpoints.
    pub fn move_content(&mut self, from: usize, to: usize) -> ElemId {
        debug_assert_ne!(self.tags[from], SlotTag::White);
        debug_assert_ne!(self.tags[to], SlotTag::White);
        if self.tags[from] == SlotTag::Buf {
            self.fen_bufreal.add(from, -1);
            self.fen_bufdummy.add(from, 1);
        }
        let e = self.contents.move_elem(from, to);
        if self.tags[to] == SlotTag::Buf {
            self.fen_bufreal.add(to, 1);
            self.fen_bufdummy.add(to, -1);
        }
        e
    }

    /// Place a new element (cost 1) into an empty non-white slot.
    pub fn place_content(&mut self, pos: usize, elem: ElemId) {
        debug_assert_ne!(self.tags[pos], SlotTag::White);
        self.contents.place(pos, elem);
        if self.tags[pos] == SlotTag::Buf {
            self.fen_bufreal.add(pos, 1);
            self.fen_bufdummy.add(pos, -1);
        }
    }

    /// Remove the element at `pos` (cost 0).
    pub fn remove_content(&mut self, pos: usize) -> ElemId {
        let e = self.contents.remove(pos);
        if self.tags[pos] == SlotTag::Buf {
            self.fen_bufreal.add(pos, -1);
            self.fen_bufdummy.add(pos, 1);
        }
        e
    }

    /// Full consistency audit (tests only): every index agrees with tags
    /// and contents.
    pub fn check_consistent(&self) {
        self.contents.check_consistent();
        for pos in 0..self.tags.len() {
            let t = self.tags[pos];
            let occ = self.contents.is_occupied(pos);
            assert_eq!(self.fen_nonwhite.range(pos, pos + 1) == 1, t != SlotTag::White);
            assert_eq!(self.fen_f.range(pos, pos + 1) == 1, t == SlotTag::F);
            assert_eq!(
                self.fen_bufreal.range(pos, pos + 1) == 1,
                t == SlotTag::Buf && occ,
                "bufreal mismatch at {pos}"
            );
            assert_eq!(
                self.fen_bufdummy.range(pos, pos + 1) == 1,
                t == SlotTag::Buf && !occ,
                "bufdummy mismatch at {pos}"
            );
            if t == SlotTag::White {
                assert!(!occ, "white slot {pos} holds content");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ids::IdGen;

    fn tagged(pattern: &[(usize, SlotTag)], m: usize) -> TagArray {
        let mut t = TagArray::new(m);
        for &(pos, tag) in pattern {
            t.retag(pos, tag);
        }
        t
    }

    #[test]
    fn coordinate_translations() {
        use SlotTag::*;
        let t = tagged(&[(0, F), (2, Buf), (3, F), (5, F), (7, Buf)], 9);
        assert_eq!(t.f_count(), 3);
        assert_eq!(t.buf_count(), 2);
        assert_eq!(t.f_pos(0), 0);
        assert_eq!(t.f_pos(1), 3);
        assert_eq!(t.f_pos(2), 5);
        assert_eq!(t.f_index_of(5), 2);
        assert_eq!(t.slot_rank(3), 2);
        assert_eq!(t.slot_pos(4), 7);
        assert_eq!(t.next_nonwhite(3), Some(5));
        assert_eq!(t.prev_nonwhite(3), Some(2));
        assert_eq!(t.prev_nonwhite(0), None);
    }

    #[test]
    fn buffered_real_tracking() {
        use SlotTag::*;
        let mut t = tagged(&[(0, F), (2, Buf), (4, Buf), (6, F)], 8);
        let mut ids = IdGen::new();
        assert_eq!(t.buf_dummy_count(), 2);
        let e = ids.fresh();
        t.place_content(2, e);
        assert_eq!(t.buffered_real_count(), 1);
        assert_eq!(t.buf_dummy_count(), 1);
        assert_eq!(t.first_buffered_real_in(0, 6), Some(2));
        assert_eq!(t.last_buffered_real_in(0, 6), Some(2));
        assert_eq!(t.buffered_reals_in(0, 6), 1);
        assert_eq!(t.buffered_reals_in(2, 6), 0); // strictly inside
                                                  // move content to the other buffer slot
        t.move_content(2, 4);
        assert_eq!(t.first_buffered_real_in(0, 6), Some(4));
        t.check_consistent();
        // remove makes it a dummy again
        t.remove_content(4);
        assert_eq!(t.buffered_real_count(), 0);
        assert_eq!(t.buf_dummy_count(), 2);
        t.check_consistent();
    }

    #[test]
    fn nearest_dummy_picks_closest() {
        use SlotTag::*;
        let mut t = tagged(&[(1, Buf), (5, Buf), (9, Buf)], 10);
        assert_eq!(t.nearest_dummy(0), Some(1));
        assert_eq!(t.nearest_dummy(4), Some(5));
        assert_eq!(t.nearest_dummy(8), Some(9));
        let mut ids = IdGen::new();
        t.place_content(5, ids.fresh());
        assert_eq!(t.nearest_dummy(4), Some(1)); // 5 no longer a dummy
    }

    #[test]
    fn move_slot_carries_tag_and_content() {
        use SlotTag::*;
        let mut t = tagged(&[(2, Buf), (4, F)], 8);
        let mut ids = IdGen::new();
        let e = ids.fresh();
        t.place_content(2, e);
        // mirror an R move of the buffer slot from 2 to 3
        let moved = t.move_slot(2, 3);
        assert_eq!(moved, Some(e));
        assert_eq!(t.tag(2), White);
        assert_eq!(t.tag(3), Buf);
        assert_eq!(t.buffered_real_count(), 1);
        // moving the F slot (free): zero cost, tag travels
        let before = t.contents.lifetime_moves();
        assert_eq!(t.move_slot(4, 6), None);
        assert_eq!(t.contents.lifetime_moves(), before);
        assert_eq!(t.tag(6), F);
        t.check_consistent();
    }

    #[test]
    fn retag_respects_content() {
        use SlotTag::*;
        let mut t = tagged(&[(0, Buf)], 4);
        let mut ids = IdGen::new();
        t.place_content(0, ids.fresh());
        // Buf(real) -> F: bufreal count drops
        t.retag(0, F);
        assert_eq!(t.buffered_real_count(), 0);
        assert_eq!(t.f_count(), 1);
        t.check_consistent();
    }
}
