//! Property-based tests for the embedding: arbitrary valid operation
//! sequences must preserve every structural invariant the paper's analysis
//! relies on — not just on curated workloads.

use crate::embed::{EmbedBuilder, EmbedConfig};
use lll_adaptive::AdaptiveBuilder;
use lll_classic::ClassicBuilder;
use lll_core::ops::Op;
use lll_core::testkit::Oracle;
use lll_core::traits::{LabelingBuilder, ListLabeling};
use lll_deamortized::DeamortizedBuilder;
use lll_randomized::RandomizedBuilder;
use proptest::prelude::*;

/// Decode raw bytes into a valid op sequence (biased toward inserts).
fn decode_ops(raw: &[(u8, u32)], cap: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(raw.len());
    let mut len = 0usize;
    for &(b, r) in raw {
        let insert = len == 0 || (len < cap && b % 4 != 0);
        if insert {
            ops.push(Op::Insert(r as usize % (len + 1)));
            len += 1;
        } else {
            ops.push(Op::Delete(r as usize % len));
            len -= 1;
        }
    }
    ops
}

fn raw_seq(len: usize) -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((any::<u8>(), any::<u32>()), len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Oracle agreement + full invariant audit for adaptive ⊳ classic.
    #[test]
    fn adaptive_in_classic_holds_invariants(raw in raw_seq(300)) {
        let cap = 80;
        let ops = decode_ops(&raw, cap);
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut e = b.build_default(cap);
        let mut oracle = Oracle::new();
        for (i, &op) in ops.iter().enumerate() {
            let rep = e.apply(op);
            match op {
                Op::Insert(r) => oracle.insert(r, rep.placed.unwrap().0),
                Op::Delete(r) => oracle.delete(r, rep.removed.unwrap().0),
            }
            if i % 37 == 0 {
                oracle.check(&e);
            }
        }
        oracle.check(&e);
        e.check_invariants();
        prop_assert!(e.stats().max_deadweight <= 4, "Lemma 5: {}", e.stats().max_deadweight);
    }

    /// The Corollary-11 shape (randomized ⊳ deamortized) under arbitrary ops.
    #[test]
    fn randomized_in_deamortized_holds_invariants(raw in raw_seq(250), seed in any::<u64>()) {
        let cap = 60;
        let ops = decode_ops(&raw, cap);
        let b = EmbedBuilder {
            f: RandomizedBuilder::with_seed(seed),
            r: DeamortizedBuilder::default(),
            cfg: EmbedConfig { epsilon: 1.0 / 4.0, ..Default::default() },
        };
        let mut e = b.build_default(cap);
        let mut oracle = Oracle::new();
        for &op in &ops {
            let rep = e.apply(op);
            match op {
                Op::Insert(r) => oracle.insert(r, rep.placed.unwrap().0),
                Op::Delete(r) => oracle.delete(r, rep.removed.unwrap().0),
            }
        }
        oracle.check(&e);
        e.check_invariants();
        prop_assert_eq!(e.stats().forced_catchups, 0);
    }

    /// Slot-count conservation is an absolute invariant of the taxonomy.
    #[test]
    fn slot_taxonomy_conserved(raw in raw_seq(200)) {
        let cap = 64;
        let ops = decode_ops(&raw, cap);
        let b = EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder);
        let mut e = b.build_default(cap);
        let (f0, b0) = (e.tag_array().f_count(), e.tag_array().buf_count());
        for &op in &ops {
            e.apply(op);
            prop_assert_eq!(e.tag_array().f_count(), f0);
            prop_assert_eq!(e.tag_array().buf_count(), b0);
        }
    }

    /// Extreme budget configurations stay correct: er_mult → 0 forces
    /// (almost) every op onto the slow path; a huge er_mult forces the fast
    /// path whenever no rebuild is pending.
    #[test]
    fn budget_extremes_stay_correct(raw in raw_seq(150), tiny in any::<bool>()) {
        let cap = 50;
        let ops = decode_ops(&raw, cap);
        let cfg = if tiny {
            EmbedConfig { er_mult: 0.01, ..Default::default() }
        } else {
            EmbedConfig { er_mult: 1e6, ..Default::default() }
        };
        let b = EmbedBuilder { f: AdaptiveBuilder::default(), r: ClassicBuilder, cfg };
        let mut e = b.build_default(cap);
        let mut oracle = Oracle::new();
        for &op in &ops {
            let rep = e.apply(op);
            match op {
                Op::Insert(r) => oracle.insert(r, rep.placed.unwrap().0),
                Op::Delete(r) => oracle.delete(r, rep.removed.unwrap().0),
            }
        }
        oracle.check(&e);
        e.check_invariants();
        if !tiny {
            // with an enormous threshold nothing should ever be buffered
            prop_assert_eq!(e.stats().slow_ops, 0);
        }
        prop_assert!(e.stats().max_deadweight <= 4);
    }
}
