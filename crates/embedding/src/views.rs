//! ASCII rendering of the embedding's three views (Figure 1 of the paper).
//!
//! * the **embedding view** shows every slot with its tag and occupancy;
//! * the **F-emulator view** shows only the F-slots (the array `A_F`);
//! * the **R-shell view** shows every slot, with all non-white slots drawn
//!   as occupied (that is exactly what R sees).
//!
//! Used by the `figure_views` example and by documentation tests; the
//! renderings are deliberately compact (one character per slot).

use crate::embed::Embed;
use crate::tag_array::SlotTag;
use lll_core::traits::ListLabeling;

/// One-character-per-slot rendering of the full embedding view:
/// `F` = occupied F-slot, `f` = free F-slot, `B` = occupied buffer slot,
/// `b` = buffer dummy, `.` = R-empty.
pub fn embedding_view<F: ListLabeling, R: ListLabeling>(e: &Embed<F, R>) -> String {
    let tags = e.tag_array();
    (0..tags.num_slots())
        .map(|p| match (tags.tag(p), tags.contents.is_occupied(p)) {
            (SlotTag::F, true) => 'F',
            (SlotTag::F, false) => 'f',
            (SlotTag::Buf, true) => 'B',
            (SlotTag::Buf, false) => 'b',
            (SlotTag::White, _) => '.',
        })
        .collect()
}

/// The F-emulator's view: only F-slots, in F-coordinate order
/// (`X` = occupied, `_` = free).
pub fn emulator_view<F: ListLabeling, R: ListLabeling>(e: &Embed<F, R>) -> String {
    let tags = e.tag_array();
    (0..tags.num_slots())
        .filter(|&p| tags.tag(p) == SlotTag::F)
        .map(|p| if tags.contents.is_occupied(p) { 'X' } else { '_' })
        .collect()
}

/// The R-shell's view: every slot, with all non-white slots shown occupied
/// (`#`) and white slots free (`.`) — R cannot tell F-slots, dummies and
/// real buffered elements apart.
pub fn shell_view<F: ListLabeling, R: ListLabeling>(e: &Embed<F, R>) -> String {
    let tags = e.tag_array();
    (0..tags.num_slots()).map(|p| if tags.tag(p) == SlotTag::White { '.' } else { '#' }).collect()
}

/// All three views stacked, labeled like Figure 1.
pub fn figure1<F: ListLabeling, R: ListLabeling>(e: &Embed<F, R>) -> String {
    format!(
        "view of F ⊳ R    : {}\nview of F-emulator: {}\nview of R-shell   : {}\n",
        embedding_view(e),
        emulator_view(e),
        shell_view(e)
    )
}
