//! Unit tests for the embedding: oracle agreement on every workload shape,
//! the paper's lemma-level invariants, Figure-1 view consistency, and
//! composition (nesting) mechanics.

use crate::embed::{EmbedBuilder, EmbedConfig};
use crate::layered::{corollary11, corollary12};
use crate::views;
use lll_adaptive::AdaptiveBuilder;
use lll_classic::ClassicBuilder;
use lll_core::ops::Op;
use lll_core::testkit::{run_against_oracle, Oracle};
use lll_core::traits::{LabelingBuilder, ListLabeling};
use rand::{Rng, SeedableRng};

type SimpleEmbed = EmbedBuilder<AdaptiveBuilder, ClassicBuilder>;

fn simple_builder() -> SimpleEmbed {
    EmbedBuilder::new(AdaptiveBuilder::default(), ClassicBuilder)
}

fn mixed_ops(n: usize, total: usize, seed: u64, p_ins: f64) -> Vec<Op> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut len = 0usize;
    for _ in 0..total {
        if len == 0 || (len < n && rng.gen_bool(p_ins)) {
            ops.push(Op::Insert(rng.gen_range(0..=len)));
            len += 1;
        } else {
            ops.push(Op::Delete(rng.gen_range(0..len)));
            len -= 1;
        }
    }
    ops
}

#[test]
fn embed_oracle_random_inserts() {
    let n = 300;
    let mut e = simple_builder().build_default(n);
    let ops: Vec<Op> = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        (0..n).map(|len| Op::Insert(rng.gen_range(0..=len))).collect()
    };
    run_against_oracle(&mut e, &ops, 29);
    e.check_invariants();
}

#[test]
fn embed_oracle_hammer() {
    let n = 400;
    let mut e = simple_builder().build_default(n);
    let ops: Vec<Op> = (0..n).map(|_| Op::Insert(0)).collect();
    run_against_oracle(&mut e, &ops, 37);
    e.check_invariants();
}

#[test]
fn embed_oracle_churn() {
    let n = 250;
    let mut e = simple_builder().build_default(n);
    let ops = mixed_ops(n, 3000, 11, 0.55);
    run_against_oracle(&mut e, &ops, 101);
    e.check_invariants();
}

#[test]
fn embed_oracle_churn_step_checked() {
    // Small but brutally checked: full layout comparison after every op.
    let n = 60;
    let mut e = simple_builder().build_default(n);
    let ops = mixed_ops(n, 800, 13, 0.6);
    let mut oracle = Oracle::new();
    for &op in &ops {
        let rep = e.apply(op);
        match op {
            Op::Insert(r) => oracle.insert(r, rep.placed.unwrap().0),
            Op::Delete(r) => oracle.delete(r, rep.removed.unwrap().0),
        }
        oracle.check(&e);
    }
    e.check_invariants();
}

#[test]
fn embed_uses_both_paths() {
    let n = 1 << 11;
    let mut e = simple_builder().build_default(n);
    for _ in 0..n {
        e.insert(0); // hammering forces occasional expensive sim ops
    }
    let s = e.stats();
    assert!(s.fast_ops > 0, "no fast-path ops");
    assert!(s.slow_ops > 0, "hammering should trigger slow-path ops");
    assert!(s.rebuilds_completed > 0, "rebuilds should complete");
}

#[test]
fn lemma5_deadweight_at_most_4() {
    let n = 1 << 12;
    let mut e = simple_builder().build_default(n);
    let ops = mixed_ops(n, 2 * n, 17, 0.7);
    for &op in &ops {
        e.apply(op);
    }
    let s = e.stats();
    assert!(
        s.max_deadweight <= 4,
        "Lemma 5 violated: an element took {} deadweight moves (hist {:?})",
        s.max_deadweight,
        s.deadweight_hist
    );
}

#[test]
fn lemma7_buffer_occupancy_small() {
    let n = 1 << 12;
    let mut e = simple_builder().build_default(n);
    for _ in 0..n {
        e.insert(0);
    }
    let s = e.stats();
    assert!(s.forced_catchups == 0, "halting condition fired");
    assert!(s.max_buffered < n / 3, "buffer occupancy {} too large for n={n}", s.max_buffered);
}

#[test]
fn slot_counts_conserved() {
    let n = 500;
    let mut e = simple_builder().build_default(n);
    let (f0, b0) = {
        let tags = e.tag_array();
        (tags.f_count(), tags.buf_count())
    };
    let ops = mixed_ops(n, 2000, 23, 0.6);
    for &op in &ops {
        e.apply(op);
    }
    let tags = e.tag_array();
    assert_eq!(tags.f_count(), f0, "F-slot count changed");
    assert_eq!(tags.buf_count(), b0, "buffer slot count changed");
    e.check_invariants();
}

#[test]
fn figure1_views_are_consistent() {
    let n = 64;
    let mut e = simple_builder().build_default(n);
    for i in 0..n / 2 {
        e.insert(i / 3);
    }
    let full = views::embedding_view(&e);
    let emu = views::emulator_view(&e);
    let shell = views::shell_view(&e);
    assert_eq!(full.chars().count(), e.num_slots());
    assert_eq!(shell.chars().count(), e.num_slots());
    // F-emulator view has exactly the F-slots.
    assert_eq!(emu.chars().count(), e.tag_array().f_count());
    // R sees non-white exactly where the embedding has F/Buf slots.
    for (c_full, c_shell) in full.chars().zip(shell.chars()) {
        assert_eq!(c_full == '.', c_shell == '.');
    }
    // Occupied F-slots in both views agree in number.
    let x_count = emu.chars().filter(|&c| c == 'X').count();
    let f_count = full.chars().filter(|&c| c == 'F').count();
    assert_eq!(x_count, f_count);
}

#[test]
fn nested_embedding_works() {
    // Embed an embedding: (adaptive ⊳ classic) used as the R of an outer
    // embedding — the composition mechanics of Theorem 3.
    let inner = EmbedBuilder {
        f: AdaptiveBuilder::default(),
        r: ClassicBuilder,
        cfg: EmbedConfig { epsilon: 1.0 / 6.0, ..Default::default() },
    };
    let outer = EmbedBuilder {
        f: AdaptiveBuilder::default(),
        r: inner,
        cfg: EmbedConfig { epsilon: 1.0 / 3.0, ..Default::default() },
    };
    let n = 200;
    let mut e = outer.build_default(n);
    let ops = mixed_ops(n, 1500, 31, 0.6);
    run_against_oracle(&mut e, &ops, 47);
    e.check_invariants();
}

#[test]
fn corollary11_oracle() {
    let n = 200;
    let mut e = corollary11(n, 7);
    let ops = mixed_ops(n, 1200, 37, 0.6);
    run_against_oracle(&mut e, &ops, 67);
    e.check_invariants();
}

#[test]
fn corollary11_hammer() {
    let n = 256;
    let mut e = corollary11(n, 9);
    let ops: Vec<Op> = (0..n).map(|_| Op::Insert(0)).collect();
    run_against_oracle(&mut e, &ops, 33);
}

#[test]
fn corollary12_oracle() {
    let n = 200;
    // Descending arrival with perfect predictions.
    let preds: Vec<usize> = (0..n).rev().collect();
    let mut e = corollary12(n, 1, preds, 11);
    let ops: Vec<Op> = (0..n).map(|_| Op::Insert(0)).collect();
    run_against_oracle(&mut e, &ops, 41);
    e.check_invariants();
}

#[test]
fn labels_monotone_in_rank() {
    let n = 300;
    let mut e = simple_builder().build_default(n);
    let ops = mixed_ops(n, 1000, 41, 0.7);
    for &op in &ops {
        e.apply(op);
    }
    let labels: Vec<usize> = (0..e.len()).map(|r| e.label_of_rank(r)).collect();
    assert!(labels.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn delete_to_empty_and_refill() {
    let n = 128;
    let mut e = simple_builder().build_default(n);
    for i in 0..n {
        e.insert(i / 2);
    }
    assert_eq!(e.len(), n);
    for _ in 0..n {
        e.delete(0);
    }
    assert_eq!(e.len(), 0);
    for i in 0..n / 2 {
        e.insert(i);
    }
    assert_eq!(e.len(), n / 2);
    e.check_invariants();
}

#[test]
fn lemma4_shell_input_independent_of_shell_randomness() {
    // Lemma 4: the operation sequence y fed to the R-shell is fully
    // determined by the input x and rand(F) — independent of rand(R).
    // Build two embeddings with the SAME (deterministic) F but DIFFERENT
    // random tapes for a randomized R, drive them with the same input, and
    // compare the recorded shell-op sequences.
    use lll_randomized::RandomizedBuilder;
    let n = 400;
    let ops = mixed_ops(n, 2000, 71, 0.6);
    let run = |r_seed: u64| {
        let b = EmbedBuilder {
            f: AdaptiveBuilder::default(),
            r: RandomizedBuilder::with_seed(r_seed),
            cfg: EmbedConfig::default(),
        };
        let mut e = b.build_default(n);
        e.enable_shell_trace();
        for &op in &ops {
            e.apply(op);
        }
        e.shell_trace().to_vec()
    };
    let t1 = run(0xAAAA);
    let t2 = run(0x5555);
    assert!(!t1.is_empty(), "expected some slow-path shell ops");
    assert_eq!(t1, t2, "Lemma 4 violated: R's randomness leaked into its own input");
}

#[test]
fn lemma4_shell_input_depends_on_f_randomness() {
    // The complementary direction: changing rand(F) IS allowed to change
    // the shell's input (the dependence is one-directional).
    use lll_randomized::RandomizedBuilder;
    let n = 400;
    let ops = mixed_ops(n, 2000, 73, 0.6);
    let run = |f_seed: u64| {
        let b = EmbedBuilder {
            f: RandomizedBuilder::with_seed(f_seed),
            r: ClassicBuilder,
            cfg: EmbedConfig::default(),
        };
        let mut e = b.build_default(n);
        e.enable_shell_trace();
        for &op in &ops {
            e.apply(op);
        }
        e.shell_trace().to_vec()
    };
    let t1 = run(1);
    let t2 = run(2);
    // Not asserting inequality as a hard guarantee (they could coincide),
    // but the sequences must at least be well-formed and deterministic.
    assert_eq!(t1, run(1), "same rand(F) must reproduce the same shell input");
    assert_eq!(t2, run(2));
}
