//! # lll-embedding — the layered-list-labeling embedding `F ⊳ R`
//!
//! This crate is the paper's contribution (*Layered List Labeling*, Bender,
//! Conway, Farach-Colton, Komlós, Kuszmaul; PODS 2024):
//!
//! * [`Embed<F, R>`](embed::Embed) — the embedding of a *fast* list-labeling
//!   structure `F` into a *reliable* one `R` (paper §3), which by Theorem 2
//!   simultaneously achieves `O(W_R)` worst-case cost, `O(G_F(x))` good-case
//!   cost, and lightly-amortized expected cost `O(E_R)`.
//! * [`layered`] — Theorem 3's double embedding `X ⊳ (Y ⊳ Z)` and the
//!   concrete structures of Corollary 11 ([`layered::corollary11`]:
//!   adaptive + randomized + deamortized) and Corollary 12
//!   ([`layered::corollary12`]: learning-augmented + randomized +
//!   deamortized).
//! * [`tag_array`] — the slot taxonomy of Figure 1 (F-slots, buffer slots,
//!   R-empty slots) with O(log m) coordinate translations.
//! * [`views`] — ASCII renderings of the three views of Figure 1.
//!
//! The implementation follows the paper §3 closely; every structural claim
//! (Figure 2's `1 + a₁` move amplification, Lemma 5's ≤ 4 deadweight moves
//! per element, Lemma 6's o(n) rebuild spans, Lemma 7's o(n) buffer
//! occupancy) is instrumented via [`embed::EmbedStats`] and exercised in
//! this crate's tests and in the workspace's experiment harness.

#![forbid(unsafe_code)]

pub mod embed;
pub mod layered;
pub mod tag_array;
pub mod views;

pub use embed::{Embed, EmbedBuilder, EmbedConfig, EmbedStats, Loc};
pub use layered::{
    corollary11, corollary11_builder, corollary12, corollary12_builder, corollary12_with,
    Corollary11, Corollary12, InnerYZ,
};
pub use tag_array::{SlotTag, TagArray};

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;
