//! Theorem 3's double embedding `X ⊳ (Y ⊳ Z)` and the paper's concrete
//! instantiations (Corollaries 11 and 12).
//!
//! Because [`Embed`] is itself a [`ListLabeling`](lll_core::traits::ListLabeling) built from two
//! [`LabelingBuilder`]s, the double embedding is literally a nested type:
//! `Embed<X, Embed<Y, Z>>`. The builders below wire up the slot budgets:
//! the outer embedding uses ε = 1/3 and the inner ε = 1/6 so that every
//! layer keeps workable density slack (the paper's footnote 4: achieving
//! overall slack ε requires ε/3 per application).

use crate::embed::{Embed, EmbedBuilder, EmbedConfig};
use lll_adaptive::{AdaptiveBuilder, AdaptivePma};
use lll_core::rng::derive_seed;
use lll_core::traits::LabelingBuilder;
use lll_deamortized::{DeamortizedBuilder, DeamortizedPma};
use lll_predictions::{PredictedBuilder, PredictedPma, RankPredictor, VecPredictor};
use lll_randomized::{RandomizedBuilder, RandomizedPma};

/// The inner embedding `Y ⊳ Z`: randomized expected-cost structure embedded
/// in a worst-case-bounded structure.
pub type InnerYZ = Embed<RandomizedPma, DeamortizedPma>;

/// Corollary 11's structure: `X ⊳ (Y ⊳ Z)` with X = adaptive PMA,
/// Y = randomized PMA, Z = deamortized PMA.
pub type Corollary11 = Embed<AdaptivePma, InnerYZ>;

/// Corollary 12's structure: the learning-augmented PMA layered over the
/// same `Y ⊳ Z`.
pub type Corollary12<P> = Embed<PredictedPma<P>, InnerYZ>;

/// Builder type of [`Corollary11`].
pub type Corollary11Builder =
    EmbedBuilder<AdaptiveBuilder, EmbedBuilder<RandomizedBuilder, DeamortizedBuilder>>;

/// Builder type of [`Corollary12`].
pub type Corollary12Builder<P> =
    EmbedBuilder<PredictedBuilder<P>, EmbedBuilder<RandomizedBuilder, DeamortizedBuilder>>;

/// The default outer/inner embedding parameters for the double embedding.
pub fn layered_configs() -> (EmbedConfig, EmbedConfig) {
    let outer = EmbedConfig { epsilon: 1.0 / 3.0, ..EmbedConfig::default() };
    let inner = EmbedConfig { epsilon: 1.0 / 6.0, ..EmbedConfig::default() };
    (outer, inner)
}

/// The inner `Y ⊳ Z` builder with an independent random tape derived from
/// `seed` (Lemma 4 requires each layer's randomness to be independent).
pub fn inner_yz_builder(seed: u64) -> EmbedBuilder<RandomizedBuilder, DeamortizedBuilder> {
    let (_, inner_cfg) = layered_configs();
    EmbedBuilder {
        f: RandomizedBuilder::with_seed(derive_seed(seed, 0x59)),
        r: DeamortizedBuilder::default(),
        cfg: inner_cfg,
    }
}

/// Builder for Corollary 11's `X ⊳ (Y ⊳ Z)`.
pub fn corollary11_builder(seed: u64) -> Corollary11Builder {
    let (outer_cfg, _) = layered_configs();
    EmbedBuilder { f: AdaptiveBuilder::default(), r: inner_yz_builder(seed), cfg: outer_cfg }
}

/// Corollary 11's structure for `n` elements, with all random tapes derived
/// from `seed`. Uses the builder's default slot budget (≈ 2.4·n slots —
/// the compounded (1+3ε) factors of the two embeddings).
///
/// ```
/// use lll_core::traits::ListLabeling;
/// let mut list = lll_embedding::corollary11(256, 42);
/// for _ in 0..128 {
///     list.insert(0); // hammer-insert: the adaptive layer's specialty
/// }
/// assert_eq!(list.len(), 128);
/// assert!(list.stats().max_deadweight <= 4); // Lemma 5
/// ```
pub fn corollary11(n: usize, seed: u64) -> Corollary11 {
    corollary11_builder(seed).build_default(n)
}

/// Builder for Corollary 12's learning-augmented layered structure, given
/// the per-insertion predictions and the error budget η.
pub fn corollary12_builder(
    eta: usize,
    predictions: Vec<usize>,
    seed: u64,
) -> Corollary12Builder<VecPredictor> {
    let (outer_cfg, _) = layered_configs();
    EmbedBuilder {
        f: PredictedBuilder { eta, predictor: VecPredictor::new(predictions) },
        r: inner_yz_builder(seed),
        cfg: outer_cfg,
    }
}

/// Corollary 12's structure for `n` elements.
pub fn corollary12(
    n: usize,
    eta: usize,
    predictions: Vec<usize>,
    seed: u64,
) -> Corollary12<VecPredictor> {
    corollary12_builder(eta, predictions, seed).build_default(n)
}

/// A generic two-layer embedding over any predictor (for custom predictors
/// beyond the oracle-based [`VecPredictor`]).
pub fn corollary12_with<P: RankPredictor>(
    n: usize,
    eta: usize,
    predictor: P,
    seed: u64,
) -> Corollary12<P> {
    let (outer_cfg, _) = layered_configs();
    let b = EmbedBuilder {
        f: PredictedBuilder { eta, predictor },
        r: inner_yz_builder(seed),
        cfg: outer_cfg,
    };
    b.build_default(n)
}
