//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! The workspace builds hermetically with no crates.io access, so the slice
//! of `criterion` its benches use is reimplemented here and wired in as a
//! path dependency with the package name `criterion`. Benches compile and
//! run (`cargo bench`) and print wall-clock means, but there is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched iteration amortizes setup; accepted for compatibility and
/// treated identically (each iteration runs its own setup, untimed).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup per timed iteration.
    PerIteration,
    /// Accepted for compatibility.
    SmallInput,
    /// Accepted for compatibility.
    LargeInput,
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label a benchmark with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.timed_iters += 1;
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, timed_iters: 0 };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, timed_iters: 0 };
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let mean =
            if b.timed_iters == 0 { Duration::ZERO } else { b.elapsed / b.timed_iters as u32 };
        println!("{}/{id}: mean {mean:?} over {} iters", self.name, b.timed_iters);
    }

    /// End the group (upstream emits summaries here; this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::PerIteration)
        });
        g.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
