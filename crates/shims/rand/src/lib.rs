//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the small slice of `rand` 0.8 that the workspace uses is
//! reimplemented here and wired in as a path dependency with the package
//! name `rand`. The subset:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//! * [`SeedableRng::seed_from_u64`] — seeding via SplitMix64.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] — the sampling
//!   methods used by workload generators and tests.
//!
//! The streams differ from upstream `rand` (seeded runs are deterministic
//! *within* this workspace, not bit-compatible with crates.io `rand`), which
//! is all the workspace relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::{RngCore, SeedableRng};

    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// The raw generator interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range in gen_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
