//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! The workspace builds hermetically with no crates.io access, so the slice
//! of `proptest` it uses is reimplemented here and wired in as a path
//! dependency with the package name `proptest`. Supported surface:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header and `arg in strategy` parameters),
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * [`any`], tuple strategies, integer/float range strategies,
//! * [`collection::vec`] with exact or ranged lengths,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case fails
//! with its concrete inputs via a plain panic (cases are deterministic per
//! test name and case index, so failures reproduce exactly).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob import mirroring `proptest::prelude::*`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-block configuration. Only `cases` is interpreted; the other fields
/// exist so upstream-style struct-update syntax keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_shrink_iters: 0 }
    }
}

/// The deterministic generator driving each property test.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the test's name, so every test has an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, expanded through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next uniform 64-bit word (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    fn uniform_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128) % span
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.uniform_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.uniform_u128(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.uniform_u128(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Define property tests. Mirrors upstream `proptest!` for the subset of
/// syntax this workspace uses: an optional config header and `#[test]`
/// functions whose parameters are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($arg,)+) =
                    ($( $crate::Strategy::generate(&($strat), &mut __rng), )+);
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a property test (no shrinking: plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
            let xs = crate::Strategy::generate(
                &crate::collection::vec((any::<u8>(), any::<u32>()), 1..5),
                &mut rng,
            );
            assert!((1..5).contains(&xs.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::for_test("map");
        let s = (1usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro body runs per case with generated bindings in scope.
        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, ys in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in any::<u64>()) {
            let _ = x;
        }
    }
}
