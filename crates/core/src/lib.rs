//! # lll-core — foundations for list-labeling data structures
//!
//! This crate provides the shared substrate for the reproduction of
//! *Layered List Labeling* (Bender, Conway, Farach-Colton, Komlós, Kuszmaul;
//! PODS 2024):
//!
//! * [`ElemId`](ids::ElemId) — opaque element identities. List-labeling
//!   structures see elements as black boxes; only relative rank matters.
//! * [`Op`](ops::Op) — the operation alphabet (`insert(rank)` /
//!   `delete(rank)`), exactly as in Definition 1 of the paper.
//! * [`ListLabeling`](traits::ListLabeling) — the trait every algorithm in
//!   this workspace implements, and [`LabelingBuilder`](traits::LabelingBuilder)
//!   which lets algorithms be composed (the embedding of the paper is itself
//!   a `ListLabeling` built out of two `LabelingBuilder`s).
//! * [`SlotArray`](slot_array::SlotArray) — the physical array of slots. All
//!   element motion goes through it, so costs are *derived from the move
//!   log*, never self-reported, and sortedness can be asserted after every
//!   atomic move.
//! * [`Fenwick`](fenwick::Fenwick) — binary indexed trees with select, used
//!   for rank ↔ position navigation.
//! * [`SegTree`](density::SegTree) / [`Thresholds`](density::Thresholds) —
//!   the calibrator-tree geometry and density thresholds that every
//!   packed-memory-array (PMA) variant shares.
//! * [`PmaBase`](pma::PmaBase) — a reusable PMA skeleton parameterized by a
//!   [`RebalancePolicy`](pma::RebalancePolicy); the classical, adaptive and
//!   randomized algorithms are policies plugged into this skeleton.
//! * [`CostStats`](cost::CostStats) — per-operation cost accounting
//!   (amortized, max, histogram) in the paper's cost model (element moves).
//! * [`testkit`] — a reference oracle used by unit, integration and property
//!   tests across the workspace.

#![forbid(unsafe_code)]

pub mod bitmap;
pub mod cost;
pub mod density;
pub mod fenwick;
pub mod growable;
pub mod ids;
pub mod metrics;
pub mod ops;
pub mod pma;
#[cfg(test)]
mod proptests;
pub mod report;
pub mod rng;
pub mod slot_array;
pub mod testkit;
pub mod traits;

pub mod prelude {
    //! Convenient glob import: `use lll_core::prelude::*;`
    pub use crate::cost::CostStats;
    pub use crate::density::{SegTree, Thresholds};
    pub use crate::fenwick::Fenwick;
    pub use crate::growable::{Growable, Handle};
    pub use crate::ids::ElemId;
    pub use crate::metrics::{ListMetrics, MetricsHandle};
    pub use crate::ops::Op;
    pub use crate::pma::{PmaBase, RebalancePolicy};
    pub use crate::report::{BulkReport, MoveRec, OpReport};
    pub use crate::slot_array::SlotArray;
    pub use crate::traits::{LabelingBuilder, ListLabeling};
}
