//! Reference oracle and shared test utilities.
//!
//! The [`Oracle`] maintains the ground-truth rank sequence as a plain
//! vector. Every structure in the workspace is validated against it: after
//! any operation, the structure's layout must list exactly the oracle's
//! elements, in oracle order, and agree on length. Because all element
//! motion flows through [`SlotArray`](crate::slot_array::SlotArray) (which
//! checks that moves never cross occupied slots), oracle agreement plus the
//! move discipline implies the sorted-order invariant held throughout.

use crate::ids::ElemId;
use crate::ops::Op;
use crate::traits::ListLabeling;

/// Ground-truth model of a list-labeling instance.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    seq: Vec<ElemId>,
}

impl Oracle {
    /// Empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an insertion: the structure reported placing `elem` at `rank`.
    pub fn insert(&mut self, rank: usize, elem: ElemId) {
        self.seq.insert(rank, elem);
    }

    /// Record a deletion, checking the structure removed the right element.
    pub fn delete(&mut self, rank: usize, reported: ElemId) {
        let expect = self.seq.remove(rank);
        assert_eq!(expect, reported, "structure deleted the wrong element at rank {rank}");
    }

    /// Current ground-truth length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The ground-truth element sequence.
    pub fn sequence(&self) -> &[ElemId] {
        &self.seq
    }

    /// Assert that `l`'s layout matches the ground truth exactly.
    pub fn check<L: ListLabeling>(&self, l: &L) {
        assert_eq!(l.len(), self.seq.len(), "length mismatch");
        let got: Vec<ElemId> = l.slots().iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(got, self.seq, "layout order does not match ground truth");
    }
}

/// Drive a structure through an operation sequence while continuously
/// checking it against a fresh oracle. Returns total cost. Checks the full
/// layout every `check_every` operations (and at the end).
pub fn run_against_oracle<L: ListLabeling>(l: &mut L, ops: &[Op], check_every: usize) -> u64 {
    let mut oracle = Oracle::new();
    let mut total = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        assert!(
            op.valid_for_len(oracle.len()),
            "op {op:?} invalid at len {} (step {i})",
            oracle.len()
        );
        let rep = l.apply(op);
        total += rep.cost();
        match op {
            Op::Insert(r) => {
                let (e, _) = rep.placed.expect("insert must report placement");
                oracle.insert(r, e);
            }
            Op::Delete(r) => {
                let (e, _) = rep.removed.expect("delete must report removal");
                oracle.delete(r, e);
            }
        }
        if check_every > 0 && i % check_every == 0 {
            oracle.check(l);
        }
    }
    oracle.check(l);
    total
}

/// Fit the exponent `p` in `cost ≈ c · (log₂ n)^p` from `(n, cost)` points
/// by least squares on log-log of the log. Used by scaling-shape tests:
/// classical PMAs should fit p ≈ 2, adaptive-on-hammer p ≈ 1.
pub fn fit_log_exponent(points: &[(usize, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let xs: Vec<f64> = points.iter().map(|&(n, _)| (n.max(2) as f64).log2().ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, c)| c.max(1e-9).ln()).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pma::{run_ops, ClassicBuilder};
    use crate::traits::LabelingBuilder;

    #[test]
    fn oracle_detects_order() {
        let mut pma = ClassicBuilder.build(50, 80);
        let ops: Vec<Op> = (0..50).map(Op::Insert).collect();
        run_against_oracle(&mut pma, &ops, 10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn oracle_catches_length_divergence() {
        let mut pma = ClassicBuilder.build(10, 16);
        pma.insert(0);
        let oracle = Oracle::new(); // empty
        oracle.check(&pma);
    }

    #[test]
    fn run_ops_totals_cost() {
        let mut pma = ClassicBuilder.build(10, 16);
        let total = run_ops(&mut pma, &[Op::Insert(0), Op::Insert(1), Op::Delete(0)]);
        assert!(total >= 2);
    }

    #[test]
    fn exponent_fit_recovers_shape() {
        // synthetic: cost = 3·(log n)²
        let pts: Vec<(usize, f64)> = [1 << 8, 1 << 10, 1 << 12, 1 << 14]
            .iter()
            .map(|&n| (n, 3.0 * ((n as f64).log2().powi(2))))
            .collect();
        let p = fit_log_exponent(&pts);
        assert!((p - 2.0).abs() < 0.05, "fit {p} should be ≈ 2");
        let pts1: Vec<(usize, f64)> = [1 << 8, 1 << 10, 1 << 12, 1 << 14]
            .iter()
            .map(|&n| (n, 7.0 * (n as f64).log2()))
            .collect();
        let p1 = fit_log_exponent(&pts1);
        assert!((p1 - 1.0).abs() < 0.05, "fit {p1} should be ≈ 1");
    }
}
